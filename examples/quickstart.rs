//! Quickstart: build a model, calibrate MILLION's codebooks, generate text
//! with a product-quantized KV cache and report the memory saving.
//!
//! Run with `cargo run --release -p million --example quickstart`.

use million::{MillionConfig, MillionEngine};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Sampler, Transformer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scaled-down Llama-2-style model with synthetic weights (RoPE,
    //    RMSNorm, channel-wise key outliers — see DESIGN.md).
    let config = ModelConfig::llama2_7b_sim();
    let model = Transformer::new(config.clone(), 42);
    println!(
        "model: {} ({} layers, d_model {}, head_dim {})",
        config.name,
        config.n_layers,
        config.d_model,
        config.head_dim()
    );

    // 2. Offline codebook calibration on a synthetic Wikitext-like stream.
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let calibration = corpus.generate(512);
    let engine_config = MillionConfig::four_bit(config.head_dim());
    println!(
        "calibrating PQ codebooks: M = {}, nbits = {} ({} bits/channel)",
        engine_config.pq.m,
        engine_config.pq.nbits,
        engine_config.bits_per_channel(config.head_dim())
    );
    let engine = MillionEngine::new(model, engine_config, &calibration)?;

    // 3. Generate with the quantized cache (asynchronous quantization on).
    let prompt = corpus.generate(256);
    let mut sampler = Sampler::top_k(0.8, 16, 7);
    let result = engine.generate(&prompt, 64, &mut sampler);

    // 4. Compare against the fp16 reference generation of the same model.
    let mut greedy_a = Sampler::greedy();
    let mut greedy_b = Sampler::greedy();
    let reference = engine.generate_reference(&prompt, 64, &mut greedy_a);
    let quantized = engine.generate(&prompt, 64, &mut greedy_b).tokens;
    let agreement = reference
        .iter()
        .zip(quantized.iter())
        .filter(|(a, b)| a == b)
        .count();

    println!("\nprompt tokens        : {}", result.prefill_tokens);
    println!("generated tokens     : {:?} ...", &result.tokens[..8.min(result.tokens.len())]);
    println!("KV cache             : {} bytes", result.kv_bytes);
    println!("fp16 cache would be  : {} bytes", result.fp16_kv_bytes);
    println!(
        "compression          : {:.1}% of fp16 ({:.1}x smaller)",
        result.compression_ratio() * 100.0,
        1.0 / result.compression_ratio()
    );
    println!(
        "greedy agreement with fp16 reference: {agreement}/64 tokens"
    );
    println!("asynchronous quantization batches absorbed: {}", result.async_batches);
    Ok(())
}
