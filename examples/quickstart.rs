//! Quickstart: build a model, calibrate MILLION's codebooks, then serve a
//! streaming session whose product-quantized KV cache persists across decode
//! steps — reporting the memory saving as it grows.
//!
//! Run with `cargo run --release -p million --example quickstart`.

use million::{GenerationOptions, MillionConfig, MillionEngine};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Sampler, Transformer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A scaled-down Llama-2-style model with synthetic weights (RoPE,
    //    RMSNorm, channel-wise key outliers — see DESIGN.md).
    let config = ModelConfig::llama2_7b_sim();
    let model = Transformer::new(config.clone(), 42);
    println!(
        "model: {} ({} layers, d_model {}, head_dim {})",
        config.name,
        config.n_layers,
        config.d_model,
        config.head_dim()
    );

    // 2. Offline codebook calibration on a synthetic Wikitext-like stream.
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let calibration = corpus.generate(512);
    let engine_config = MillionConfig::four_bit(config.head_dim());
    println!(
        "calibrating PQ codebooks: M = {}, nbits = {} ({} bits/channel)",
        engine_config.pq.m,
        engine_config.pq.nbits,
        engine_config.bits_per_channel(config.head_dim())
    );
    let engine = MillionEngine::new(model, engine_config, &calibration)?;

    // 3. Open a persistent session and stream tokens from it. The session
    //    owns the quantized cache and the background quantization worker;
    //    every step reports live telemetry.
    let prompt = corpus.generate(256);
    let mut session = engine.session();
    session.set_sampler(Sampler::top_k(0.8, 16, 7));
    session.prefill(&prompt);
    println!(
        "\nstreaming 64 tokens from a {}-token prompt:",
        prompt.len()
    );
    for step in session.stream(GenerationOptions::max_tokens(64)) {
        if step.position % 16 == 0 {
            println!(
                "  position {:>4}: cache {:>7} B (fp16 {:>7} B), {} tokens awaiting encode",
                step.position, step.kv_bytes, step.fp16_kv_bytes, step.residual_tokens
            );
        }
    }
    session.flush();
    println!(
        "session cache after turn 1: {:.1}% of fp16 ({:.1}x smaller), {} async batches",
        session.compression_ratio() * 100.0,
        1.0 / session.compression_ratio(),
        session.async_batches()
    );

    // 4. Compare one-shot generation against the fp16 reference of the same
    //    model (the compatibility wrappers around sessions).
    let mut greedy_a = Sampler::greedy();
    let mut greedy_b = Sampler::greedy();
    let reference = engine.generate_reference(&prompt, 64, &mut greedy_a);
    let quantized = engine.generate(&prompt, 64, &mut greedy_b).tokens;
    let agreement = reference
        .iter()
        .zip(quantized.iter())
        .filter(|(a, b)| a == b)
        .count();
    println!("greedy agreement with fp16 reference: {agreement}/64 tokens");
    println!(
        "\nnext: serve many users through the continuous-batching front-end —\n  \
         cargo run --release -p million --example continuous_serving\n\
         (request queue, QoS priorities, mid-flight admission; docs/SERVING.md)"
    );
    Ok(())
}
