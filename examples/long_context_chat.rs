//! Long-context chat scenario: a Longchat-style model carries one persistent
//! session across several user turns. The first turn pays the long-document
//! prefill once; every later turn rides on the already-quantized history via
//! `append_prompt`, which is exactly the serving pattern MILLION's
//! PQ-compressed cache exists for. The A40 cost model then predicts the
//! latency at the corresponding full-scale context length.
//!
//! Run with `cargo run --release -p million --example long_context_chat`.

use million::{GenerationOptions, MillionConfig, MillionEngine};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Transformer};
use million_perfsim::{tpot_ms, GpuSpec, KvCacheMethod, ModelGeometry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Longchat-style preset: RoPE with position interpolation, 32K window.
    let config = ModelConfig::longchat_7b_sim();
    let model = Transformer::new(config.clone(), 1234);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));

    let engine = MillionEngine::new(
        model,
        MillionConfig::four_bit(config.head_dim()).with_residual_len(16),
        &corpus.generate(512),
    )?;

    // Turn 1: a "long document" plus the first question (scaled down so the
    // CPU example stays snappy; raise it freely on a faster machine).
    let document = corpus.generate(1024);
    let answer_len = 32;

    let mut session = engine.session();
    let t0 = std::time::Instant::now();
    session.prefill(&document);
    let prefill_ms = t0.elapsed().as_secs_f64() * 1e3;
    let turn1 = session.generate(&GenerationOptions::max_tokens(answer_len));

    println!("long-context chat with {}", config.name);
    println!(
        "turn 1: {} document tokens prefilled in {prefill_ms:.0} ms,",
        document.len()
    );
    println!(
        "        answered {} tokens; cache {:.1} KiB (fp16 would be {:.1} KiB, {:.1}x smaller)",
        turn1.tokens.len(),
        turn1.kv_bytes as f64 / 1024.0,
        turn1.fp16_kv_bytes as f64 / 1024.0,
        1.0 / turn1.compression_ratio()
    );

    // Turns 2..4: follow-up questions reuse the quantized document instead of
    // re-prefilling it.
    for turn in 2..=4 {
        let question = corpus.generate(24);
        let t = std::time::Instant::now();
        session.append_prompt(&question);
        let reply = session.generate(&GenerationOptions::max_tokens(answer_len));
        let turn_ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "turn {turn}: +{} question tokens (no re-prefill), {} answer tokens in {turn_ms:.0} ms; \
             cache now {} tokens at {:.1}% of fp16",
            question.len(),
            reply.tokens.len(),
            session.cached_tokens(),
            session.compression_ratio() * 100.0,
        );
    }

    // What this would mean on the real hardware of the paper.
    let gpu = GpuSpec::a40();
    let geom = ModelGeometry::llama2_7b();
    for ctx in [8192usize, 32_768] {
        let base = tpot_ms(&gpu, &geom, &KvCacheMethod::Fp16, ctx, 100);
        let ours = tpot_ms(&gpu, &geom, &KvCacheMethod::million_4bit(), ctx, 100);
        if let (Some(base), Some(ours)) = (base, ours) {
            println!(
                "A40 cost model @ {ctx:>6} ctx: fp16 {base:6.2} ms/token, MILLION {ours:6.2} ms/token ({:.2}x)",
                base / ours
            );
        }
    }
    Ok(())
}
