//! Long-context scenario: a Longchat-style model answering after a long
//! prompt, comparing the fp16 cache against MILLION's PQ cache for memory and
//! output fidelity, plus the A40 cost model's latency prediction at the
//! corresponding full-scale context length.
//!
//! Run with `cargo run --release -p million --example long_context_chat`.

use million::{MillionConfig, MillionEngine};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Sampler, Transformer};
use million_perfsim::{tpot_ms, GpuSpec, KvCacheMethod, ModelGeometry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Longchat-style preset: RoPE with position interpolation, 32K window.
    let config = ModelConfig::longchat_7b_sim();
    let model = Transformer::new(config.clone(), 1234);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));

    let engine = MillionEngine::new(
        model,
        MillionConfig::four_bit(config.head_dim()).with_residual_len(16),
        &corpus.generate(512),
    )?;

    // A "long document" prompt (scaled down so the CPU example stays snappy;
    // raise it freely on a faster machine).
    let prompt = corpus.generate(1024);
    let gen_tokens = 48;

    let mut greedy_a = Sampler::greedy();
    let mut greedy_b = Sampler::greedy();
    let reference = engine.generate_reference(&prompt, gen_tokens, &mut greedy_a);
    let result = engine.generate(&prompt, gen_tokens, &mut greedy_b);
    let agreement = reference
        .iter()
        .zip(result.tokens.iter())
        .filter(|(a, b)| a == b)
        .count();

    println!("long-context chat with {}", config.name);
    println!("prompt length          : {} tokens", prompt.len());
    println!("answer length          : {} tokens", result.tokens.len());
    println!(
        "KV cache               : {:.1} KiB (fp16 would be {:.1} KiB, {:.1}x smaller)",
        result.kv_bytes as f64 / 1024.0,
        result.fp16_kv_bytes as f64 / 1024.0,
        1.0 / result.compression_ratio()
    );
    println!("agreement with fp16 run: {agreement}/{gen_tokens} tokens");

    // What this would mean on the real hardware of the paper.
    let gpu = GpuSpec::a40();
    let geom = ModelGeometry::llama2_7b();
    for ctx in [8192usize, 32_768] {
        let base = tpot_ms(&gpu, &geom, &KvCacheMethod::Fp16, ctx, 100);
        let ours = tpot_ms(&gpu, &geom, &KvCacheMethod::million_4bit(), ctx, 100);
        if let (Some(base), Some(ours)) = (base, ours) {
            println!(
                "A40 cost model @ {ctx:>6} ctx: fp16 {base:6.2} ms/token, MILLION {ours:6.2} ms/token ({:.2}x)",
                base / ours
            );
        }
    }
    Ok(())
}
