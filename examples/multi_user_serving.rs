//! Multi-user serving: N concurrent chat sessions driven through the
//! continuous-batching [`ServingEngine`] and one shared asynchronous
//! quantization worker — the scenario the paper's PQ cache exists for,
//! where every resident sequence's KV budget directly limits how many users
//! fit on the machine.
//!
//! This example keeps the fleet uniform (same class, all submitted up
//! front) so the memory story stays in the foreground; see
//! `continuous_serving.rs` for staggered arrivals, priorities, and
//! cancellation.
//!
//! Run with `cargo run --release -p million --example multi_user_serving`.

use million::{
    GenerationOptions, MillionConfig, MillionEngine, Request, ServingConfig, ServingEngine,
};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Sampler, Transformer};

const USERS: usize = 6;
const TOKENS_PER_USER: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::llama2_7b_sim();
    let model = Transformer::new(config.clone(), 42);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let engine = MillionEngine::new(
        model,
        MillionConfig::four_bit(config.head_dim()),
        &corpus.generate(512),
    )?;

    // Submit USERS requests with different prompt lengths (as real traffic
    // would have) and different sampling temperatures. Four decode slots
    // serve six users: the last two wait in the queue until slots free.
    let mut serving = ServingEngine::new(
        &engine,
        ServingConfig {
            max_resident: 4,
            queue_capacity: USERS,
            ..ServingConfig::default()
        },
    );
    let mut handles = Vec::new();
    for user in 0..USERS {
        let prompt = corpus.generate(96 + 32 * user);
        let request = Request::new(prompt, GenerationOptions::max_tokens(TOKENS_PER_USER))
            .with_sampler(Sampler::top_k(0.8, 16, user as u64));
        handles.push(serving.submit(request)?);
    }
    println!(
        "serving {USERS} concurrent sessions on {} ({} layers, head_dim {})\n",
        config.name,
        config.n_layers,
        config.head_dim()
    );

    // Drive scheduling rounds, printing fleet telemetry as the batch
    // progresses; finished sessions retire per round and free their slots
    // for the queued users.
    let start = std::time::Instant::now();
    while !serving.is_idle() {
        serving.serve_round();
        if serving.rounds().is_multiple_of(8) {
            println!(
                "round {:>3}: {} resident / {} queued, fleet KV {:>8} B (fp16 would be {:>8} B)",
                serving.rounds(),
                serving.active_sessions(),
                serving.queued_requests(),
                serving.kv_bytes(),
                serving.fp16_kv_bytes(),
            );
        }
    }
    let elapsed = start.elapsed();
    let rounds = serving.rounds();

    let reports: Vec<_> = handles
        .iter()
        .map(|h| h.report().expect("all users served"))
        .collect();
    let total_tokens: usize = reports.iter().map(|r| r.tokens.len()).sum();
    let kv: usize = reports.iter().map(|r| r.kv_bytes).sum();
    let fp16: usize = reports.iter().map(|r| r.fp16_kv_bytes).sum();

    println!("\nper-session results:");
    for r in &reports {
        println!(
            "  user {}: {} prompt + {} generated tokens, waited {} rounds, cache {:>7} B ({:.1}% of fp16), {} async batches, admitted at {:.0} tok/s ({:.2} ms prefill)",
            r.session,
            r.prompt_tokens,
            r.tokens.len(),
            r.queue_wait_rounds,
            r.kv_bytes,
            100.0 * r.kv_bytes as f64 / r.fp16_kv_bytes as f64,
            r.async_batches,
            r.prefill_tokens_per_s,
            r.prefill_ns as f64 / 1e6,
        );
    }
    println!("\nfleet totals:");
    println!("  generated            : {total_tokens} tokens in {rounds} rounds");
    println!(
        "  KV across sessions   : {kv} bytes ({fp16} fp16-equivalent, {:.2}x smaller)",
        fp16 as f64 / kv as f64
    );
    println!(
        "  throughput           : {:.1} tokens/s aggregate, {:.2} ms/step/session",
        total_tokens as f64 / elapsed.as_secs_f64(),
        elapsed.as_secs_f64() * 1e3 / (rounds as f64 * USERS as f64),
    );
    let prefill_tokens: usize = reports.iter().map(|r| r.prompt_tokens).sum();
    let prefill_ns: u64 = reports.iter().map(|r| r.prefill_ns).sum();
    println!(
        "  admission (prefill)  : {} prompt tokens in {:.2} ms ({:.0} tok/s, tiled kernel)",
        prefill_tokens,
        prefill_ns as f64 / 1e6,
        prefill_tokens as f64 * 1e9 / prefill_ns.max(1) as f64,
    );
    println!(
        "  headroom             : at this ratio, the same KV budget holds {:.1}x more users",
        fp16 as f64 / kv as f64
    );
    Ok(())
}
