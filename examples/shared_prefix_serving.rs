//! Shared-prefix serving: N users over one system prompt.
//!
//! Every session's prompt opens with the same system prompt. With prefix
//! sharing enabled, the first admission seals the system prompt into
//! content-addressed blocks of the engine's copy-on-write store; every later
//! admission *attaches* those blocks — no prefill compute, no duplicate code
//! memory — and diverges privately from its first user-specific token.
//!
//! Run with `cargo run --release --example shared_prefix_serving`.

use million::{BatchScheduler, GenerationOptions, MillionConfig, MillionEngine};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Sampler, Transformer};

const USERS: usize = 8;
const SYSTEM_PROMPT_TOKENS: usize = 192;
const BLOCK_TOKENS: usize = 32;

fn main() {
    let config = ModelConfig::tiny_for_tests();
    let model = Transformer::new(config.clone(), 7);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let engine_cfg = MillionConfig::four_bit(config.head_dim())
        .with_sync_quant()
        .with_block_tokens(BLOCK_TOKENS)
        .with_prefix_sharing();
    let engine =
        MillionEngine::new(model, engine_cfg, &corpus.generate(256)).expect("engine builds");

    let system_prompt = corpus.generate(SYSTEM_PROMPT_TOKENS);
    let mut scheduler = BatchScheduler::new(&engine);
    for user in 0..USERS {
        let mut prompt = system_prompt.clone();
        prompt.extend((0..8).map(|i| ((user * 37 + i * 11 + 5) % config.vocab_size) as u32));
        scheduler.add_session(
            &prompt,
            GenerationOptions::max_tokens(24),
            Sampler::greedy(),
        );
    }

    println!(
        "{USERS} users, {SYSTEM_PROMPT_TOKENS}-token shared system prompt, \
         {BLOCK_TOKENS}-token blocks\n"
    );
    println!("user | reused prefix | KV bytes | shared | owned | tokens");
    while !scheduler.step_round().is_empty() {}
    // Snapshot the store while the cohort is still resident; finish() drops
    // nothing, but the scheduler itself is consumed by it.
    let stats = engine.store_stats().expect("store enabled");
    let reports = scheduler.finish();
    for report in &reports {
        println!(
            "{:>4} | {:>13} | {:>8} | {:>6} | {:>5} | {}",
            report.session,
            report.prefix_tokens_reused,
            report.kv_bytes,
            report.kv_shared_bytes,
            report.kv_owned_bytes,
            report.tokens.len(),
        );
    }

    let total_kv: usize = reports.iter().map(|r| r.kv_bytes).sum();
    let total_owned: usize = reports.iter().map(|r| r.kv_owned_bytes).sum();
    println!("\nblock store:");
    println!("  live blocks          {}", stats.live_blocks);
    println!("  resident code bytes  {}", stats.resident_bytes);
    println!(
        "  replicated bytes     {} (what {USERS} private copies would hold)",
        stats.replicated_bytes
    );
    println!("  dedup ratio          {:.2}x", stats.dedup_ratio());
    println!("  prefix attach hits   {}", stats.attach_hits);
    println!("  publish dedup hits   {}", stats.dedup_hits);
    println!("\naggregate KV as-if-owned: {total_kv} B; actually owned privately: {total_owned} B");
    println!(
        "shared system prompt held once instead of {USERS} times — \
         {:.1}% of the cohort's KV deduplicated",
        100.0 * (total_kv - total_owned) as f64 / total_kv.max(1) as f64
    );
}
