//! Continuous-batching serving: staggered arrivals, mixed prompt lengths,
//! QoS priorities, a mid-flight cancellation, and a very long prompt that
//! trickles in through chunked prefill while the interactive streams keep
//! decoding — the traffic shape the paper's PQ cache exists for, where
//! requests come and go while the resident batch never stops decoding.
//!
//! Run with `cargo run --release -p million --example continuous_serving`.

use million::{
    GenerationOptions, MillionConfig, MillionEngine, QosClass, Request, RequestHandle, RoundPhase,
    ServingConfig, ServingEngine,
};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{ModelConfig, Sampler, Transformer};

/// `(arrival_round, prompt_tokens, max_new_tokens, class)` — a bursty
/// schedule with long background work early and urgent traffic late. The
/// round-6 arrival is a 768-token document summarisation landing on top of
/// live streams: with `prefill_chunk_tokens` set, its prefill runs one
/// chunk per round instead of freezing the fleet for the whole prompt.
const WORKLOAD: &[(u64, usize, usize, QosClass)] = &[
    (0, 192, 48, QosClass::Background),
    (0, 96, 40, QosClass::Standard),
    (2, 256, 48, QosClass::Background),
    (4, 64, 24, QosClass::Standard),
    (6, 768, 16, QosClass::Background),
    (6, 48, 12, QosClass::Interactive),
    (9, 160, 40, QosClass::Background),
    (12, 32, 8, QosClass::Interactive),
    (14, 128, 32, QosClass::Standard),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::llama2_7b_sim();
    let model = Transformer::new(config.clone(), 42);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let engine = MillionEngine::new(
        model,
        MillionConfig::four_bit(config.head_dim()),
        &corpus.generate(512),
    )?;

    // Three decode slots for nine requests: the queue, the admission
    // policy, and per-round retirement do the rest. The 96-token prefill
    // chunk bounds how much admission work any single round can charge,
    // so the 768-token arrival never stalls the resident streams.
    let mut serving = ServingEngine::new(
        &engine,
        ServingConfig {
            max_resident: 3,
            queue_capacity: 16,
            kv_byte_budget: Some(64 << 20),
            prefill_chunk_tokens: 96,
            ..ServingConfig::default()
        },
    );
    println!(
        "continuous serving on {} ({} layers, head_dim {}): 3 slots, {} staggered requests\n",
        config.name,
        config.n_layers,
        config.head_dim(),
        WORKLOAD.len()
    );

    let start = std::time::Instant::now();
    let mut handles: Vec<RequestHandle> = Vec::new();
    let mut next = 0usize;
    let mut cancelled_one = false;
    while next < WORKLOAD.len() || !serving.is_idle() {
        // Admit this round's arrivals.
        while next < WORKLOAD.len() && WORKLOAD[next].0 <= serving.rounds() {
            let (_, prompt_len, max_tokens, class) = WORKLOAD[next];
            let request = Request::new(
                corpus.generate(prompt_len),
                GenerationOptions::max_tokens(max_tokens),
            )
            .with_class(class)
            .with_sampler(Sampler::top_k(0.8, 16, next as u64));
            match serving.submit(request) {
                Ok(handle) => {
                    println!(
                        "round {:>3}: submitted request {} ({} prompt tokens, {} max, {})",
                        serving.rounds(),
                        handle.id().as_u64(),
                        prompt_len,
                        max_tokens,
                        class.name()
                    );
                    handles.push(handle);
                }
                Err(e) => println!("round {:>3}: backpressure: {e}", serving.rounds()),
            }
            next += 1;
        }
        serving.serve_round();
        // A client walks away mid-flight: cancel the first background
        // request once the fleet is busy.
        if !cancelled_one && serving.rounds() == 8 {
            handles[0].cancel();
            cancelled_one = true;
            println!("round   8: client cancelled request 0 mid-flight");
        }
        if serving.prefilling_sessions() > 0 {
            println!(
                "round {:>3}: long prompt trickling in — {} tokens of prefill left, \
                 {} resident streams still decoding",
                serving.rounds(),
                serving.prefill_tokens_remaining(),
                serving.active_sessions() - serving.prefilling_sessions(),
            );
        }
        if serving.rounds().is_multiple_of(8) {
            println!(
                "round {:>3}: {} resident / {} queued, fleet KV {:>9} B (physical {:>9} B)",
                serving.rounds(),
                serving.active_sessions(),
                serving.queued_requests(),
                serving.kv_bytes(),
                serving.fleet_kv_bytes(),
            );
        }
    }
    let elapsed = start.elapsed();

    println!("\nper-request results:");
    let mut total_tokens = 0usize;
    for handle in &handles {
        let r = handle.report().expect("all requests resolved");
        total_tokens += r.tokens.len();
        println!(
            "  request {:>2} [{:>11}]: {:>3} prompt + {:>2} generated{}, waited {:>2} rounds ({:>6.2} ms), cache {:>8} B",
            r.session,
            r.class.name(),
            r.prompt_tokens,
            r.tokens.len(),
            if r.cancelled { " (cancelled)" } else { "" },
            r.queue_wait_rounds,
            r.queue_wait_ns as f64 / 1e6,
            r.kv_bytes,
        );
    }
    let stats = serving.stats();
    println!("\nfleet totals:");
    println!(
        "  served               : {} requests ({} completed, {} cancelled) in {} rounds",
        stats.submitted, stats.completed, stats.cancelled, stats.rounds
    );
    println!(
        "  throughput           : {:.1} tokens/s aggregate ({} tokens in {:.2} s)",
        total_tokens as f64 / elapsed.as_secs_f64(),
        total_tokens,
        elapsed.as_secs_f64()
    );
    println!(
        "  fairness ledger      : interactive {} / standard {} / background {} tokens (weights 4:2:1)",
        stats.tokens_by_class[QosClass::Interactive.index()],
        stats.tokens_by_class[QosClass::Standard.index()],
        stats.tokens_by_class[QosClass::Background.index()],
    );
    println!(
        "  peaks                : {} resident sessions, {} queued requests",
        stats.max_resident_sessions, stats.max_queue_depth
    );
    println!(
        "  chunked prefill      : {} chunks, prefill tokens i/s/b {}/{}/{}",
        stats.prefill_chunks,
        stats.prefill_tokens_by_class[QosClass::Interactive.index()],
        stats.prefill_tokens_by_class[QosClass::Standard.index()],
        stats.prefill_tokens_by_class[QosClass::Background.index()],
    );

    // The serving engine timed every request and round phase as it went
    // (see docs/OBSERVABILITY.md); read the percentiles back out.
    let telemetry = serving.telemetry();
    let ms = |ns: u64| ns as f64 / 1e6;
    println!("\nlatency percentiles:");
    for (name, h) in [
        ("time to first token", &telemetry.ttft),
        ("inter-token gap", &telemetry.inter_token),
        ("queue wait", &telemetry.queue_wait),
        ("end-to-end", &telemetry.e2e),
    ] {
        println!(
            "  {name:<21}: n={:<4} p50 {:>9.3} ms, p95 {:>9.3} ms, p99 {:>9.3} ms, max {:>9.3} ms",
            h.count,
            ms(h.p50_ns),
            ms(h.p95_ns),
            ms(h.p99_ns),
            ms(h.max_ns)
        );
    }
    println!("  round phase p95      :");
    for phase in RoundPhase::ALL {
        let h = &telemetry.phases[phase.index()];
        println!(
            "    {:<19}: {:>9.3} ms over {} rounds",
            phase.name(),
            ms(h.p95_ns),
            h.count
        );
    }
    Ok(())
}
