//! Inspect the KV-cache distribution of a model: which key channels carry
//! outliers and how anisotropic keys are compared to values (the paper's
//! Fig. 2 / Fig. 3 motivation).
//!
//! Run with `cargo run --release -p million --example kv_distribution`.

use million_eval::analysis::{ChannelStats, KvDistributionReport};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_model::{build_caches, CacheSpec, KvCapture, ModelConfig, Transformer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::llama2_7b_sim();
    let model = Transformer::new(config.clone(), 3);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let stream = corpus.generate(384);

    let mut caches = build_caches(&config, &CacheSpec::Full);
    let mut capture = KvCapture::new(config.n_layers, config.head_dim(), 384);
    let _ = model.prefill(&stream, &mut caches, Some(&mut capture));

    let keys: Vec<_> = (0..config.n_layers)
        .map(|l| capture.keys(l).clone())
        .collect();
    let values: Vec<_> = (0..config.n_layers)
        .map(|l| capture.values(l).clone())
        .collect();
    let report = KvDistributionReport::from_captures(config.name.clone(), &keys, &values);

    println!(
        "KV distribution of {} over {} tokens\n",
        config.name,
        stream.len()
    );
    for layer in 0..report.n_layers() {
        let k: &ChannelStats = &report.key_stats[layer];
        let v: &ChannelStats = &report.value_stats[layer];
        println!(
            "layer {layer}: key range [{:8.3}, {:8.3}]  anisotropy {:5.2}  outlier channels {}",
            k.global_min,
            k.global_max,
            k.std_anisotropy(),
            k.std_outlier_channels(3.0)
        );
        println!(
            "         value range [{:8.3}, {:8.3}]  anisotropy {:5.2}  outlier channels {}",
            v.global_min,
            v.global_max,
            v.std_anisotropy(),
            v.std_outlier_channels(3.0)
        );
    }
    println!(
        "\nkeys more anisotropic than values: {}",
        report.keys_more_anisotropic_than_values()
    );
    println!(
        "This is why MILLION clusters whole subvectors (PQ) instead of fitting one\ninteger grid per tensor: the per-channel outliers are absorbed by centroids."
    );
    Ok(())
}
