//! Networked serving end to end, in one process: boot a two-shard
//! `serverd`, stream a generation over HTTP/SSE with a raw `std::net`
//! client, then scrape `/metrics` and drain.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p million_serverd --example networked_serving
//! ```
//!
//! The same server is normally started standalone (`cargo run --release
//! -p million_serverd --bin serverd -- --set engine.model=tiny-test`)
//! and spoken to by any HTTP client; this example keeps both ends in one
//! binary so it can assert on what flows over the wire.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use million_serverd::{AppConfig, Server};

fn http(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("receive");
    text
}

fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: example\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn main() {
    // Two shards of the tiny test model; everything else is defaults.
    // Standalone deployments layer this from a TOML file, SERVERD_* env
    // vars, and flags instead (see `serverd --help`).
    let args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--set",
        "engine.model=tiny-test",
        "--set",
        "engine.calibration_tokens=96",
        "--set",
        "engine.async_quant=false",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let config = AppConfig::layered(&args, |_| None).expect("config");

    println!("building {} shards ...", config.server.shards);
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let control = server.control();
    let running = std::thread::spawn(move || server.run().expect("accept loop"));
    println!("serverd listening on http://{addr}\n");

    // Stream a generation over SSE. Each `event: token` frame carries
    // the engine's StepResult; the `event: done` frame carries the full
    // session report (kv bytes, prefix reuse, queue waits, ...).
    let transcript = post(
        addr,
        "/v1/generate",
        r#"{"prompt": [3, 9, 27, 81, 11, 33], "max_new_tokens": 8}"#,
    );
    println!("--- SSE transcript ---");
    for line in transcript.lines().filter(|l| !l.is_empty()) {
        println!("  {line}");
    }

    // A second client sharing the same leading tokens lands on the same
    // shard (prefix-affinity placement) and reuses its sealed blocks.
    let _ = post(
        addr,
        "/v1/generate",
        r#"{"prompt": [3, 9, 27, 81, 11, 33, 55, 66], "max_new_tokens": 8, "stream": false}"#,
    );

    // `/metrics` is content-negotiated: the bare scrape is Prometheus
    // text exposition (what a scraper's GET sends), and the same state is
    // available as one JSON document under `Accept: application/json`.
    let metrics = http(addr, "GET /metrics HTTP/1.1\r\nHost: e\r\n\r\n");
    let body = metrics.split("\r\n\r\n").nth(1).unwrap_or("");
    println!("\n--- /metrics (Prometheus, fleet rows only) ---");
    for line in body.lines().filter(|l| l.contains("shard=\"fleet\"")) {
        println!("  {line}");
    }
    let metrics_json = http(
        addr,
        "GET /metrics HTTP/1.1\r\nHost: e\r\nAccept: application/json\r\n\r\n",
    );
    let json_bytes = metrics_json.split("\r\n\r\n").nth(1).unwrap_or("").len();
    println!("--- /metrics (Accept: application/json) --- {json_bytes} bytes of JSON");

    // The debug surface: a live request table (empty once everything
    // retired) and the drained lifecycle journal as Chrome trace JSON —
    // save that body to a file and load it in chrome://tracing/Perfetto.
    let requests = http(addr, "GET /debug/requests HTTP/1.1\r\nHost: e\r\n\r\n");
    println!(
        "--- /debug/requests ---\n{}",
        requests.split("\r\n\r\n").nth(1).unwrap_or("")
    );
    let trace = http(addr, "GET /debug/trace HTTP/1.1\r\nHost: e\r\n\r\n");
    let trace_body = trace.split("\r\n\r\n").nth(1).unwrap_or("");
    println!(
        "--- /debug/trace --- {} trace events ({} bytes)",
        trace_body.matches("\"ph\":").count(),
        trace_body.len()
    );

    // Graceful teardown: drain every shard, then stop the accept loop.
    let drained = post(addr, "/admin/drain", "");
    println!(
        "--- drain ---\n{}",
        drained.split("\r\n\r\n").nth(1).unwrap_or("")
    );
    control.shutdown();
    running.join().expect("server thread");
    println!("server stopped cleanly");
}
