//! Compare every KV-cache backend (fp16, KIVI, KVQuant, MILLION) on the same
//! model and stream: perplexity-style fidelity, KL divergence from the fp16
//! reference and cache memory.
//!
//! Run with `cargo run --release -p million --example compare_quantizers`.

use million::{train_codebooks, MillionConfig};
use million_eval::corpus::{CorpusConfig, SyntheticCorpus};
use million_eval::perplexity::{evaluate_perplexity_against, teacher_log_probs};
use million_kvcache::{KiviConfig, KvQuantConfig};
use million_model::{CacheSpec, ModelConfig, Transformer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::llama2_7b_sim();
    let model = Transformer::new(config.clone(), 77);
    let corpus = SyntheticCorpus::new(CorpusConfig::wikitext2_like(config.vocab_size));
    let calibration = corpus.generate(256);
    let stream = corpus.generate(160);

    let codebooks = train_codebooks(
        &model,
        &calibration,
        &MillionConfig::four_bit(config.head_dim()),
    )?;
    let specs: Vec<(&str, CacheSpec)> = vec![
        ("fp16 baseline", CacheSpec::Full),
        ("KIVI 4-bit", CacheSpec::Kivi(KiviConfig::default())),
        (
            "KVQuant 4-bit",
            CacheSpec::KvQuant(KvQuantConfig::default()),
        ),
        (
            "KVQuant 4-bit + 1% outliers",
            CacheSpec::KvQuant(KvQuantConfig {
                outlier_fraction: 0.01,
                ..KvQuantConfig::default()
            }),
        ),
        (
            "MILLION 4-bit",
            CacheSpec::Pq(codebooks.to_pq_spec(0, true)),
        ),
    ];

    println!("scoring {} tokens on {} ...\n", stream.len(), config.name);
    let teacher = teacher_log_probs(&model, &stream, 16);
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "cache backend", "ppl", "KL vs fp16", "KV bytes"
    );
    for (name, spec) in specs {
        let report = evaluate_perplexity_against(&model, &spec, &stream, 16, &teacher);
        println!(
            "{:<28} {:>10.3} {:>12.5} {:>12}",
            name, report.ppl, report.kl_vs_fp16, report.kv_bytes
        );
    }
    println!(
        "\nThe fp16 row is the reference entropy; every other row's increase is the\ndegradation its quantization introduces (Table II of the paper)."
    );
    Ok(())
}
