//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! `gen_range` / `gen_bool`. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a fixed seed, which is all the repository
//! relies on (no test pins exact draw values).

use std::ops::Range;

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws a value uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span and
        // irrelevant for the statistical uses in this workspace.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = range.end - range.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }
}

impl SampleUniform for u32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = u64::from(range.end - range.start);
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u32;
        range.start + hi
    }
}

impl SampleUniform for i32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let span = (i64::from(range.end) - i64::from(range.start)) as u64;
        let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as i64;
        (i64::from(range.start) + hi) as i32
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256** generator (stands in for `rand`'s
    /// ChaCha-based `StdRng`; the workspace only needs seed-determinism, not
    /// cryptographic quality).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = rng.gen_range(5..17usize);
            assert!((5..17).contains(&u));
            let f = rng.gen_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&f));
            let d = rng.gen_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
