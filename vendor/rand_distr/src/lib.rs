//! Offline stand-in for the `rand_distr` crate: the [`Normal`] and [`Zipf`]
//! distributions the workspace uses, over the vendored [`rand`] RNG.

use rand::Rng;

/// A distribution over values of type `T`, mirroring
/// `rand_distr::Distribution`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Float types [`Normal`] can produce (`f32` / `f64`).
pub trait Float: Copy {
    /// `true` when the value is finite and non-negative.
    fn valid_std(self) -> bool;
    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f32 {
    fn valid_std(self) -> bool {
        self.is_finite() && self >= 0.0
    }
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl Float for f64 {
    fn valid_std(self) -> bool {
        self.is_finite() && self >= 0.0
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
}

/// Gaussian distribution sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or not finite.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !std_dev.valid_std() {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; one fresh pair of uniforms per draw keeps the
        // distribution stateless (no cached spare).
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// Error returned by [`Zipf::new`] for invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipfError;

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Zipf requires n >= 1 and a positive exponent")
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over ranks `1..=n` with `P(k) ∝ k^-s`, sampled from a
/// precomputed cumulative table (the workspace's `n` is at most a vocabulary
/// size, so the table stays small).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`ZipfError`] if `n == 0` or `s` is not a positive finite
    /// number.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 || !s.is_finite() || s <= 0.0 {
            return Err(ZipfError);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf {
    /// Returns the sampled rank as a float in `1.0..=n`, matching
    /// `rand_distr::Zipf`'s output convention.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let dist = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn normal_rejects_negative_std() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
    }

    #[test]
    fn zipf_ranks_are_in_range_and_skewed() {
        let dist = Zipf::new(100, 1.1).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut rank1 = 0usize;
        for _ in 0..5000 {
            let r = dist.sample(&mut rng);
            assert!((1.0..=100.0).contains(&r));
            if r == 1.0 {
                rank1 += 1;
            }
        }
        // Rank 1 should dominate: it carries ~19% of the mass at s = 1.1.
        assert!(rank1 > 500, "rank-1 draws {rank1}");
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
    }
}
