//! Offline stand-in for the `serde` crate.
//!
//! [`Serialize`] writes compact JSON straight into a `String` — enough for
//! the experiment binaries' report files — and [`Deserialize`] is a marker
//! (nothing in the workspace deserializes at runtime). The derive macros come
//! from the vendored `serde_derive`.

// Lets the derive-generated `::serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Serialization into JSON text.
pub trait Serialize {
    /// Appends `self` as compact JSON to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Writes a JSON string literal (with escaping) into `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an object key (with its leading comma when needed); used by the
/// derive-generated code.
pub fn json_key(out: &mut String, first: &mut bool, name: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write_json_string(out, name);
    out.push(':');
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Infinity; serde_json emits null too.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, &self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        self.0.serialize_json(out);
        out.push(',');
        self.1.serialize_json(out);
        out.push(',');
        self.2.serialize_json(out);
        out.push(',');
        self.3.serialize_json(out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut out = String::new();
        v.serialize_json(&mut out);
        out
    }

    #[test]
    fn primitives_serialize() {
        assert_eq!(json(&5u32), "5");
        assert_eq!(json(&-3i64), "-3");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f32::NAN), "null");
        assert_eq!(json("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers_serialize() {
        assert_eq!(json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(&Some(7usize)), "7");
        assert_eq!(json(&Option::<u8>::None), "null");
        assert_eq!(json(&std::sync::Arc::new(2u8)), "2");
        assert_eq!(json(&(1u8, "x".to_string())), "[1,\"x\"]");
    }

    #[test]
    fn derive_named_struct_and_enum() {
        #[derive(Serialize)]
        struct Point {
            x: f32,
            y: f32,
            #[serde(skip)]
            _scratch: u8,
        }
        #[derive(Serialize)]
        enum Kind {
            Plain,
            Scaled { factor: f64 },
            Pair(u8, u8),
        }
        assert_eq!(
            json(&Point {
                x: 1.0,
                y: 2.0,
                _scratch: 9
            }),
            "{\"x\":1,\"y\":2}"
        );
        assert_eq!(json(&Kind::Plain), "\"Plain\"");
        assert_eq!(
            json(&Kind::Scaled { factor: 0.5 }),
            "{\"Scaled\":{\"factor\":0.5}}"
        );
        assert_eq!(json(&Kind::Pair(1, 2)), "{\"Pair\":[1,2]}");
    }
}
