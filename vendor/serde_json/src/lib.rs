//! Offline stand-in for `serde_json`: just enough to write the experiment
//! report files (`to_string` / `to_string_pretty` over the vendored
//! [`serde::Serialize`]).

/// Serialization error. The vendored writer is infallible, so this is only a
/// type-compatibility shell.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization failed")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indents compact JSON. Assumes well-formed input (which the vendored
/// serializer guarantees).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_is_indented() {
        let pretty = prettify("{\"a\":1,\"b\":[2,3]}");
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
    }

    #[test]
    fn strings_with_braces_are_not_reindented() {
        let pretty = prettify("{\"a\":\"x{y}\"}");
        assert!(pretty.contains("\"x{y}\""));
    }

    #[test]
    fn to_string_round_trips_serialize() {
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }
}
