//! Offline stand-in for `serde_json`: enough to write the experiment report
//! files (`to_string` / `to_string_pretty` over the vendored
//! [`serde::Serialize`]) and to read them back as a dynamic [`Value`] tree
//! (`from_str`) — the vendored `serde` has no runtime `Deserialize`, so
//! consumers that diff committed reports (e.g. the CI benchmark-regression
//! gate) navigate the `Value` directly.

/// Serialization error. The vendored writer is infallible, so this is only a
/// type-compatibility shell.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON serialization failed")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indents compact JSON. Assumes well-formed input (which the vendored
/// serializer guarantees).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced for non-finite numbers by the serializer).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error);
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error)
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let b = *bytes.get(*pos).ok_or(Error)?;
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *bytes.get(*pos).ok_or(Error)?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(Error)?;
                        *pos += 4;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(hex).map_err(|_| Error)?, 16)
                                .map_err(|_| Error)?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(Error),
                }
            }
            _ => {
                // Re-assemble multi-byte UTF-8 sequences from the source.
                let start = *pos - 1;
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes.get(start..start + len).ok_or(Error)?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| Error)?);
                *pos = start + len;
            }
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match *bytes.get(*pos).ok_or(Error)? {
        b'n' => parse_literal(bytes, pos, "null").map(|()| Value::Null),
        b't' => parse_literal(bytes, pos, "true").map(|()| Value::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false").map(|()| Value::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(Error),
                }
            }
        }
        _ => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error)?;
            text.parse::<f64>().map(Value::Number).map_err(|_| Error)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_what_the_serializer_writes() {
        let doc = "{\"schema\":\"v1\",\"ok\":true,\"x\":-1.5e3,\"items\":[1,2,{\"k\":null}],\"s\":\"a\\\"b\"}";
        let value = from_str(doc).unwrap();
        assert_eq!(value.get("schema").unwrap().as_str(), Some("v1"));
        assert_eq!(value.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(value.get("x").unwrap().as_f64(), Some(-1500.0));
        let items = value.get("items").unwrap().as_array().unwrap();
        assert_eq!(items[1].as_f64(), Some(2.0));
        assert_eq!(items[2].get("k"), Some(&Value::Null));
        assert_eq!(value.get("s").unwrap().as_str(), Some("a\"b"));
        // Pretty output parses too.
        let pretty = prettify(doc);
        assert_eq!(from_str(&pretty).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let pretty = prettify("{\"a\":1,\"b\":[2,3]}");
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    2,\n    3\n  ]\n}");
    }

    #[test]
    fn strings_with_braces_are_not_reindented() {
        let pretty = prettify("{\"a\":\"x{y}\"}");
        assert!(pretty.contains("\"x{y}\""));
    }

    #[test]
    fn to_string_round_trips_serialize() {
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }
}
