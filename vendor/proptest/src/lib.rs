//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with optional `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, numeric range strategies, and
//! `proptest::collection::vec`. Cases are generated from a deterministic
//! per-case RNG; there is no shrinking — a failing case panics with the
//! normal assertion message.

use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// Sets the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// Creates an RNG for one test case.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut CaseRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut CaseRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// Collection strategies.
pub mod collection {
    use super::{CaseRng, Strategy};
    use std::ops::Range;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut CaseRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` case (panics on failure — the
/// vendored runner does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::CaseRng::new(
                        u64::from(case).wrapping_mul(0x0005_DEEC_E66D_0005) ^ 0xB,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests: each function runs for the configured number of
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::CaseRng::new(1);
        for _ in 0..500 {
            let v = (3u8..=16).generate(&mut rng);
            assert!((3..=16).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::CaseRng::new(2);
        for _ in 0..100 {
            let v = crate::collection::vec(0usize..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(0usize..10, 7).generate(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn the_macro_itself_runs(a in 0usize..10, b in 1u8..=4) {
            prop_assert!(a < 10);
            prop_assert_eq!(b.min(4), b);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in -1.0f64..1.0) {
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }
}
