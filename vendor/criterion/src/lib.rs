//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`
//! configuration, `bench_function`, benchmark groups with
//! `bench_with_input`, `Bencher::iter` / `iter_batched` — as a plain
//! wall-clock harness: warm up for the configured time, then time
//! `sample_size` samples and print min / mean / max per iteration. No
//! statistics beyond that; the point is that `cargo bench` compiles and runs
//! offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `std::hint::black_box` style call sites can also use
/// `criterion::black_box`.
pub use std::hint::black_box;

/// Benchmark harness configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before timing starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration (an upper bound here: sampling
    /// stops early once it is exceeded).
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: BenchConfig {
                sample_size: self.sample_size,
                warm_up_time: self.warm_up_time,
                measurement_time: self.measurement_time,
            },
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    #[doc(hidden)]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[derive(Clone, Copy)]
struct BenchConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Finishes the group (a no-op; reports are printed per benchmark).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the vendored harness
/// treats every variant identically (one setup per timed iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    config: BenchConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if measure_start.elapsed() > self.config.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` over inputs produced by `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            let input = setup();
            black_box(routine(input));
        }
        let measure_start = Instant::now();
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if measure_start.elapsed() > self.config.measurement_time {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let ns: Vec<f64> = self.samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
        let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ns.iter().cloned().fold(0.0, f64::max);
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        println!(
            "{name:<50} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_batched_iteration_run() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
