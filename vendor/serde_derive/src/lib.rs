//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this build environment, so this proc-macro
//! crate re-implements `#[derive(Serialize, Deserialize)]` for the shapes the
//! workspace actually contains: non-generic structs with named fields, unit
//! structs, tuple structs, and enums with unit / named / tuple variants.
//! `Serialize` generates a real JSON writer (used by the experiment binaries
//! through the vendored `serde_json`); `Deserialize` is a marker impl only —
//! nothing in the workspace deserializes at runtime. The `#[serde(skip, ...)]`
//! field attribute is honoured by omitting the field from the output.
//!
//! Parsing works directly on token trees (no `syn`/`quote` available); any
//! unsupported shape — generics, unions — produces a `compile_error!` so
//! failures are loud rather than silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// Named fields that survive `#[serde(skip)]`, plus whether any were
    /// skipped (controls `..` in match patterns).
    Named(Vec<String>, bool),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Returns `true` if an attribute token group is `serde(...)` containing the
/// `skip` option.
fn attr_is_serde_skip(tokens: &[TokenTree]) -> bool {
    // Shape inside the outer bracket group: `serde ( skip , ... )`.
    let mut iter = tokens.iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes from `tokens[*i]`, reporting whether
/// any was `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skipped = false;
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if attr_is_serde_skip(&inner) {
                    skipped = true;
                }
                *i += 2;
            }
            _ => break,
        }
    }
    skipped
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Advances past a type (or any token run) until a comma at angle-bracket
/// depth zero, leaving `*i` on the comma (or at the end).
fn skip_until_field_separator(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parses `name: Type, ...` named fields from a brace group's tokens.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Fields, String> {
    let mut names = Vec::new();
    let mut any_skipped = false;
    let mut i = 0;
    while i < tokens.len() {
        let skipped = skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other:?}")),
        }
        skip_until_field_separator(tokens, &mut i);
        i += 1; // past the comma (or end)
        if skipped {
            any_skipped = true;
        } else {
            names.push(name);
        }
    }
    Ok(Fields::Named(names, any_skipped))
}

/// Counts tuple fields in a paren group's tokens (comma-separated at
/// angle-depth zero).
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                parse_named_fields(&inner)?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_until_field_separator(tokens, &mut i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type {name} is not supported by the vendored serde_derive"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_named_fields(&inner)?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_tuple_fields(&inner))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    parse_variants(&inner)?
                }
                other => return Err(format!("unsupported enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for a `{other}`")),
    }
}

/// Emits statements serializing `{` named fields `}` given an accessor prefix
/// (`&self.x` for structs, the bound name `x` for enum variants).
fn named_fields_body(names: &[String], self_access: bool) -> String {
    let mut code = String::from("out.push('{'); let mut first = true;\n");
    for n in names {
        let access = if self_access {
            format!("&self.{n}")
        } else {
            n.clone()
        };
        code.push_str(&format!(
            "::serde::json_key(out, &mut first, {n:?}); ::serde::Serialize::serialize_json({access}, out);\n"
        ));
    }
    code.push_str("let _ = first; out.push('}');\n");
    code
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names, _) => named_fields_body(names, true),
                Fields::Unit => "out.push_str(\"null\");".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize_json(&self.0, out);".to_string(),
                Fields::Tuple(n) => {
                    let mut code = String::from("out.push('[');\n");
                    for idx in 0..*n {
                        if idx > 0 {
                            code.push_str("out.push(',');\n");
                        }
                        code.push_str(&format!(
                            "::serde::Serialize::serialize_json(&self.{idx}, out);\n"
                        ));
                    }
                    code.push_str("out.push(']');\n");
                    code
                }
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            if variants.is_empty() {
                return compile_error("cannot serialize an empty enum");
            }
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::write_json_string(out, {vn:?}),\n"
                    )),
                    Fields::Named(fields, skipped) => {
                        let binders = fields.join(", ");
                        let dots = if *skipped || fields.is_empty() {
                            ", .."
                        } else {
                            ""
                        };
                        let dots = dots.trim_start_matches(',').trim();
                        let pattern = if binders.is_empty() {
                            format!("{name}::{vn} {{ .. }}")
                        } else if dots.is_empty() {
                            format!("{name}::{vn} {{ {binders} }}")
                        } else {
                            format!("{name}::{vn} {{ {binders}, {dots} }}")
                        };
                        let mut inner =
                            format!("out.push('{{'); ::serde::write_json_string(out, {vn:?}); out.push(':');\n");
                        inner.push_str("{ ");
                        inner.push_str(&named_fields_body(fields, false));
                        inner.push_str(" }\nout.push('}');");
                        arms.push_str(&format!("{pattern} => {{ {inner} }}\n"));
                    }
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pattern = format!("{name}::{vn}({})", binders.join(", "));
                        let mut inner =
                            format!("out.push('{{'); ::serde::write_json_string(out, {vn:?}); out.push(':');\n");
                        if *n == 1 {
                            inner.push_str("::serde::Serialize::serialize_json(f0, out);\n");
                        } else {
                            inner.push_str("out.push('[');\n");
                            for (idx, b) in binders.iter().enumerate() {
                                if idx > 0 {
                                    inner.push_str("out.push(',');\n");
                                }
                                inner.push_str(&format!(
                                    "::serde::Serialize::serialize_json({b}, out);\n"
                                ));
                            }
                            inner.push_str("out.push(']');\n");
                        }
                        inner.push_str("out.push('}');");
                        arms.push_str(&format!("{pattern} => {{ {inner} }}\n"));
                    }
                }
            }
            (name.clone(), format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
