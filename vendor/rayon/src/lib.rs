//! Offline stand-in for the `rayon` crate.
//!
//! Provides the exact parallel-iterator subset this workspace uses —
//! `(range).into_par_iter().map(..).collect()` and
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` — executed on scoped
//! `std::thread` workers split into contiguous blocks. Work-stealing is not
//! implemented; the workspace's loops are uniform enough that static
//! partitioning is within noise of real rayon on these workloads.

use std::ops::Range;

/// Everything a caller needs to `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

fn num_threads() -> usize {
    // Mirror real rayon: RAYON_NUM_THREADS overrides the detected core
    // count (useful for forcing the parallel paths on single-core CI boxes
    // and for pinning benchmarks). Cached once per process.
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Number of worker threads parallel operations may use, mirroring
/// `rayon::current_num_threads`. Callers sizing per-worker scratch pools
/// (one state per worker, reused across calls) should allocate this many.
pub fn current_num_threads() -> usize {
    num_threads()
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type produced.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// The result of [`ParRange::map`], awaiting a `collect`.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluates the map in parallel, preserving index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        let n = self.range.len();
        let nt = num_threads().min(n).max(1);
        if nt <= 1 {
            return self.range.map(&self.f).collect::<Vec<T>>().into();
        }
        let start = self.range.start;
        let per = n.div_ceil(nt);
        let f = &self.f;
        let mut pieces: Vec<Vec<T>> = Vec::with_capacity(nt);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nt)
                .map(|t| {
                    let lo = start + t * per;
                    let hi = (lo + per).min(start + n);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            for h in handles {
                pieces.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in pieces {
            out.extend(p);
        }
        out.into()
    }
}

/// Parallel mutable chunk iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `chunk_size` processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            data: self.data,
            chunk_size: self.chunk_size,
        }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair in parallel, handing each
    /// worker exclusive access to one element of a caller-owned scratch pool.
    ///
    /// This is the shim's reusable-state analogue of rayon's
    /// `for_each_init`: real rayon creates fresh state per split, which would
    /// allocate on every call — here the caller owns the pool (sized via
    /// [`crate::current_num_threads`]) so scratch buffers persist across
    /// calls. Passing a single-element pool forces the serial path, which
    /// performs no allocation (and spawns no threads) at all — callers use
    /// that to gate parallelism on a work threshold.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty while there is at least one chunk.
    pub fn for_each_with_scratch<S, F>(self, pool: &mut [S], f: F)
    where
        S: Send,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        let workers = num_threads();
        self.for_each_with_scratch_on(workers, pool, f)
    }

    /// [`Self::for_each_with_scratch`] with an explicit worker budget —
    /// split out so the parallel branch stays testable on single-core
    /// machines.
    fn for_each_with_scratch_on<S, F>(self, workers: usize, pool: &mut [S], f: F)
    where
        S: Send,
        F: Fn(&mut S, (usize, &mut [T])) + Sync,
    {
        if self.data.is_empty() {
            return;
        }
        assert!(
            !pool.is_empty(),
            "scratch pool must hold at least one state"
        );
        let n = self.data.len().div_ceil(self.chunk_size);
        let nt = workers.min(n).min(pool.len()).max(1);
        if nt <= 1 {
            // Allocation-free serial path: no partitioning, no threads.
            let scratch = &mut pool[0];
            for pair in self.data.chunks_mut(self.chunk_size).enumerate() {
                f(scratch, pair);
            }
            return;
        }
        // Peel contiguous blocks of whole chunks off the slice with
        // `split_at_mut` — no chunk vector, no per-group vectors; the only
        // per-call cost left is the scoped thread spawns themselves.
        let per = n.div_ceil(nt);
        let chunk_size = self.chunk_size;
        let f = &f;
        std::thread::scope(|scope| {
            let mut rest = self.data;
            let mut first_chunk = 0usize;
            let mut states = pool.iter_mut();
            while !rest.is_empty() {
                let take = (per * chunk_size).min(rest.len());
                let (block, tail) = rest.split_at_mut(take);
                rest = tail;
                let scratch = states.next().expect("pool holds one state per group");
                let base = first_chunk;
                scope.spawn(move || {
                    for (j, chunk) in block.chunks_mut(chunk_size).enumerate() {
                        f(scratch, (base + j, chunk));
                    }
                });
                first_chunk += per;
            }
        });
    }

    /// Applies `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.data.chunks_mut(self.chunk_size).enumerate().collect();
        let n = chunks.len();
        let nt = num_threads().min(n).max(1);
        if nt <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        let per = n.div_ceil(nt);
        let mut remaining = chunks;
        let mut groups: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(nt);
        while !remaining.is_empty() {
            let take = per.min(remaining.len());
            let rest = remaining.split_off(take);
            groups.push(remaining);
            remaining = rest;
        }
        let f = &f;
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(move || {
                    for pair in group {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[100], 11);
    }

    #[test]
    fn empty_range_collects_empty() {
        let empty: Vec<u8> = (5..5).into_par_iter().map(|_| 0u8).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn for_each_with_scratch_reuses_pool_and_covers_chunks() {
        let mut pool: Vec<Vec<usize>> = (0..super::current_num_threads().max(1))
            .map(|_| Vec::new())
            .collect();
        let mut data = vec![0usize; 57];
        data.par_chunks_mut(5).enumerate().for_each_with_scratch(
            &mut pool,
            |scratch, (i, chunk)| {
                scratch.push(i);
                for v in chunk.iter_mut() {
                    *v = i + 1;
                }
            },
        );
        assert!(data.iter().all(|&v| v > 0));
        // Every chunk index was seen exactly once across the pool states.
        let mut seen: Vec<usize> = pool.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_with_scratch_parallel_branch_covers_all_chunks_once() {
        // Force the multi-worker branch regardless of the machine's core
        // count: 4 workers over 13 chunks of mixed sizes.
        let mut pool: Vec<Vec<usize>> = (0..4).map(|_| Vec::new()).collect();
        let mut data = vec![0usize; 5 * 12 + 3]; // last chunk is partial
        super::ParChunksMutEnumerate {
            data: &mut data,
            chunk_size: 5,
        }
        .for_each_with_scratch_on(4, &mut pool, |scratch, (i, chunk)| {
            scratch.push(i);
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(*data.last().unwrap(), 13); // partial chunk got index 12
        let mut seen: Vec<usize> = pool.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..13).collect::<Vec<_>>());
        // More than one worker actually carried chunks.
        assert!(pool.iter().filter(|g| !g.is_empty()).count() > 1);
    }

    #[test]
    fn for_each_with_scratch_on_empty_slice_is_noop() {
        let mut pool = vec![0u8; 1];
        let mut data: Vec<u8> = Vec::new();
        data.par_chunks_mut(4)
            .enumerate()
            .for_each_with_scratch(&mut pool, |_, _| panic!("no chunks expected"));
    }
}
