//! Offline stand-in for the `rayon` crate.
//!
//! Provides the exact parallel-iterator subset this workspace uses —
//! `(range).into_par_iter().map(..).collect()` and
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` — executed on scoped
//! `std::thread` workers split into contiguous blocks. Work-stealing is not
//! implemented; the workspace's loops are uniform enough that static
//! partitioning is within noise of real rayon on these workloads.

use std::ops::Range;

/// Everything a caller needs to `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The parallel iterator type produced.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }
}

/// The result of [`ParRange::map`], awaiting a `collect`.
pub struct ParMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    /// Evaluates the map in parallel, preserving index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: From<Vec<T>>,
    {
        let n = self.range.len();
        let nt = num_threads().min(n).max(1);
        if nt <= 1 {
            return self.range.map(&self.f).collect::<Vec<T>>().into();
        }
        let start = self.range.start;
        let per = n.div_ceil(nt);
        let f = &self.f;
        let mut pieces: Vec<Vec<T>> = Vec::with_capacity(nt);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nt)
                .map(|t| {
                    let lo = start + t * per;
                    let hi = (lo + per).min(start + n);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            for h in handles {
                pieces.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(n);
        for p in pieces {
            out.extend(p);
        }
        out.into()
    }
}

/// Parallel mutable chunk iteration over slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of `chunk_size` processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            data: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs every chunk with its index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate {
            data: self.data,
            chunk_size: self.chunk_size,
        }
    }

    /// Applies `f` to every chunk in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct ParChunksMutEnumerate<'a, T> {
    data: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMutEnumerate<'a, T> {
    /// Applies `f` to every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunks: Vec<(usize, &mut [T])> =
            self.data.chunks_mut(self.chunk_size).enumerate().collect();
        let n = chunks.len();
        let nt = num_threads().min(n).max(1);
        if nt <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        let per = n.div_ceil(nt);
        let mut remaining = chunks;
        let mut groups: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(nt);
        while !remaining.is_empty() {
            let take = per.min(remaining.len());
            let rest = remaining.split_off(take);
            groups.push(remaining);
            remaining = rest;
        }
        let f = &f;
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(move || {
                    for pair in group {
                        f(pair);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &s) in squares.iter().enumerate() {
            assert_eq!(s, i * i);
        }
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[100], 11);
    }

    #[test]
    fn empty_range_collects_empty() {
        let empty: Vec<u8> = (5..5).into_par_iter().map(|_| 0u8).collect();
        assert!(empty.is_empty());
    }
}
