//! Offline stand-in for the `bytes` crate: an [`Arc`]-backed immutable byte
//! buffer with the constructor and slice access this workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable buffer of bytes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn copy_clone_and_deref() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b, c);
    }
}
