//! Full-precision (fp16-equivalent) KV cache — the paper's baseline.

use million_tensor::alibi::alibi_bias;
use million_tensor::ops::dot;
use million_tensor::Matrix;

use crate::scratch::AttendScratch;
use crate::traits::{append_head_strided, AttendParams, CacheLayout, KvCache};

/// Uncompressed per-head key/value storage.
///
/// Values are held as `f32` for exact CPU arithmetic, but the memory report
/// assumes 2 bytes per element so compression ratios match the fp16 baseline
/// the paper compares against.
///
/// # Example
///
/// ```
/// use million_kvcache::{AttendParams, AttendScratch, CacheLayout, FullPrecisionCache, KvCache};
/// use million_tensor::Matrix;
///
/// let layout = CacheLayout::new(1, 4);
/// let mut cache = FullPrecisionCache::new(layout);
/// let keys = Matrix::from_vec(2, 4, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
/// let values = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
/// cache.append(&keys, &values);
///
/// let mut out = vec![0.0; 4];
/// let mut scratch = AttendScratch::new();
/// let params = AttendParams::new(0, &[10.0, 0.0, 0.0, 0.0], 1.0, 1);
/// cache.attend(&params, &mut scratch, &mut out);
/// // The first key matches the query far better, so the output is close to the first value.
/// assert!((out[0] - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct FullPrecisionCache {
    layout: CacheLayout,
    len: usize,
    /// Per head, row-major `[len, head_dim]` keys.
    keys: Vec<Vec<f32>>,
    /// Per head, row-major `[len, head_dim]` values.
    values: Vec<Vec<f32>>,
    /// Bytes accounted per stored element (2 = fp16 baseline, 4 = fp32).
    element_bytes: usize,
}

impl FullPrecisionCache {
    /// Creates an empty cache with fp16-equivalent memory accounting.
    pub fn new(layout: CacheLayout) -> Self {
        Self::with_element_bytes(layout, 2)
    }

    /// Creates an empty cache with a custom per-element byte accounting
    /// (e.g. 4 for an fp32 baseline).
    pub fn with_element_bytes(layout: CacheLayout, element_bytes: usize) -> Self {
        Self {
            layout,
            len: 0,
            keys: vec![Vec::new(); layout.n_kv_heads],
            values: vec![Vec::new(); layout.n_kv_heads],
            element_bytes,
        }
    }

    /// Pre-reserves storage for `additional` more tokens in every head, so a
    /// decode loop of known horizon appends without reallocating (the
    /// full-decode-step zero-allocation test relies on this).
    pub fn reserve_tokens(&mut self, additional: usize) {
        let d = self.layout.head_dim;
        for buf in self.keys.iter_mut().chain(self.values.iter_mut()) {
            buf.reserve(additional * d);
        }
    }

    /// Key vector of `token` for `head`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn key(&self, head: usize, token: usize) -> &[f32] {
        let d = self.layout.head_dim;
        &self.keys[head][token * d..(token + 1) * d]
    }

    /// Value vector of `token` for `head`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds.
    pub fn value(&self, head: usize, token: usize) -> &[f32] {
        let d = self.layout.head_dim;
        &self.values[head][token * d..(token + 1) * d]
    }
}

impl KvCache for FullPrecisionCache {
    fn layout(&self) -> CacheLayout {
        self.layout
    }

    fn len(&self) -> usize {
        self.len
    }

    fn append(&mut self, keys: &Matrix, values: &Matrix) {
        append_head_strided(
            &self.layout,
            keys,
            values,
            self.keys.iter_mut().zip(self.values.iter_mut()),
        );
        self.len += keys.rows();
    }

    fn attend(&self, params: &AttendParams<'_>, scratch: &mut AttendScratch, out: &mut [f32]) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");

        scratch.softmax.reset(d);
        let keys = &self.keys[params.head];
        let values = &self.values[params.head];
        for t in 0..self.len {
            let k = &keys[t * d..(t + 1) * d];
            let mut score = dot(params.query, k) * params.scale;
            if let Some(slope) = params.alibi_slope {
                score += alibi_bias(slope, params.query_pos, t);
            }
            scratch.softmax.push(score, &values[t * d..(t + 1) * d]);
        }
        if let Some((cur_key, cur_value)) = params.current {
            // The current token attends to itself with zero ALiBi distance.
            scratch
                .softmax
                .push(dot(params.query, cur_key) * params.scale, cur_value);
        }
        scratch.softmax.finish_into(out);
    }

    fn memory_bytes(&self) -> usize {
        2 * self.len * self.layout.width() * self.element_bytes
    }

    fn reset(&mut self) {
        self.len = 0;
        for head in self.keys.iter_mut().chain(self.values.iter_mut()) {
            head.clear();
        }
    }

    fn kind(&self) -> &'static str {
        "fp16"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use million_tensor::init::{normal_matrix, seeded_rng};
    use million_tensor::ops::softmax_in_place;

    fn layout() -> CacheLayout {
        CacheLayout::new(2, 8)
    }

    fn random_kv(seed: u64, tokens: usize, layout: &CacheLayout) -> (Matrix, Matrix) {
        let mut rng = seeded_rng(seed);
        let k = normal_matrix(&mut rng, tokens, layout.width(), 0.0, 1.0);
        let v = normal_matrix(&mut rng, tokens, layout.width(), 0.0, 1.0);
        (k, v)
    }

    #[test]
    fn append_grows_len() {
        let mut cache = FullPrecisionCache::new(layout());
        assert!(cache.is_empty());
        let (k, v) = random_kv(0, 5, &layout());
        cache.append(&k, &v);
        cache.append(&k, &v);
        assert_eq!(cache.len(), 10);
    }

    #[test]
    #[should_panic(expected = "KV width mismatch")]
    fn append_rejects_wrong_width() {
        let mut cache = FullPrecisionCache::new(layout());
        let bad = Matrix::zeros(1, 7);
        cache.append(&bad, &bad);
    }

    #[test]
    fn attend_matches_reference_softmax() {
        let layout = layout();
        let mut cache = FullPrecisionCache::new(layout);
        let (k, v) = random_kv(1, 12, &layout);
        cache.append(&k, &v);

        let query: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).cos()).collect();
        let scale = 1.0 / (8f32).sqrt();
        let mut out = vec![0.0; 8];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(1, &query, scale, 11),
            &mut scratch,
            &mut out,
        );

        // Reference computation.
        let mut scores: Vec<f32> = (0..12)
            .map(|t| dot(&query, cache.key(1, t)) * scale)
            .collect();
        softmax_in_place(&mut scores);
        let mut expected = [0.0f32; 8];
        for (t, &p) in scores.iter().enumerate() {
            for (e, &x) in expected.iter_mut().zip(cache.value(1, t)) {
                *e += p * x;
            }
        }
        for (o, e) in out.iter().zip(expected.iter()) {
            assert!((o - e).abs() < 1e-5);
        }
    }

    #[test]
    fn alibi_bias_prefers_recent_tokens() {
        let layout = CacheLayout::new(1, 4);
        let mut cache = FullPrecisionCache::new(layout);
        // Two identical keys so only the bias differentiates them.
        let k = Matrix::from_vec(2, 4, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0]).unwrap();
        let v = Matrix::from_vec(2, 4, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        cache.append(&k, &v);
        let mut out = vec![0.0; 4];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(0, &[1.0, 0.0, 0.0, 0.0], 1.0, 1).with_alibi(2.0),
            &mut scratch,
            &mut out,
        );
        // The recent token (index 1) has zero penalty, the older one -2.0.
        assert!(out[1] > out[0]);
    }

    #[test]
    fn memory_accounts_fp16_bytes() {
        let layout = layout();
        let mut cache = FullPrecisionCache::new(layout);
        let (k, v) = random_kv(2, 10, &layout);
        cache.append(&k, &v);
        assert_eq!(cache.memory_bytes(), 10 * layout.fp16_bytes_per_token());
        assert_eq!(cache.kind(), "fp16");
    }

    #[test]
    fn empty_cache_attend_returns_zero() {
        let cache = FullPrecisionCache::new(layout());
        let mut out = vec![1.0; 8];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(0, &[0.5; 8], 1.0, 0),
            &mut scratch,
            &mut out,
        );
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn current_token_is_merged_at_full_precision() {
        // With an empty cache, attending with a current pair returns exactly
        // the current value (softmax over a single element).
        let cache = FullPrecisionCache::new(CacheLayout::new(1, 4));
        let key = [0.3, -0.1, 0.8, 0.0];
        let value = [1.0, 2.0, 3.0, 4.0];
        let mut out = vec![0.0; 4];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(0, &[1.0, 0.0, 0.0, 0.0], 1.0, 0).with_current(&key, &value),
            &mut scratch,
            &mut out,
        );
        for (o, v) in out.iter().zip(value.iter()) {
            assert!((o - v).abs() < 1e-6);
        }
    }
}
