//! KVQuant baseline: per-channel non-uniform key quantization, per-token
//! non-uniform value quantization, optional sparse outlier isolation.
//!
//! KVQuant calibrates non-uniform (k-means) quantization levels per key
//! channel and per value token and, in its strongest configuration, stores
//! the top ~1 % of entries in a full-precision sparse structure. Both pieces
//! are reproduced here. Because per-channel level fitting needs a window of
//! tokens, decode-time appends are staged in a small full-precision buffer
//! and re-quantized every `requant_block` tokens — the same batching KVQuant
//! applies to amortise its calibration cost.

use million_quant::nuq::{NuqGranularity, NuqMatrix};
use million_quant::outlier::{extract_outliers, SparseOutliers};
use million_tensor::alibi::alibi_bias;
use million_tensor::ops::dot;
use million_tensor::Matrix;

use crate::scratch::{grown, AttendScratch};
use crate::traits::{append_head_strided, AttendParams, CacheLayout, KvCache};

/// Configuration of a [`KvQuantCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvQuantConfig {
    /// Bits per element (KVQuant evaluates 3 and 4).
    pub bits: u8,
    /// Fraction of entries kept in sparse full precision (0.01 = the "1 %"
    /// configuration; 0.0 disables outlier isolation).
    pub outlier_fraction: f64,
    /// Decode-time tokens are buffered densely and re-quantized in blocks of
    /// this many tokens.
    pub requant_block: usize,
    /// Seed for the non-uniform level fitting.
    pub seed: u64,
}

impl Default for KvQuantConfig {
    fn default() -> Self {
        Self {
            bits: 4,
            outlier_fraction: 0.0,
            requant_block: 64,
            seed: 0,
        }
    }
}

/// One quantized block of tokens.
#[derive(Debug, Clone)]
struct QuantizedBlock {
    keys: NuqMatrix,
    values: NuqMatrix,
    key_outliers: SparseOutliers,
    value_outliers: SparseOutliers,
    tokens: usize,
}

/// Per-head storage.
#[derive(Debug, Clone, Default)]
struct HeadStore {
    blocks: Vec<QuantizedBlock>,
    pending_keys: Vec<f32>,
    pending_values: Vec<f32>,
}

/// Non-uniformly quantized KV cache (KVQuant baseline).
#[derive(Debug, Clone)]
pub struct KvQuantCache {
    layout: CacheLayout,
    config: KvQuantConfig,
    heads: Vec<HeadStore>,
    len: usize,
}

impl KvQuantCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=12` or `requant_block` is zero.
    pub fn new(layout: CacheLayout, config: KvQuantConfig) -> Self {
        assert!((1..=12).contains(&config.bits), "bits must be in 1..=12");
        assert!(config.requant_block > 0, "requant_block must be > 0");
        Self {
            layout,
            config,
            heads: vec![HeadStore::default(); layout.n_kv_heads],
            len: 0,
        }
    }

    /// Tokens currently buffered densely waiting for the next re-quantization.
    pub fn pending_len(&self) -> usize {
        let d = self.layout.head_dim;
        self.heads.first().map_or(0, |h| h.pending_keys.len() / d)
    }

    /// Number of quantized blocks per head.
    pub fn block_count(&self) -> usize {
        self.heads.first().map_or(0, |h| h.blocks.len())
    }

    fn quantize_block(&self, keys: Matrix, values: Matrix) -> QuantizedBlock {
        let tokens = keys.rows();
        let (clean_keys, key_outliers) = extract_outliers(&keys, self.config.outlier_fraction);
        let (clean_values, value_outliers) =
            extract_outliers(&values, self.config.outlier_fraction);
        let qk = NuqMatrix::quantize(
            &clean_keys,
            self.config.bits,
            NuqGranularity::PerChannel,
            self.config.seed,
        )
        .expect("validated config");
        let qv = NuqMatrix::quantize(
            &clean_values,
            self.config.bits,
            NuqGranularity::PerToken,
            self.config.seed + 1,
        )
        .expect("validated config");
        QuantizedBlock {
            keys: qk,
            values: qv,
            key_outliers,
            value_outliers,
            tokens,
        }
    }

    fn flush_pending(&mut self, force: bool) {
        let d = self.layout.head_dim;
        let block = self.config.requant_block;
        for h in 0..self.layout.n_kv_heads {
            loop {
                let pending = self.heads[h].pending_keys.len() / d;
                let take = if pending >= block {
                    block
                } else if force && pending > 0 {
                    pending
                } else {
                    break;
                };
                let key_block: Vec<f32> = self.heads[h].pending_keys.drain(0..take * d).collect();
                let value_block: Vec<f32> =
                    self.heads[h].pending_values.drain(0..take * d).collect();
                let keys = Matrix::from_vec(take, d, key_block).expect("block shape");
                let values = Matrix::from_vec(take, d, value_block).expect("block shape");
                let qblock = self.quantize_block(keys, values);
                self.heads[h].blocks.push(qblock);
            }
        }
    }

    /// Forces quantization of all pending tokens regardless of block size,
    /// e.g. at the end of the prefill phase.
    pub fn flush(&mut self) {
        self.flush_pending(true);
    }
}

impl KvCache for KvQuantCache {
    fn layout(&self) -> CacheLayout {
        self.layout
    }

    fn len(&self) -> usize {
        self.len
    }

    fn append(&mut self, keys: &Matrix, values: &Matrix) {
        append_head_strided(
            &self.layout,
            keys,
            values,
            self.heads
                .iter_mut()
                .map(|h| (&mut h.pending_keys, &mut h.pending_values)),
        );
        self.len += keys.rows();
        self.flush_pending(false);
    }

    fn attend(&self, params: &AttendParams<'_>, scratch: &mut AttendScratch, out: &mut [f32]) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");
        let head = &self.heads[params.head];

        scratch.softmax.reset(d);
        let key_buf = grown(&mut scratch.key_buf, d);
        let value_buf = grown(&mut scratch.value_buf, d);

        let mut pos = 0usize;
        for block in &head.blocks {
            for r in 0..block.tokens {
                block.keys.dequantize_row_into(r, key_buf);
                // Add back the sparse full-precision outliers: the dense part
                // stores zero at an outlier position, so the correction is the
                // outlier value times the query channel.
                let mut score =
                    dot(params.query, key_buf) + block.key_outliers.row_dot(r, params.query);
                score *= params.scale;
                if let Some(slope) = params.alibi_slope {
                    score += alibi_bias(slope, params.query_pos, pos);
                }
                block.values.dequantize_row_into(r, value_buf);
                // Restore isolated value outliers exactly.
                for (row, col, val) in block.value_outliers.iter() {
                    if row == r {
                        value_buf[col] = val;
                    }
                }
                scratch.softmax.push(score, value_buf);
                pos += 1;
            }
        }

        // Dense pending tokens.
        let pending = head.pending_keys.len() / d;
        for r in 0..pending {
            let k = &head.pending_keys[r * d..(r + 1) * d];
            let mut score = dot(params.query, k) * params.scale;
            if let Some(slope) = params.alibi_slope {
                score += alibi_bias(slope, params.query_pos, pos);
            }
            scratch
                .softmax
                .push(score, &head.pending_values[r * d..(r + 1) * d]);
            pos += 1;
        }

        if let Some((cur_key, cur_value)) = params.current {
            scratch
                .softmax
                .push(dot(params.query, cur_key) * params.scale, cur_value);
        }

        scratch.softmax.finish_into(out);
    }

    fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for head in &self.heads {
            for block in &head.blocks {
                bytes += block.keys.memory_bytes()
                    + block.values.memory_bytes()
                    + block.key_outliers.memory_bytes()
                    + block.value_outliers.memory_bytes();
            }
            bytes += (head.pending_keys.len() + head.pending_values.len()) * 2;
        }
        bytes
    }

    fn reset(&mut self) {
        self.len = 0;
        for head in &mut self.heads {
            head.blocks.clear();
            head.pending_keys.clear();
            head.pending_values.clear();
        }
    }

    fn kind(&self) -> &'static str {
        "kvquant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullPrecisionCache;
    use million_tensor::init::{normal_matrix, seeded_rng};

    const HEAD_DIM: usize = 16;

    fn layout() -> CacheLayout {
        CacheLayout::new(2, HEAD_DIM)
    }

    fn random_kv(seed: u64, tokens: usize) -> (Matrix, Matrix) {
        let mut rng = seeded_rng(seed);
        let width = layout().width();
        (
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
        )
    }

    fn attend(cache: &dyn KvCache, query: &[f32], head: usize) -> Vec<f32> {
        let mut out = vec![0.0; HEAD_DIM];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(
                head,
                query,
                1.0 / (HEAD_DIM as f32).sqrt(),
                cache.len().saturating_sub(1),
            ),
            &mut scratch,
            &mut out,
        );
        out
    }

    #[test]
    fn blocks_and_pending_partition_tokens() {
        let mut cache = KvQuantCache::new(
            layout(),
            KvQuantConfig {
                requant_block: 32,
                ..KvQuantConfig::default()
            },
        );
        let (k, v) = random_kv(0, 70);
        cache.append(&k, &v);
        assert_eq!(cache.len(), 70);
        assert_eq!(cache.block_count(), 2);
        assert_eq!(cache.pending_len(), 6);
        cache.flush();
        assert_eq!(cache.pending_len(), 0);
        assert_eq!(cache.block_count(), 3);
    }

    #[test]
    fn four_bit_attention_tracks_full_precision() {
        let mut kvq = KvQuantCache::new(layout(), KvQuantConfig::default());
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(1, 96);
        kvq.append(&k, &v);
        full.append(&k, &v);
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.29).cos()).collect();
        for head in 0..2 {
            let exact = attend(&full, &query, head);
            let approx = attend(&kvq, &query, head);
            let err: f32 = exact
                .iter()
                .zip(approx.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 0.3, "head {head}: error {err}");
        }
    }

    #[test]
    fn outlier_isolation_helps_with_outlier_channels() {
        // Inject a large-magnitude channel into the keys; with 3-bit NUQ the
        // plain quantizer struggles, the 1% sparse variant recovers.
        let (mut k, v) = random_kv(2, 128);
        for r in 0..k.rows() {
            let val = k.get(r, 3) * 30.0;
            k.set(r, 3, val);
        }
        let mut full = FullPrecisionCache::new(layout());
        full.append(&k, &v);
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| 0.2 * (i as f32) - 1.0).collect();
        let exact = attend(&full, &query, 0);

        let err_for = |fraction: f64| {
            let mut cache = KvQuantCache::new(
                layout(),
                KvQuantConfig {
                    bits: 3,
                    outlier_fraction: fraction,
                    requant_block: 128,
                    seed: 7,
                },
            );
            cache.append(&k, &v);
            let approx = attend(&cache, &query, 0);
            exact
                .iter()
                .zip(approx.iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
        };
        let plain = err_for(0.0);
        let isolated = err_for(0.01);
        assert!(
            isolated <= plain,
            "outlier isolation should not hurt: plain {plain}, isolated {isolated}"
        );
    }

    #[test]
    fn memory_grows_with_outlier_fraction() {
        let (k, v) = random_kv(3, 128);
        let bytes_for = |fraction: f64| {
            let mut cache = KvQuantCache::new(
                layout(),
                KvQuantConfig {
                    outlier_fraction: fraction,
                    requant_block: 64,
                    ..KvQuantConfig::default()
                },
            );
            cache.append(&k, &v);
            cache.flush();
            cache.memory_bytes()
        };
        assert!(bytes_for(0.05) > bytes_for(0.0));
    }

    #[test]
    fn memory_is_smaller_than_fp16_after_flush() {
        // KVQuant's per-token level tables are a fixed per-token overhead, so
        // the compression only shows at realistic head widths; use 128
        // channels here (the geometry of the models in Table I).
        let wide = CacheLayout::new(1, 128);
        let mut rng = seeded_rng(4);
        let k = normal_matrix(&mut rng, 256, 128, 0.0, 1.0);
        let v = normal_matrix(&mut rng, 256, 128, 0.0, 1.0);
        let mut kvq = KvQuantCache::new(wide, KvQuantConfig::default());
        let mut full = FullPrecisionCache::new(wide);
        kvq.append(&k, &v);
        kvq.flush();
        full.append(&k, &v);
        assert!(kvq.memory_bytes() < full.memory_bytes());
        assert_eq!(kvq.kind(), "kvquant");
    }

    #[test]
    fn empty_cache_attend_is_zero() {
        let cache = KvQuantCache::new(layout(), KvQuantConfig::default());
        let out = attend(&cache, &[0.5; HEAD_DIM], 1);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "requant_block must be > 0")]
    fn zero_block_panics() {
        let _ = KvQuantCache::new(
            layout(),
            KvQuantConfig {
                requant_block: 0,
                ..KvQuantConfig::default()
            },
        );
    }
}
