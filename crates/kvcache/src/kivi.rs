//! KIVI baseline: group-wise asymmetric integer quantization of the KV cache.
//!
//! Following the KIVI paper (and Section I of MILLION), keys are quantized
//! **per channel** within groups of `group_size` consecutive tokens, values
//! are quantized **per token**. Tokens that have not yet filled a complete
//! key group remain in a full-precision residual, which is why KIVI's memory
//! footprint never drops all the way to the nominal bit width.
//!
//! Attention over this cache must de-quantize keys and values on the fly —
//! the overhead MILLION's lookup-table attention avoids; the cost difference
//! is modelled in `million-perfsim` and measured in the Criterion benches.

use million_quant::uniform::{Granularity, QuantizedMatrix, Symmetry};
use million_tensor::alibi::alibi_bias;
use million_tensor::ops::dot;
use million_tensor::Matrix;

use crate::scratch::{grown, AttendScratch};
use crate::traits::{append_head_strided, AttendParams, CacheLayout, KvCache};

/// Configuration of a [`KiviCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KiviConfig {
    /// Bits per element (KIVI uses 2 or 4).
    pub bits: u8,
    /// Tokens per key quantization group.
    pub group_size: usize,
}

impl Default for KiviConfig {
    fn default() -> Self {
        Self {
            bits: 4,
            group_size: 32,
        }
    }
}

/// One quantized group of keys plus its matching quantized values.
#[derive(Debug, Clone)]
struct QuantizedGroup {
    /// `[group_size, head_dim]`, per-channel quantized.
    keys: QuantizedMatrix,
    /// `[group_size, head_dim]`, per-token quantized.
    values: QuantizedMatrix,
}

/// Per-head storage for the KIVI cache.
#[derive(Debug, Clone, Default)]
struct HeadStore {
    groups: Vec<QuantizedGroup>,
    /// Full-precision residual of tokens not yet forming a complete group,
    /// `[residual_len, head_dim]` row-major.
    residual_keys: Vec<f32>,
    residual_values: Vec<f32>,
}

/// Group-wise integer-quantized KV cache (KIVI baseline).
#[derive(Debug, Clone)]
pub struct KiviCache {
    layout: CacheLayout,
    config: KiviConfig,
    heads: Vec<HeadStore>,
    len: usize,
}

impl KiviCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.group_size == 0` or `config.bits` is 0 or > 16.
    pub fn new(layout: CacheLayout, config: KiviConfig) -> Self {
        assert!(config.group_size > 0, "group_size must be > 0");
        assert!((1..=16).contains(&config.bits), "bits must be in 1..=16");
        Self {
            layout,
            config,
            heads: vec![HeadStore::default(); layout.n_kv_heads],
            len: 0,
        }
    }

    /// Number of tokens currently sitting in the full-precision residual.
    pub fn residual_len(&self) -> usize {
        let d = self.layout.head_dim;
        self.heads.first().map_or(0, |h| h.residual_keys.len() / d)
    }

    /// Number of complete quantized groups per head.
    pub fn group_count(&self) -> usize {
        self.heads.first().map_or(0, |h| h.groups.len())
    }

    fn flush_full_groups(&mut self) {
        let d = self.layout.head_dim;
        let g = self.config.group_size;
        for head in &mut self.heads {
            while head.residual_keys.len() / d >= g {
                let key_block: Vec<f32> = head.residual_keys.drain(0..g * d).collect();
                let value_block: Vec<f32> = head.residual_values.drain(0..g * d).collect();
                let keys = Matrix::from_vec(g, d, key_block).expect("residual block shape");
                let values = Matrix::from_vec(g, d, value_block).expect("residual block shape");
                let qk = QuantizedMatrix::quantize(
                    &keys,
                    self.config.bits,
                    Symmetry::Asymmetric,
                    Granularity::PerChannel,
                )
                .expect("validated config");
                let qv = QuantizedMatrix::quantize(
                    &values,
                    self.config.bits,
                    Symmetry::Asymmetric,
                    Granularity::PerToken,
                )
                .expect("validated config");
                head.groups.push(QuantizedGroup {
                    keys: qk,
                    values: qv,
                });
            }
        }
    }
}

impl KvCache for KiviCache {
    fn layout(&self) -> CacheLayout {
        self.layout
    }

    fn len(&self) -> usize {
        self.len
    }

    fn append(&mut self, keys: &Matrix, values: &Matrix) {
        append_head_strided(
            &self.layout,
            keys,
            values,
            self.heads
                .iter_mut()
                .map(|h| (&mut h.residual_keys, &mut h.residual_values)),
        );
        self.len += keys.rows();
        self.flush_full_groups();
    }

    fn attend(&self, params: &AttendParams<'_>, scratch: &mut AttendScratch, out: &mut [f32]) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");
        let head = &self.heads[params.head];
        let g = self.config.group_size;

        scratch.softmax.reset(d);
        let key_buf = grown(&mut scratch.key_buf, d);
        let value_buf = grown(&mut scratch.value_buf, d);

        // Quantized groups: de-quantize each row on the fly (KIVI's overhead).
        for (gi, group) in head.groups.iter().enumerate() {
            for r in 0..group.keys.shape().0 {
                let pos = gi * g + r;
                group.keys.dequantize_row_into(r, key_buf);
                let mut score = dot(params.query, key_buf) * params.scale;
                if let Some(slope) = params.alibi_slope {
                    score += alibi_bias(slope, params.query_pos, pos);
                }
                group.values.dequantize_row_into(r, value_buf);
                scratch.softmax.push(score, value_buf);
            }
        }

        // Full-precision residual.
        let quantized_tokens = head.groups.len() * g;
        let residual_tokens = head.residual_keys.len() / d;
        for r in 0..residual_tokens {
            let pos = quantized_tokens + r;
            let k = &head.residual_keys[r * d..(r + 1) * d];
            let mut score = dot(params.query, k) * params.scale;
            if let Some(slope) = params.alibi_slope {
                score += alibi_bias(slope, params.query_pos, pos);
            }
            scratch
                .softmax
                .push(score, &head.residual_values[r * d..(r + 1) * d]);
        }

        if let Some((cur_key, cur_value)) = params.current {
            scratch
                .softmax
                .push(dot(params.query, cur_key) * params.scale, cur_value);
        }

        scratch.softmax.finish_into(out);
    }

    fn memory_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for head in &self.heads {
            for group in &head.groups {
                bytes += group.keys.memory_bytes() + group.values.memory_bytes();
            }
            // Residual accounted at fp16.
            bytes += (head.residual_keys.len() + head.residual_values.len()) * 2;
        }
        bytes
    }

    fn reset(&mut self) {
        self.len = 0;
        for head in &mut self.heads {
            head.groups.clear();
            head.residual_keys.clear();
            head.residual_values.clear();
        }
    }

    fn kind(&self) -> &'static str {
        "kivi"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullPrecisionCache;
    use million_tensor::init::{normal_matrix, seeded_rng};

    const HEAD_DIM: usize = 16;

    fn layout() -> CacheLayout {
        CacheLayout::new(2, HEAD_DIM)
    }

    fn random_kv(seed: u64, tokens: usize) -> (Matrix, Matrix) {
        let mut rng = seeded_rng(seed);
        let width = layout().width();
        (
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
        )
    }

    fn attend(cache: &dyn KvCache, query: &[f32], head: usize) -> Vec<f32> {
        let mut out = vec![0.0; HEAD_DIM];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(
                head,
                query,
                1.0 / (HEAD_DIM as f32).sqrt(),
                cache.len().saturating_sub(1),
            ),
            &mut scratch,
            &mut out,
        );
        out
    }

    #[test]
    fn groups_and_residual_partition_the_tokens() {
        let mut cache = KiviCache::new(
            layout(),
            KiviConfig {
                bits: 4,
                group_size: 16,
            },
        );
        let (k, v) = random_kv(0, 40);
        cache.append(&k, &v);
        assert_eq!(cache.len(), 40);
        assert_eq!(cache.group_count(), 2);
        assert_eq!(cache.residual_len(), 8);
    }

    #[test]
    fn four_bit_attention_tracks_full_precision() {
        let mut kivi = KiviCache::new(layout(), KiviConfig::default());
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(1, 80);
        kivi.append(&k, &v);
        full.append(&k, &v);
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.41).sin()).collect();
        for head in 0..2 {
            let exact = attend(&full, &query, head);
            let approx = attend(&kivi, &query, head);
            let err: f32 = exact
                .iter()
                .zip(approx.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 0.3, "head {head}: error {err}");
        }
    }

    #[test]
    fn two_bit_is_worse_than_four_bit() {
        let (k, v) = random_kv(2, 64);
        let mut full = FullPrecisionCache::new(layout());
        full.append(&k, &v);
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| 0.3 * (i as f32)).collect();
        let exact = attend(&full, &query, 0);

        let err_for_bits = |bits: u8| {
            let mut cache = KiviCache::new(
                layout(),
                KiviConfig {
                    bits,
                    group_size: 32,
                },
            );
            cache.append(&k, &v);
            let approx = attend(&cache, &query, 0);
            exact
                .iter()
                .zip(approx.iter())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
        };
        assert!(err_for_bits(2) > err_for_bits(4));
    }

    #[test]
    fn memory_smaller_than_fp16_but_has_residual_overhead() {
        let mut kivi = KiviCache::new(
            layout(),
            KiviConfig {
                bits: 4,
                group_size: 32,
            },
        );
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(3, 256);
        kivi.append(&k, &v);
        full.append(&k, &v);
        assert!(kivi.memory_bytes() < full.memory_bytes() / 2);
        assert!(kivi.memory_bytes() > full.memory_bytes() / 8);
        assert_eq!(kivi.kind(), "kivi");
    }

    #[test]
    fn empty_cache_attend_is_zero() {
        let cache = KiviCache::new(layout(), KiviConfig::default());
        let out = attend(&cache, &[1.0; HEAD_DIM], 0);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "group_size must be > 0")]
    fn zero_group_size_panics() {
        let _ = KiviCache::new(
            layout(),
            KiviConfig {
                bits: 4,
                group_size: 0,
            },
        );
    }
}
