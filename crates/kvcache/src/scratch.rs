//! Reusable decode-attention scratch buffers.
//!
//! Every [`crate::KvCache::attend`] call needs working memory: the PQ
//! backend a score lookup table, a centroid-mass accumulator and a mixed
//! segment; the integer/NUQ baselines per-token de-quantization buffers; all
//! of them an online-softmax merger. Allocating those per (layer × head ×
//! token) call dominated the decode hot path, so they live in an
//! [`AttendScratch`] the caller owns — one per worker thread — and every
//! buffer is reused across calls. Once warmed to the largest shapes in
//! flight, steady-state attention performs zero heap allocations.

use million_quant::pq::{ScoreLut, ValueAccumulator};
use million_tensor::OnlineSoftmax;

/// Caller-owned working memory for [`crate::KvCache::attend`].
///
/// A scratch carries no results between calls — any backend may use any
/// scratch at any time (buffers are reset or fully overwritten before use),
/// so interleaving heads, layers, backends, and sessions over one scratch is
/// token-for-token identical to using a fresh scratch per call. The only
/// contract is exclusivity: one scratch serves one attend call at a time,
/// which is why parallel decode keeps one per worker.
#[derive(Debug, Clone)]
pub struct AttendScratch {
    /// Per-query score lookup table (PQ backend).
    pub(crate) lut: ScoreLut,
    /// Materialised per-token score buffer, used by the two-pass reference
    /// kernel (the fused kernel never materialises scores).
    pub(crate) scores: Vec<f32>,
    /// Per-centroid softmax mass (PQ backend).
    pub(crate) acc: ValueAccumulator,
    /// Mixed-centroid segment of `head_dim` floats (PQ backend).
    pub(crate) segment: Vec<f32>,
    /// Online-softmax merger combining quantized and dense segments.
    pub(crate) softmax: OnlineSoftmax,
    /// De-quantized key row (integer/NUQ baselines).
    pub(crate) key_buf: Vec<f32>,
    /// De-quantized value row (integer/NUQ baselines).
    pub(crate) value_buf: Vec<f32>,
}

impl AttendScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self {
            lut: ScoreLut::empty(),
            scores: Vec::new(),
            acc: ValueAccumulator::new(1, 1),
            segment: Vec::new(),
            softmax: OnlineSoftmax::new(0),
            key_buf: Vec::new(),
            value_buf: Vec::new(),
        }
    }
}

impl Default for AttendScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Grows `buf` to at least `len` entries (never shrinking, so the
/// allocation is reused across calls) and returns the `len`-prefix — the
/// standard (re)sizing step for every scratch buffer. A free function
/// rather than a method so callers can borrow several scratch fields
/// disjointly at once.
#[inline]
pub fn grown(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len {
        buf.resize(len, 0.0);
    }
    &mut buf[..len]
}
