//! KV-cache backends for long-context decoding.
//!
//! A transformer layer owns one [`KvCache`] trait object per layer; the
//! backend decides how keys and values are stored between decode steps:
//!
//! * [`full::FullPrecisionCache`] — the fp16 baseline of the paper (values
//!   are held as `f32` on the CPU but accounted as 2 bytes/element).
//! * [`pq_cache::PqKvCache`] — MILLION: keys/values stored as bit-packed PQ
//!   codes, attention computed directly over codes with per-query lookup
//!   tables and an online-softmax merge with the dense recent window.
//! * [`kivi::KiviCache`] — KIVI baseline: group-wise asymmetric integer
//!   quantization, per-channel keys / per-token values, with a full-precision
//!   residual for the not-yet-full trailing group.
//! * [`kvquant::KvQuantCache`] — KVQuant baseline: per-channel non-uniform
//!   key quantization, per-token non-uniform values, optional sparse
//!   full-precision outlier isolation.
//!
//! All backends expose the same decode-time interface ([`KvCache::attend`])
//! so the transformer substrate can swap them freely, and report their
//! memory footprint so compression ratios can be measured exactly.

#![warn(missing_docs)]

pub mod full;
pub mod kivi;
pub mod kvquant;
pub mod pq_cache;
pub mod scratch;
pub mod traits;

pub use full::FullPrecisionCache;
pub use kivi::{KiviCache, KiviConfig};
pub use kvquant::{KvQuantCache, KvQuantConfig};
pub use pq_cache::{PqCacheConfig, PqKvCache};
pub use scratch::{grown, AttendScratch};
pub use traits::{AttendParams, CacheLayout, KvCache};
