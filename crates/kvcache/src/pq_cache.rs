//! The MILLION KV cache: product-quantized history + dense recent window.
//!
//! Decode-time attention over this cache follows Eq. (7) of the paper:
//!
//! 1. the quantized history is scored through a per-query lookup table
//!    (`q × Cᵀ` per subspace) without de-quantizing any key;
//! 2. softmax mass over the history is accumulated per value centroid and the
//!    centroids are mixed once ([`million_quant::pq::ValueAccumulator`]);
//! 3. the dense recent window (including the current token) is attended in
//!    full precision;
//! 4. both segments are combined with an online softmax.

use std::sync::Arc;

use million_quant::pq::{PqCodebook, PqCodes};
use million_tensor::alibi::alibi_bias;
use million_tensor::ops::dot;
use million_tensor::Matrix;

use crate::scratch::{grown, AttendScratch};
use crate::traits::{append_head_strided, head_slice, AttendParams, CacheLayout, KvCache};

/// Configuration of a [`PqKvCache`].
#[derive(Debug, Clone)]
pub struct PqCacheConfig {
    /// Codebook used for keys (dimension must equal `head_dim`).
    pub key_codebook: Arc<PqCodebook>,
    /// Codebook used for values (dimension must equal `head_dim`).
    pub value_codebook: Arc<PqCodebook>,
    /// Number of most recent tokens kept in full precision. The paper sets
    /// this to 0 for its stress evaluations; the asynchronous engine uses it
    /// as the staging buffer for not-yet-quantized tokens.
    pub residual_len: usize,
    /// When `true` (default), [`KvCache::append`] immediately encodes tokens
    /// that fall out of the residual window. The asynchronous engine sets
    /// this to `false` and feeds codes back via [`PqKvCache::absorb_encoded`].
    pub auto_encode: bool,
}

impl PqCacheConfig {
    /// Convenience constructor with `auto_encode = true`.
    pub fn new(
        key_codebook: Arc<PqCodebook>,
        value_codebook: Arc<PqCodebook>,
        residual_len: usize,
    ) -> Self {
        Self {
            key_codebook,
            value_codebook,
            residual_len,
            auto_encode: true,
        }
    }
}

/// PQ codes for a block of tokens, one [`PqCodes`] sequence per KV head.
///
/// Produced by [`PqKvCache::encode_tokens`] (synchronously or from a worker
/// thread) and consumed by [`PqKvCache::absorb_encoded`].
#[derive(Debug, Clone)]
pub struct EncodedTokens {
    /// Per-head key codes; every entry holds the same number of tokens.
    pub key_codes: Vec<PqCodes>,
    /// Per-head value codes; same shape as `key_codes`.
    pub value_codes: Vec<PqCodes>,
}

impl EncodedTokens {
    /// Number of tokens in this block.
    pub fn len(&self) -> usize {
        self.key_codes.first().map_or(0, |c| c.len())
    }

    /// Returns `true` when the block holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Product-quantized KV cache (the MILLION backend).
pub struct PqKvCache {
    layout: CacheLayout,
    config: PqCacheConfig,
    /// Per-head key codes of the quantized prefix.
    key_codes: Vec<PqCodes>,
    /// Per-head value codes of the quantized prefix.
    value_codes: Vec<PqCodes>,
    /// Per-head dense recent keys, `[recent_len, head_dim]` row-major.
    recent_keys: Vec<Vec<f32>>,
    /// Per-head dense recent values.
    recent_values: Vec<Vec<f32>>,
    /// Tokens in the quantized prefix.
    quantized_len: usize,
    /// Tokens in the dense suffix.
    recent_len: usize,
}

impl std::fmt::Debug for PqKvCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqKvCache")
            .field("layout", &self.layout)
            .field("quantized_len", &self.quantized_len)
            .field("recent_len", &self.recent_len)
            .finish()
    }
}

impl PqKvCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if either codebook's dimension differs from `layout.head_dim`.
    pub fn new(layout: CacheLayout, config: PqCacheConfig) -> Self {
        assert_eq!(
            config.key_codebook.dim(),
            layout.head_dim,
            "key codebook dimension must equal head_dim"
        );
        assert_eq!(
            config.value_codebook.dim(),
            layout.head_dim,
            "value codebook dimension must equal head_dim"
        );
        let key_codes = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(config.key_codebook.config()))
            .collect();
        let value_codes = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(config.value_codebook.config()))
            .collect();
        Self {
            layout,
            config,
            key_codes,
            value_codes,
            recent_keys: vec![Vec::new(); layout.n_kv_heads],
            recent_values: vec![Vec::new(); layout.n_kv_heads],
            quantized_len: 0,
            recent_len: 0,
        }
    }

    /// Number of tokens currently stored as PQ codes.
    pub fn quantized_len(&self) -> usize {
        self.quantized_len
    }

    /// Number of tokens currently stored densely.
    pub fn recent_len(&self) -> usize {
        self.recent_len
    }

    /// Encodes a block of `[tokens, n_kv_heads * head_dim]` keys/values into
    /// per-head PQ codes. This is a pure function of the codebooks and is
    /// safe to call from a worker thread (the asynchronous quantization
    /// stream of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the matrices do not match the layout.
    pub fn encode_tokens(
        key_codebook: &PqCodebook,
        value_codebook: &PqCodebook,
        layout: &CacheLayout,
        keys: &Matrix,
        values: &Matrix,
    ) -> EncodedTokens {
        assert_eq!(keys.shape(), values.shape(), "keys/values shape mismatch");
        assert_eq!(keys.cols(), layout.width(), "KV width mismatch");
        let mut key_codes: Vec<PqCodes> = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(key_codebook.config()))
            .collect();
        let mut value_codes: Vec<PqCodes> = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(value_codebook.config()))
            .collect();
        for t in 0..keys.rows() {
            let k_row = keys.row(t);
            let v_row = values.row(t);
            for h in 0..layout.n_kv_heads {
                key_codes[h].push(&key_codebook.encode(head_slice(k_row, layout, h)));
                value_codes[h].push(&value_codebook.encode(head_slice(v_row, layout, h)));
            }
        }
        EncodedTokens {
            key_codes,
            value_codes,
        }
    }

    /// Appends a block of already-encoded tokens and drops the corresponding
    /// oldest dense tokens from the recent window.
    ///
    /// This is how the asynchronous quantization stream hands its results
    /// back to the cache: the dense copies stay visible to `attend` until the
    /// codes arrive, so attention never misses a token.
    ///
    /// # Panics
    ///
    /// Panics if the block has more tokens than the recent window currently
    /// holds, or if its head count differs from the layout.
    pub fn absorb_encoded(&mut self, encoded: EncodedTokens) {
        let n = encoded.len();
        if n == 0 {
            return;
        }
        assert_eq!(
            encoded.key_codes.len(),
            self.layout.n_kv_heads,
            "encoded block head count mismatch"
        );
        assert!(
            n <= self.recent_len,
            "cannot absorb {n} encoded tokens with only {} dense tokens pending",
            self.recent_len
        );
        let d = self.layout.head_dim;
        for h in 0..self.layout.n_kv_heads {
            self.key_codes[h].append(&encoded.key_codes[h]);
            self.value_codes[h].append(&encoded.value_codes[h]);
            self.recent_keys[h].drain(0..n * d);
            self.recent_values[h].drain(0..n * d);
        }
        self.quantized_len += n;
        self.recent_len -= n;
    }

    /// Returns the dense recent keys/values that are *eligible* for encoding
    /// (everything beyond the configured residual window) as
    /// `[tokens, n_kv_heads * head_dim]` matrices, without removing them.
    ///
    /// The asynchronous engine sends these to the quantization worker.
    pub fn encodable_dense(&self) -> Option<(Matrix, Matrix)> {
        if self.recent_len <= self.config.residual_len {
            return None;
        }
        let n = self.recent_len - self.config.residual_len;
        let d = self.layout.head_dim;
        let width = self.layout.width();
        let mut keys = Matrix::zeros(n, width);
        let mut values = Matrix::zeros(n, width);
        for t in 0..n {
            for h in 0..self.layout.n_kv_heads {
                let k_src = &self.recent_keys[h][t * d..(t + 1) * d];
                let v_src = &self.recent_values[h][t * d..(t + 1) * d];
                keys.row_mut(t)[h * d..(h + 1) * d].copy_from_slice(k_src);
                values.row_mut(t)[h * d..(h + 1) * d].copy_from_slice(v_src);
            }
        }
        Some((keys, values))
    }

    /// Fraction of fp16 storage still needed: `memory_bytes / fp16 bytes`.
    pub fn compression_ratio(&self) -> f64 {
        let fp16 = (self.len() * self.layout.fp16_bytes_per_token()).max(1);
        self.memory_bytes() as f64 / fp16 as f64
    }

    fn encode_overflow(&mut self) {
        if let Some((keys, values)) = self.encodable_dense() {
            let encoded = Self::encode_tokens(
                &self.config.key_codebook,
                &self.config.value_codebook,
                &self.layout,
                &keys,
                &values,
            );
            self.absorb_encoded(encoded);
        }
    }

    /// Attends the dense recent window and the current token into
    /// `scratch.softmax` (which the quantized segment has already been
    /// merged into) and writes the normalised result.
    fn attend_dense_tail(
        &self,
        params: &AttendParams<'_>,
        scratch: &mut AttendScratch,
        out: &mut [f32],
    ) {
        let d = self.layout.head_dim;
        let h = params.head;
        let keys = &self.recent_keys[h];
        let values = &self.recent_values[h];
        for t in 0..self.recent_len {
            let global_pos = self.quantized_len + t;
            let k = &keys[t * d..(t + 1) * d];
            let mut score = dot(params.query, k) * params.scale;
            if let Some(slope) = params.alibi_slope {
                score += alibi_bias(slope, params.query_pos, global_pos);
            }
            scratch.softmax.push(score, &values[t * d..(t + 1) * d]);
        }

        // --- Current token (second term of Eq. 7), always full precision.
        if let Some((cur_key, cur_value)) = params.current {
            scratch
                .softmax
                .push(dot(params.query, cur_key) * params.scale, cur_value);
        }

        scratch.softmax.finish_into(out);
    }

    /// The two-pass reference kernel the fused kernel replaced: score every
    /// quantized token into a materialised buffer, find the maximum, then
    /// make a second pass to exponentiate and accumulate value mass.
    ///
    /// Kept as the cache-level equivalence reference for
    /// [`KvCache::attend`], whose results agree with it up to the fused
    /// kernel's online-softmax reassociation (≲1e-6). The benchmark ladder
    /// (criterion + `bench_decode_baseline`) measures the standalone
    /// code-block variants in `million_bench::kernels` instead, which also
    /// cover the seed's unpacked-`u16` kernel.
    ///
    /// # Panics
    ///
    /// Same contract as [`KvCache::attend`].
    pub fn attend_two_pass(
        &self,
        params: &AttendParams<'_>,
        scratch: &mut AttendScratch,
        out: &mut [f32],
    ) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");
        let h = params.head;

        scratch.softmax.reset(d);

        if self.quantized_len > 0 {
            scratch
                .lut
                .fill_from(&self.config.key_codebook, params.query);
            let scores = grown(&mut scratch.scores, self.quantized_len);
            scratch.lut.scores_into(&self.key_codes[h], scores);
            let mut max_score = f32::NEG_INFINITY;
            for (t, s) in scores.iter_mut().enumerate() {
                *s *= params.scale;
                if let Some(slope) = params.alibi_slope {
                    *s += alibi_bias(slope, params.query_pos, t);
                }
                max_score = max_score.max(*s);
            }
            let value_config = self.config.value_codebook.config();
            scratch
                .acc
                .ensure_shape(value_config.m, value_config.codebook_size());
            scratch.acc.reset();
            let mut sum_exp = 0.0f32;
            let vcodes = &self.value_codes[h];
            for (t, &s) in scores.iter().enumerate() {
                let w = (s - max_score).exp();
                sum_exp += w;
                scratch.acc.add_indexed(w, vcodes, t);
            }
            let segment = grown(&mut scratch.segment, d);
            scratch
                .acc
                .finish_into(&self.config.value_codebook, segment);
            scratch
                .softmax
                .merge_segment(max_score, sum_exp, &scratch.segment[..d]);
        }

        self.attend_dense_tail(params, scratch, out);
    }
}

impl KvCache for PqKvCache {
    fn layout(&self) -> CacheLayout {
        self.layout
    }

    fn len(&self) -> usize {
        self.quantized_len + self.recent_len
    }

    fn append(&mut self, keys: &Matrix, values: &Matrix) {
        append_head_strided(
            &self.layout,
            keys,
            values,
            self.recent_keys
                .iter_mut()
                .zip(self.recent_values.iter_mut()),
        );
        self.recent_len += keys.rows();
        if self.config.auto_encode {
            self.encode_overflow();
        }
    }

    fn attend(&self, params: &AttendParams<'_>, scratch: &mut AttendScratch, out: &mut [f32]) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");
        let h = params.head;

        scratch.softmax.reset(d);

        // --- Quantized history: fused LUT-score + online-softmax +
        // centroid-mass kernel, one pass over the packed codes.
        if self.quantized_len > 0 {
            scratch
                .lut
                .fill_from(&self.config.key_codebook, params.query);
            let alibi = params.alibi_slope.map(|slope| (slope, params.query_pos));
            let (max_score, sum_exp) = scratch.lut.fused_attend(
                &self.key_codes[h],
                &self.value_codes[h],
                params.scale,
                alibi,
                &mut scratch.acc,
            );
            let segment = grown(&mut scratch.segment, d);
            scratch
                .acc
                .finish_into(&self.config.value_codebook, segment);
            scratch
                .softmax
                .merge_segment(max_score, sum_exp, &scratch.segment[..d]);
        }

        self.attend_dense_tail(params, scratch, out);
    }

    fn memory_bytes(&self) -> usize {
        let codes: usize = self
            .key_codes
            .iter()
            .chain(self.value_codes.iter())
            .map(|c| c.memory_bytes())
            .sum();
        // Dense residual accounted at fp16 like the baseline.
        let dense = 2 * self.recent_len * self.layout.width() * 2;
        codes + dense
    }

    fn reset(&mut self) {
        self.key_codes = (0..self.layout.n_kv_heads)
            .map(|_| PqCodes::new(self.config.key_codebook.config()))
            .collect();
        self.value_codes = (0..self.layout.n_kv_heads)
            .map(|_| PqCodes::new(self.config.value_codebook.config()))
            .collect();
        for head in self
            .recent_keys
            .iter_mut()
            .chain(self.recent_values.iter_mut())
        {
            head.clear();
        }
        self.quantized_len = 0;
        self.recent_len = 0;
    }

    fn kind(&self) -> &'static str {
        "million-pq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullPrecisionCache;
    use million_quant::pq::{PqConfig, PqTrainOptions};
    use million_tensor::init::{normal_matrix, seeded_rng};

    const HEAD_DIM: usize = 16;
    const HEADS: usize = 2;

    fn layout() -> CacheLayout {
        CacheLayout::new(HEADS, HEAD_DIM)
    }

    fn trained_codebooks(seed: u64) -> (Arc<PqCodebook>, Arc<PqCodebook>) {
        let mut rng = seeded_rng(seed);
        let samples = normal_matrix(&mut rng, 600, HEAD_DIM, 0.0, 1.0);
        let config = PqConfig::new(8, 6).unwrap();
        let key = PqCodebook::train(&config, &samples, &PqTrainOptions::default(), seed).unwrap();
        let samples_v = normal_matrix(&mut rng, 600, HEAD_DIM, 0.0, 1.0);
        let value =
            PqCodebook::train(&config, &samples_v, &PqTrainOptions::default(), seed + 1).unwrap();
        (Arc::new(key), Arc::new(value))
    }

    fn random_kv(seed: u64, tokens: usize) -> (Matrix, Matrix) {
        let mut rng = seeded_rng(seed);
        let width = layout().width();
        (
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
        )
    }

    fn attend_all(cache: &dyn KvCache, query: &[f32], head: usize) -> Vec<f32> {
        let mut out = vec![0.0; HEAD_DIM];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(
                head,
                query,
                1.0 / (HEAD_DIM as f32).sqrt(),
                cache.len().saturating_sub(1),
            ),
            &mut scratch,
            &mut out,
        );
        out
    }

    #[test]
    fn pq_attention_approximates_full_precision() {
        let (kc, vc) = trained_codebooks(0);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(1, 96);
        pq.append(&k, &v);
        full.append(&k, &v);

        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.37).sin()).collect();
        for head in 0..HEADS {
            let exact = attend_all(&full, &query, head);
            let approx = attend_all(&pq, &query, head);
            let err: f32 = exact
                .iter()
                .zip(approx.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 0.35, "head {head}: max abs error {err} too large");
        }
    }

    #[test]
    fn residual_window_keeps_recent_tokens_dense() {
        let (kc, vc) = trained_codebooks(2);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 8));
        let (k, v) = random_kv(3, 20);
        pq.append(&k, &v);
        assert_eq!(pq.len(), 20);
        assert_eq!(pq.recent_len(), 8);
        assert_eq!(pq.quantized_len(), 12);
    }

    #[test]
    fn zero_residual_quantizes_everything() {
        let (kc, vc) = trained_codebooks(4);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let (k, v) = random_kv(5, 10);
        pq.append(&k, &v);
        assert_eq!(pq.recent_len(), 0);
        assert_eq!(pq.quantized_len(), 10);
    }

    #[test]
    fn manual_encode_path_matches_auto_path() {
        let (kc, vc) = trained_codebooks(6);
        let mut auto = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 0));
        let mut manual_cfg = PqCacheConfig::new(kc.clone(), vc.clone(), 0);
        manual_cfg.auto_encode = false;
        let mut manual = PqKvCache::new(layout(), manual_cfg);

        let (k, v) = random_kv(7, 32);
        auto.append(&k, &v);
        manual.append(&k, &v);
        assert_eq!(manual.recent_len(), 32);
        // Simulate the async worker: encode everything, then absorb.
        let (dk, dv) = manual.encodable_dense().expect("tokens pending");
        let encoded = PqKvCache::encode_tokens(&kc, &vc, &layout(), &dk, &dv);
        manual.absorb_encoded(encoded);
        assert_eq!(manual.quantized_len(), 32);

        let query: Vec<f32> = (0..HEAD_DIM).map(|i| 0.1 * i as f32 - 0.5).collect();
        for head in 0..HEADS {
            let a = attend_all(&auto, &query, head);
            let m = attend_all(&manual, &query, head);
            for (x, y) in a.iter().zip(m.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn absorb_more_than_pending_panics() {
        let (kc, vc) = trained_codebooks(8);
        let mut cfg = PqCacheConfig::new(kc.clone(), vc.clone(), 0);
        cfg.auto_encode = false;
        let mut cache = PqKvCache::new(layout(), cfg);
        let (k, v) = random_kv(9, 4);
        cache.append(&k, &v);
        let encoded = PqKvCache::encode_tokens(&kc, &vc, &layout(), &k, &v);
        cache.absorb_encoded(encoded.clone());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c2 = cache;
            c2.absorb_encoded(encoded);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn memory_is_much_smaller_than_fp16() {
        let (kc, vc) = trained_codebooks(10);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(11, 256);
        pq.append(&k, &v);
        full.append(&k, &v);
        // 8 subspaces x 6 bits = 48 bits per 16-dim head vector vs 256 bits fp16:
        // > 5x compression expected.
        assert!(pq.memory_bytes() * 5 < full.memory_bytes());
        assert!(pq.compression_ratio() < 0.25);
        assert_eq!(pq.kind(), "million-pq");
    }

    #[test]
    fn alibi_bias_is_applied_across_segments() {
        let (kc, vc) = trained_codebooks(12);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 4));
        let (k, v) = random_kv(13, 32);
        pq.append(&k, &v);
        let query: Vec<f32> = vec![0.2; HEAD_DIM];
        let mut scratch = AttendScratch::new();
        let mut with_bias = vec![0.0; HEAD_DIM];
        let mut without_bias = vec![0.0; HEAD_DIM];
        pq.attend(
            &AttendParams::new(0, &query, 0.25, 31).with_alibi(0.5),
            &mut scratch,
            &mut with_bias,
        );
        pq.attend(
            &AttendParams::new(0, &query, 0.25, 31),
            &mut scratch,
            &mut without_bias,
        );
        assert_ne!(with_bias, without_bias);
    }

    #[test]
    fn empty_cache_attend_is_zero() {
        let (kc, vc) = trained_codebooks(14);
        let pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let query = vec![1.0; HEAD_DIM];
        let out = attend_all(&pq, &query, 0);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fused_attend_matches_two_pass_kernel() {
        let (kc, vc) = trained_codebooks(17);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 4));
        let (k, v) = random_kv(18, 48);
        pq.append(&k, &v);
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.19).sin()).collect();
        let current_k: Vec<f32> = (0..HEAD_DIM).map(|i| 0.05 * i as f32).collect();
        let current_v: Vec<f32> = (0..HEAD_DIM).map(|i| 1.0 - 0.1 * i as f32).collect();
        let mut scratch = AttendScratch::new();
        for head in 0..HEADS {
            let params = AttendParams::new(head, &query, 0.25, 48)
                .with_alibi(0.3)
                .with_current(&current_k, &current_v);
            let mut fused = vec![0.0; HEAD_DIM];
            pq.attend(&params, &mut scratch, &mut fused);
            let mut two_pass = vec![0.0; HEAD_DIM];
            pq.attend_two_pass(&params, &mut scratch, &mut two_pass);
            for (a, b) in fused.iter().zip(two_pass.iter()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "head {head}: fused {a} vs two-pass {b}"
                );
            }
        }
    }

    #[test]
    fn incremental_decode_appends_match_bulk_append() {
        let (kc, vc) = trained_codebooks(15);
        let mut bulk = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 0));
        let mut step = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let (k, v) = random_kv(16, 24);
        bulk.append(&k, &v);
        for t in 0..24 {
            step.append(&k.slice_rows(t..t + 1), &v.slice_rows(t..t + 1));
        }
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32).cos()).collect();
        let a = attend_all(&bulk, &query, 1);
        let b = attend_all(&step, &query, 1);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
