//! The MILLION KV cache: product-quantized history + dense recent window.
//!
//! Decode-time attention over this cache follows Eq. (7) of the paper:
//!
//! 1. the quantized history is scored through a per-query lookup table
//!    (`q × Cᵀ` per subspace) without de-quantizing any key;
//! 2. softmax mass over the history is accumulated per value centroid and the
//!    centroids are mixed once ([`million_quant::pq::ValueAccumulator`]);
//! 3. the dense recent window (including the current token) is attended in
//!    full precision;
//! 4. both segments are combined with an online softmax.
//!
//! The quantized history itself is **paged**: it is the concatenation of a
//! chain of sealed, immutable, shareable [`Block`]s (owned by a
//! [`million_store::BlockStore`] and typically co-referenced by every
//! session that prefilled the same prompt prefix) followed by this cache's
//! private open tail of codes. The fused kernel walks the chain chunk by
//! chunk through [`million_quant::pq::ScoreLut::fused_attend_chunk`], which
//! continues one online softmax across chunks — paged attention is
//! bit-identical to attention over one monolithic code buffer.

use std::sync::Arc;

use million_quant::pq::{FusedAlibi, FusedState, PqCodebook, PqCodes};
use million_store::Block;
use million_tensor::alibi::alibi_bias;
use million_tensor::ops::dot;
use million_tensor::Matrix;

use crate::scratch::{grown, AttendScratch};
use crate::traits::{append_head_strided, head_slice, AttendParams, CacheLayout, KvCache};

/// Configuration of a [`PqKvCache`].
#[derive(Debug, Clone)]
pub struct PqCacheConfig {
    /// Codebook used for keys (dimension must equal `head_dim`).
    pub key_codebook: Arc<PqCodebook>,
    /// Codebook used for values (dimension must equal `head_dim`).
    pub value_codebook: Arc<PqCodebook>,
    /// Number of most recent tokens kept in full precision. The paper sets
    /// this to 0 for its stress evaluations; the asynchronous engine uses it
    /// as the staging buffer for not-yet-quantized tokens.
    pub residual_len: usize,
    /// When `true` (default), [`KvCache::append`] immediately encodes tokens
    /// that fall out of the residual window. The asynchronous engine sets
    /// this to `false` and feeds codes back via [`PqKvCache::absorb_encoded`].
    pub auto_encode: bool,
    /// Which model layer this cache serves — the slice of each multi-layer
    /// shared [`Block`] it reads. Irrelevant (0) when no blocks are attached.
    pub layer: usize,
}

impl PqCacheConfig {
    /// Convenience constructor with `auto_encode = true` and `layer = 0`.
    pub fn new(
        key_codebook: Arc<PqCodebook>,
        value_codebook: Arc<PqCodebook>,
        residual_len: usize,
    ) -> Self {
        Self {
            key_codebook,
            value_codebook,
            residual_len,
            auto_encode: true,
            layer: 0,
        }
    }

    /// Sets the layer index used to address shared blocks.
    #[must_use]
    pub fn with_layer(mut self, layer: usize) -> Self {
        self.layer = layer;
        self
    }
}

/// PQ codes for a block of tokens, one [`PqCodes`] sequence per KV head.
///
/// Produced by [`PqKvCache::encode_tokens`] (synchronously or from a worker
/// thread) and consumed by [`PqKvCache::absorb_encoded`].
#[derive(Debug, Clone)]
pub struct EncodedTokens {
    /// Per-head key codes; every entry holds the same number of tokens.
    pub key_codes: Vec<PqCodes>,
    /// Per-head value codes; same shape as `key_codes`.
    pub value_codes: Vec<PqCodes>,
}

impl EncodedTokens {
    /// Number of tokens in this block.
    pub fn len(&self) -> usize {
        self.key_codes.first().map_or(0, |c| c.len())
    }

    /// Returns `true` when the block holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Product-quantized KV cache (the MILLION backend).
pub struct PqKvCache {
    layout: CacheLayout,
    config: PqCacheConfig,
    /// Sealed shared blocks of the quantized prefix, oldest first. This
    /// cache reads the `config.layer` slice of each; the blocks themselves
    /// are immutable and usually co-owned by other sessions.
    shared: Vec<Arc<Block>>,
    /// Tokens covered by `shared`.
    shared_tokens: usize,
    /// Per-head key codes of the private (unsealed) quantized tail.
    key_codes: Vec<PqCodes>,
    /// Per-head value codes of the private quantized tail.
    value_codes: Vec<PqCodes>,
    /// Per-head dense recent keys, `[recent_len, head_dim]` row-major.
    recent_keys: Vec<Vec<f32>>,
    /// Per-head dense recent values.
    recent_values: Vec<Vec<f32>>,
    /// Tokens in the quantized prefix (shared blocks + private tail).
    quantized_len: usize,
    /// Tokens in the dense suffix.
    recent_len: usize,
}

impl std::fmt::Debug for PqKvCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqKvCache")
            .field("layout", &self.layout)
            .field("shared_blocks", &self.shared.len())
            .field("shared_tokens", &self.shared_tokens)
            .field("quantized_len", &self.quantized_len)
            .field("recent_len", &self.recent_len)
            .finish()
    }
}

impl PqKvCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if either codebook's dimension differs from `layout.head_dim`.
    pub fn new(layout: CacheLayout, config: PqCacheConfig) -> Self {
        assert_eq!(
            config.key_codebook.dim(),
            layout.head_dim,
            "key codebook dimension must equal head_dim"
        );
        assert_eq!(
            config.value_codebook.dim(),
            layout.head_dim,
            "value codebook dimension must equal head_dim"
        );
        let key_codes = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(config.key_codebook.config()))
            .collect();
        let value_codes = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(config.value_codebook.config()))
            .collect();
        Self {
            layout,
            config,
            shared: Vec::new(),
            shared_tokens: 0,
            key_codes,
            value_codes,
            recent_keys: vec![Vec::new(); layout.n_kv_heads],
            recent_values: vec![Vec::new(); layout.n_kv_heads],
            quantized_len: 0,
            recent_len: 0,
        }
    }

    /// Number of tokens currently stored as PQ codes (shared + private).
    pub fn quantized_len(&self) -> usize {
        self.quantized_len
    }

    /// Number of tokens currently stored densely.
    pub fn recent_len(&self) -> usize {
        self.recent_len
    }

    /// Tokens covered by attached shared blocks.
    pub fn shared_tokens(&self) -> usize {
        self.shared_tokens
    }

    /// Tokens in the private (unsealed) quantized tail.
    pub fn private_quantized_len(&self) -> usize {
        self.quantized_len - self.shared_tokens
    }

    /// The attached shared blocks, oldest first.
    pub fn shared_blocks(&self) -> &[Arc<Block>] {
        &self.shared
    }

    /// Per-head private key codes of the unsealed tail (for persistence).
    pub fn private_key_codes(&self) -> &[PqCodes] {
        &self.key_codes
    }

    /// Per-head private value codes of the unsealed tail (for persistence).
    pub fn private_value_codes(&self) -> &[PqCodes] {
        &self.value_codes
    }

    /// Per-head dense recent keys, `[recent_len, head_dim]` row-major (for
    /// persistence).
    pub fn recent_key_rows(&self) -> &[Vec<f32>] {
        &self.recent_keys
    }

    /// Per-head dense recent values (for persistence).
    pub fn recent_value_rows(&self) -> &[Vec<f32>] {
        &self.recent_values
    }

    /// Appends a sealed block to the shared chain. The block's tokens
    /// logically *precede* the private tail, so this is only valid right
    /// after construction (prefix attach on admission / restore) or right
    /// after the corresponding codes were removed from the front of the
    /// private tail with [`PqKvCache::take_private_front`].
    ///
    /// # Panics
    ///
    /// Panics if the block's geometry or code configuration disagrees with
    /// this cache.
    pub fn attach_shared_block(&mut self, block: Arc<Block>) {
        assert!(
            self.config.layer < block.n_layers(),
            "cache layer {} outside block's {} layers",
            self.config.layer,
            block.n_layers()
        );
        assert_eq!(
            block.n_kv_heads(),
            self.layout.n_kv_heads,
            "shared block head count mismatch"
        );
        let probe = block.key_codes(self.config.layer, 0);
        assert_eq!(
            probe.config(),
            self.config.key_codebook.config(),
            "shared block key code config mismatch"
        );
        assert_eq!(
            block.value_codes(self.config.layer, 0).config(),
            self.config.value_codebook.config(),
            "shared block value code config mismatch"
        );
        self.shared_tokens += block.len();
        self.quantized_len += block.len();
        self.shared.push(block);
    }

    /// Removes and returns the first `n` tokens of the private quantized
    /// tail as per-head `(key, value)` code blocks — the donor half of
    /// sealing: the caller bundles the codes of every layer into a
    /// [`Block`] and re-attaches it via [`PqKvCache::attach_shared_block`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` private quantized tokens exist.
    pub fn take_private_front(&mut self, n: usize) -> (Vec<PqCodes>, Vec<PqCodes>) {
        assert!(
            n <= self.private_quantized_len(),
            "cannot take {n} tokens from a private tail of {}",
            self.private_quantized_len()
        );
        let keys = self.key_codes.iter_mut().map(|c| c.take_front(n)).collect();
        let values = self
            .value_codes
            .iter_mut()
            .map(|c| c.take_front(n))
            .collect();
        self.quantized_len -= n;
        (keys, values)
    }

    /// Replaces the first `block.len()` tokens of the private tail with a
    /// shared block holding identical codes (publish-time copy-on-write
    /// convergence: this session's codes are dropped in favour of the
    /// already-resident copy).
    ///
    /// # Panics
    ///
    /// Panics if the private tail is shorter than the block.
    pub fn replace_private_front_with_block(&mut self, block: Arc<Block>) {
        let n = block.len();
        let _ = self.take_private_front(n);
        self.attach_shared_block(block);
    }

    /// Restores the private tail and dense window of a persisted cache.
    /// Must be called on a cache whose private tail and recent window are
    /// empty (shared blocks may already be attached).
    ///
    /// # Panics
    ///
    /// Panics if the cache already holds private/dense tokens or the shapes
    /// disagree with the layout.
    pub fn restore_parts(
        &mut self,
        key_codes: Vec<PqCodes>,
        value_codes: Vec<PqCodes>,
        recent_keys: Vec<Vec<f32>>,
        recent_values: Vec<Vec<f32>>,
    ) {
        assert_eq!(self.private_quantized_len(), 0, "private tail not empty");
        assert_eq!(self.recent_len, 0, "recent window not empty");
        let h = self.layout.n_kv_heads;
        let d = self.layout.head_dim;
        assert!(
            key_codes.len() == h
                && value_codes.len() == h
                && recent_keys.len() == h
                && recent_values.len() == h,
            "restored head count mismatch"
        );
        let private = key_codes[0].len();
        assert!(
            key_codes
                .iter()
                .all(|c| c.len() == private && c.config() == self.config.key_codebook.config())
                && value_codes.iter().all(
                    |c| c.len() == private && c.config() == self.config.value_codebook.config()
                ),
            "restored private tail is ragged or misconfigured"
        );
        let recent = recent_keys[0].len() / d;
        assert!(
            recent_keys
                .iter()
                .chain(recent_values.iter())
                .all(|r| r.len() == recent * d),
            "restored dense window is ragged"
        );
        self.key_codes = key_codes;
        self.value_codes = value_codes;
        self.recent_keys = recent_keys;
        self.recent_values = recent_values;
        self.quantized_len += private;
        self.recent_len = recent;
    }

    /// Encodes a block of `[tokens, n_kv_heads * head_dim]` keys/values into
    /// per-head PQ codes. This is a pure function of the codebooks and is
    /// safe to call from a worker thread (the asynchronous quantization
    /// stream of the paper).
    ///
    /// # Panics
    ///
    /// Panics if the matrices do not match the layout.
    pub fn encode_tokens(
        key_codebook: &PqCodebook,
        value_codebook: &PqCodebook,
        layout: &CacheLayout,
        keys: &Matrix,
        values: &Matrix,
    ) -> EncodedTokens {
        assert_eq!(keys.shape(), values.shape(), "keys/values shape mismatch");
        assert_eq!(keys.cols(), layout.width(), "KV width mismatch");
        let mut key_codes: Vec<PqCodes> = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(key_codebook.config()))
            .collect();
        let mut value_codes: Vec<PqCodes> = (0..layout.n_kv_heads)
            .map(|_| PqCodes::new(value_codebook.config()))
            .collect();
        for t in 0..keys.rows() {
            let k_row = keys.row(t);
            let v_row = values.row(t);
            for h in 0..layout.n_kv_heads {
                key_codes[h].push(&key_codebook.encode(head_slice(k_row, layout, h)));
                value_codes[h].push(&value_codebook.encode(head_slice(v_row, layout, h)));
            }
        }
        EncodedTokens {
            key_codes,
            value_codes,
        }
    }

    /// Appends a block of already-encoded tokens and drops the corresponding
    /// oldest dense tokens from the recent window.
    ///
    /// This is how the asynchronous quantization stream hands its results
    /// back to the cache: the dense copies stay visible to `attend` until the
    /// codes arrive, so attention never misses a token.
    ///
    /// # Panics
    ///
    /// Panics if the block has more tokens than the recent window currently
    /// holds, or if its head count differs from the layout.
    pub fn absorb_encoded(&mut self, encoded: EncodedTokens) {
        let n = encoded.len();
        if n == 0 {
            return;
        }
        assert_eq!(
            encoded.key_codes.len(),
            self.layout.n_kv_heads,
            "encoded block head count mismatch"
        );
        assert!(
            n <= self.recent_len,
            "cannot absorb {n} encoded tokens with only {} dense tokens pending",
            self.recent_len
        );
        let d = self.layout.head_dim;
        for h in 0..self.layout.n_kv_heads {
            self.key_codes[h].append(&encoded.key_codes[h]);
            self.value_codes[h].append(&encoded.value_codes[h]);
            self.recent_keys[h].drain(0..n * d);
            self.recent_values[h].drain(0..n * d);
        }
        self.quantized_len += n;
        self.recent_len -= n;
    }

    /// Returns the dense recent keys/values that are *eligible* for encoding
    /// (everything beyond the configured residual window) as
    /// `[tokens, n_kv_heads * head_dim]` matrices, without removing them.
    ///
    /// The asynchronous engine sends these to the quantization worker.
    pub fn encodable_dense(&self) -> Option<(Matrix, Matrix)> {
        if self.recent_len <= self.config.residual_len {
            return None;
        }
        let n = self.recent_len - self.config.residual_len;
        let d = self.layout.head_dim;
        let width = self.layout.width();
        let mut keys = Matrix::zeros(n, width);
        let mut values = Matrix::zeros(n, width);
        for t in 0..n {
            for h in 0..self.layout.n_kv_heads {
                let k_src = &self.recent_keys[h][t * d..(t + 1) * d];
                let v_src = &self.recent_values[h][t * d..(t + 1) * d];
                keys.row_mut(t)[h * d..(h + 1) * d].copy_from_slice(k_src);
                values.row_mut(t)[h * d..(h + 1) * d].copy_from_slice(v_src);
            }
        }
        Some((keys, values))
    }

    /// Fraction of fp16 storage still needed: `memory_bytes / fp16 bytes`.
    pub fn compression_ratio(&self) -> f64 {
        let fp16 = (self.len() * self.layout.fp16_bytes_per_token()).max(1);
        self.memory_bytes() as f64 / fp16 as f64
    }

    fn encode_overflow(&mut self) {
        if let Some((keys, values)) = self.encodable_dense() {
            let encoded = Self::encode_tokens(
                &self.config.key_codebook,
                &self.config.value_codebook,
                &self.layout,
                &keys,
                &values,
            );
            self.absorb_encoded(encoded);
        }
    }

    /// Attends the dense recent window and the current token into
    /// `scratch.softmax` (which the quantized segment has already been
    /// merged into) and writes the normalised result.
    // analyze: no-alloc
    fn attend_dense_tail(
        &self,
        params: &AttendParams<'_>,
        scratch: &mut AttendScratch,
        out: &mut [f32],
    ) {
        let d = self.layout.head_dim;
        let h = params.head;
        let keys = &self.recent_keys[h];
        let values = &self.recent_values[h];
        for t in 0..self.recent_len {
            let global_pos = self.quantized_len + t;
            let k = &keys[t * d..(t + 1) * d];
            let mut score = dot(params.query, k) * params.scale;
            if let Some(slope) = params.alibi_slope {
                score += alibi_bias(slope, params.query_pos, global_pos);
            }
            scratch.softmax.push(score, &values[t * d..(t + 1) * d]);
        }

        // --- Current token (second term of Eq. 7), always full precision.
        if let Some((cur_key, cur_value)) = params.current {
            scratch
                .softmax
                .push(dot(params.query, cur_key) * params.scale, cur_value);
        }

        scratch.softmax.finish_into(out);
    }

    /// The two-pass reference kernel the fused kernel replaced: score every
    /// quantized token into a materialised buffer, find the maximum, then
    /// make a second pass to exponentiate and accumulate value mass.
    ///
    /// Kept as the cache-level equivalence reference for
    /// [`KvCache::attend`], whose results agree with it up to the fused
    /// kernel's online-softmax reassociation (≲1e-6). The benchmark ladder
    /// (criterion + `bench_decode_baseline`) measures the standalone
    /// code-block variants in `million_bench::kernels` instead, which also
    /// cover the seed's unpacked-`u16` kernel.
    ///
    /// # Panics
    ///
    /// Same contract as [`KvCache::attend`].
    // analyze: no-alloc
    pub fn attend_two_pass(
        &self,
        params: &AttendParams<'_>,
        scratch: &mut AttendScratch,
        out: &mut [f32],
    ) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");
        let h = params.head;
        let layer = self.config.layer;

        scratch.softmax.reset(d);

        if self.quantized_len > 0 {
            scratch
                .lut
                .fill_from(&self.config.key_codebook, params.query);
            // Pass 1: materialise every chunk's scores at its absolute
            // position offset, walking the shared chain then the private tail.
            let scores = grown(&mut scratch.scores, self.quantized_len);
            let mut off = 0;
            for block in &self.shared {
                let chunk = block.key_codes(layer, h);
                scratch
                    .lut
                    .scores_into(chunk, &mut scores[off..off + chunk.len()]);
                off += chunk.len();
            }
            scratch
                .lut
                .scores_into(&self.key_codes[h], &mut scores[off..]);
            let mut max_score = f32::NEG_INFINITY;
            for (t, s) in scores.iter_mut().enumerate() {
                *s *= params.scale;
                if let Some(slope) = params.alibi_slope {
                    *s += alibi_bias(slope, params.query_pos, t);
                }
                max_score = max_score.max(*s);
            }
            // Pass 2: accumulate value mass chunk by chunk.
            let value_config = self.config.value_codebook.config();
            scratch
                .acc
                .ensure_shape(value_config.m, value_config.codebook_size());
            scratch.acc.reset();
            let mut sum_exp = 0.0f32;
            let mut accumulate = |vcodes: &PqCodes, base: usize| {
                for t in 0..vcodes.len() {
                    let w = (scores[base + t] - max_score).exp();
                    sum_exp += w;
                    scratch.acc.add_indexed(w, vcodes, t);
                }
            };
            let mut base = 0;
            for block in &self.shared {
                let vcodes = block.value_codes(layer, h);
                accumulate(vcodes, base);
                base += vcodes.len();
            }
            accumulate(&self.value_codes[h], base);
            let segment = grown(&mut scratch.segment, d);
            scratch
                .acc
                .finish_into(&self.config.value_codebook, segment);
            scratch
                .softmax
                .merge_segment(max_score, sum_exp, &scratch.segment[..d]);
        }

        self.attend_dense_tail(params, scratch, out);
    }
}

impl KvCache for PqKvCache {
    fn layout(&self) -> CacheLayout {
        self.layout
    }

    fn len(&self) -> usize {
        self.quantized_len + self.recent_len
    }

    fn append(&mut self, keys: &Matrix, values: &Matrix) {
        append_head_strided(
            &self.layout,
            keys,
            values,
            self.recent_keys
                .iter_mut()
                .zip(self.recent_values.iter_mut()),
        );
        self.recent_len += keys.rows();
        if self.config.auto_encode {
            self.encode_overflow();
        }
    }

    // analyze: no-alloc
    fn attend(&self, params: &AttendParams<'_>, scratch: &mut AttendScratch, out: &mut [f32]) {
        let d = self.layout.head_dim;
        assert_eq!(params.query.len(), d, "query length mismatch");
        assert_eq!(out.len(), d, "output length mismatch");
        assert!(params.head < self.layout.n_kv_heads, "head out of range");
        let h = params.head;

        scratch.softmax.reset(d);

        // --- Quantized history: fused LUT-score + online-softmax +
        // centroid-mass kernel, one pass over the packed codes. The history
        // is a chain of shared blocks plus the private tail; the resumable
        // chunk kernel threads one FusedState through every chunk, so the
        // result is bit-identical to a single pass over monolithic codes.
        if self.quantized_len > 0 {
            scratch
                .lut
                .fill_from(&self.config.key_codebook, params.query);
            let value_config = self.config.value_codebook.config();
            scratch
                .acc
                .ensure_shape(value_config.m, value_config.codebook_size());
            scratch.acc.reset();
            let mut state = FusedState::new();
            let layer = self.config.layer;
            let alibi_for = |base_pos: usize| {
                params.alibi_slope.map(|slope| FusedAlibi {
                    slope,
                    query_pos: params.query_pos,
                    base_pos,
                })
            };
            if params.alibi_slope.is_some() {
                // ALiBi bias grows towards newer tokens; walk chunks newest
                // first (as the kernel walks tokens within a chunk) so the
                // running maximum settles early and mass rescales stay rare.
                scratch.lut.fused_attend_chunk(
                    &self.key_codes[h],
                    &self.value_codes[h],
                    params.scale,
                    alibi_for(self.shared_tokens),
                    &mut scratch.acc,
                    &mut state,
                );
                let mut base = self.shared_tokens;
                for block in self.shared.iter().rev() {
                    base -= block.len();
                    scratch.lut.fused_attend_chunk(
                        block.key_codes(layer, h),
                        block.value_codes(layer, h),
                        params.scale,
                        alibi_for(base),
                        &mut scratch.acc,
                        &mut state,
                    );
                }
            } else {
                for block in &self.shared {
                    scratch.lut.fused_attend_chunk(
                        block.key_codes(layer, h),
                        block.value_codes(layer, h),
                        params.scale,
                        None,
                        &mut scratch.acc,
                        &mut state,
                    );
                }
                scratch.lut.fused_attend_chunk(
                    &self.key_codes[h],
                    &self.value_codes[h],
                    params.scale,
                    None,
                    &mut scratch.acc,
                    &mut state,
                );
            }
            let segment = grown(&mut scratch.segment, d);
            scratch
                .acc
                .finish_into(&self.config.value_codebook, segment);
            scratch
                .softmax
                .merge_segment(state.max_score, state.sum_exp, &scratch.segment[..d]);
        }

        self.attend_dense_tail(params, scratch, out);
    }

    fn memory_bytes(&self) -> usize {
        // Shared blocks are counted in full (this layer's slice), as if the
        // cache owned them — so the figure is comparable with an unshared
        // cache of the same length. The *resident* cost of sharing is
        // reported by the block store's stats and the session-level
        // shared/owned split.
        let shared: usize = self
            .shared
            .iter()
            .map(|b| b.layer_bytes(self.config.layer))
            .sum();
        let codes: usize = self
            .key_codes
            .iter()
            .chain(self.value_codes.iter())
            .map(|c| c.memory_bytes())
            .sum();
        // Dense residual accounted at fp16 like the baseline.
        let dense = 2 * self.recent_len * self.layout.width() * 2;
        shared + codes + dense
    }

    fn reset(&mut self) {
        self.shared.clear();
        self.shared_tokens = 0;
        self.key_codes = (0..self.layout.n_kv_heads)
            .map(|_| PqCodes::new(self.config.key_codebook.config()))
            .collect();
        self.value_codes = (0..self.layout.n_kv_heads)
            .map(|_| PqCodes::new(self.config.value_codebook.config()))
            .collect();
        for head in self
            .recent_keys
            .iter_mut()
            .chain(self.recent_values.iter_mut())
        {
            head.clear();
        }
        self.quantized_len = 0;
        self.recent_len = 0;
    }

    fn kind(&self) -> &'static str {
        "million-pq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full::FullPrecisionCache;
    use million_quant::pq::{PqConfig, PqTrainOptions};
    use million_tensor::init::{normal_matrix, seeded_rng};

    const HEAD_DIM: usize = 16;
    const HEADS: usize = 2;

    fn layout() -> CacheLayout {
        CacheLayout::new(HEADS, HEAD_DIM)
    }

    fn trained_codebooks(seed: u64) -> (Arc<PqCodebook>, Arc<PqCodebook>) {
        let mut rng = seeded_rng(seed);
        let samples = normal_matrix(&mut rng, 600, HEAD_DIM, 0.0, 1.0);
        let config = PqConfig::new(8, 6).unwrap();
        let key = PqCodebook::train(&config, &samples, &PqTrainOptions::default(), seed).unwrap();
        let samples_v = normal_matrix(&mut rng, 600, HEAD_DIM, 0.0, 1.0);
        let value =
            PqCodebook::train(&config, &samples_v, &PqTrainOptions::default(), seed + 1).unwrap();
        (Arc::new(key), Arc::new(value))
    }

    fn random_kv(seed: u64, tokens: usize) -> (Matrix, Matrix) {
        let mut rng = seeded_rng(seed);
        let width = layout().width();
        (
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
            normal_matrix(&mut rng, tokens, width, 0.0, 1.0),
        )
    }

    fn attend_all(cache: &dyn KvCache, query: &[f32], head: usize) -> Vec<f32> {
        let mut out = vec![0.0; HEAD_DIM];
        let mut scratch = AttendScratch::new();
        cache.attend(
            &AttendParams::new(
                head,
                query,
                1.0 / (HEAD_DIM as f32).sqrt(),
                cache.len().saturating_sub(1),
            ),
            &mut scratch,
            &mut out,
        );
        out
    }

    #[test]
    fn pq_attention_approximates_full_precision() {
        let (kc, vc) = trained_codebooks(0);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(1, 96);
        pq.append(&k, &v);
        full.append(&k, &v);

        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.37).sin()).collect();
        for head in 0..HEADS {
            let exact = attend_all(&full, &query, head);
            let approx = attend_all(&pq, &query, head);
            let err: f32 = exact
                .iter()
                .zip(approx.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(err < 0.35, "head {head}: max abs error {err} too large");
        }
    }

    #[test]
    fn residual_window_keeps_recent_tokens_dense() {
        let (kc, vc) = trained_codebooks(2);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 8));
        let (k, v) = random_kv(3, 20);
        pq.append(&k, &v);
        assert_eq!(pq.len(), 20);
        assert_eq!(pq.recent_len(), 8);
        assert_eq!(pq.quantized_len(), 12);
    }

    #[test]
    fn zero_residual_quantizes_everything() {
        let (kc, vc) = trained_codebooks(4);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let (k, v) = random_kv(5, 10);
        pq.append(&k, &v);
        assert_eq!(pq.recent_len(), 0);
        assert_eq!(pq.quantized_len(), 10);
    }

    #[test]
    fn manual_encode_path_matches_auto_path() {
        let (kc, vc) = trained_codebooks(6);
        let mut auto = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 0));
        let mut manual_cfg = PqCacheConfig::new(kc.clone(), vc.clone(), 0);
        manual_cfg.auto_encode = false;
        let mut manual = PqKvCache::new(layout(), manual_cfg);

        let (k, v) = random_kv(7, 32);
        auto.append(&k, &v);
        manual.append(&k, &v);
        assert_eq!(manual.recent_len(), 32);
        // Simulate the async worker: encode everything, then absorb.
        let (dk, dv) = manual.encodable_dense().expect("tokens pending");
        let encoded = PqKvCache::encode_tokens(&kc, &vc, &layout(), &dk, &dv);
        manual.absorb_encoded(encoded);
        assert_eq!(manual.quantized_len(), 32);

        let query: Vec<f32> = (0..HEAD_DIM).map(|i| 0.1 * i as f32 - 0.5).collect();
        for head in 0..HEADS {
            let a = attend_all(&auto, &query, head);
            let m = attend_all(&manual, &query, head);
            for (x, y) in a.iter().zip(m.iter()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn absorb_more_than_pending_panics() {
        let (kc, vc) = trained_codebooks(8);
        let mut cfg = PqCacheConfig::new(kc.clone(), vc.clone(), 0);
        cfg.auto_encode = false;
        let mut cache = PqKvCache::new(layout(), cfg);
        let (k, v) = random_kv(9, 4);
        cache.append(&k, &v);
        let encoded = PqKvCache::encode_tokens(&kc, &vc, &layout(), &k, &v);
        cache.absorb_encoded(encoded.clone());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c2 = cache;
            c2.absorb_encoded(encoded);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn memory_is_much_smaller_than_fp16() {
        let (kc, vc) = trained_codebooks(10);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let mut full = FullPrecisionCache::new(layout());
        let (k, v) = random_kv(11, 256);
        pq.append(&k, &v);
        full.append(&k, &v);
        // 8 subspaces x 6 bits = 48 bits per 16-dim head vector vs 256 bits fp16:
        // > 5x compression expected.
        assert!(pq.memory_bytes() * 5 < full.memory_bytes());
        assert!(pq.compression_ratio() < 0.25);
        assert_eq!(pq.kind(), "million-pq");
    }

    #[test]
    fn alibi_bias_is_applied_across_segments() {
        let (kc, vc) = trained_codebooks(12);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 4));
        let (k, v) = random_kv(13, 32);
        pq.append(&k, &v);
        let query: Vec<f32> = vec![0.2; HEAD_DIM];
        let mut scratch = AttendScratch::new();
        let mut with_bias = vec![0.0; HEAD_DIM];
        let mut without_bias = vec![0.0; HEAD_DIM];
        pq.attend(
            &AttendParams::new(0, &query, 0.25, 31).with_alibi(0.5),
            &mut scratch,
            &mut with_bias,
        );
        pq.attend(
            &AttendParams::new(0, &query, 0.25, 31),
            &mut scratch,
            &mut without_bias,
        );
        assert_ne!(with_bias, without_bias);
    }

    #[test]
    fn empty_cache_attend_is_zero() {
        let (kc, vc) = trained_codebooks(14);
        let pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let query = vec![1.0; HEAD_DIM];
        let out = attend_all(&pq, &query, 0);
        assert!(out.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fused_attend_matches_two_pass_kernel() {
        let (kc, vc) = trained_codebooks(17);
        let mut pq = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 4));
        let (k, v) = random_kv(18, 48);
        pq.append(&k, &v);
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.19).sin()).collect();
        let current_k: Vec<f32> = (0..HEAD_DIM).map(|i| 0.05 * i as f32).collect();
        let current_v: Vec<f32> = (0..HEAD_DIM).map(|i| 1.0 - 0.1 * i as f32).collect();
        let mut scratch = AttendScratch::new();
        for head in 0..HEADS {
            let params = AttendParams::new(head, &query, 0.25, 48)
                .with_alibi(0.3)
                .with_current(&current_k, &current_v);
            let mut fused = vec![0.0; HEAD_DIM];
            pq.attend(&params, &mut scratch, &mut fused);
            let mut two_pass = vec![0.0; HEAD_DIM];
            pq.attend_two_pass(&params, &mut scratch, &mut two_pass);
            for (a, b) in fused.iter().zip(two_pass.iter()) {
                assert!(
                    (a - b).abs() < 1e-5,
                    "head {head}: fused {a} vs two-pass {b}"
                );
            }
        }
    }

    /// Seals the first `blocks x block_tokens` private quantized tokens of
    /// `cache` into standalone shared blocks (single-layer), as the session
    /// layer does through the block store.
    fn seal_blocks(cache: &mut PqKvCache, block_tokens: usize, blocks: usize) {
        for _ in 0..blocks {
            let (keys, values) = cache.take_private_front(block_tokens);
            let block = Arc::new(Block::new(1, HEADS, keys, values));
            cache.attach_shared_block(block);
        }
    }

    #[test]
    fn paged_attend_is_bit_identical_to_private_attend() {
        // The same tokens, one cache keeping them as a monolithic private
        // tail, the other reading them through a chain of sealed blocks plus
        // a short private remainder — fused and two-pass kernels, with and
        // without ALiBi, must agree bit for bit.
        let (kc, vc) = trained_codebooks(30);
        let mut private = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 4));
        let mut paged = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 4));
        let (k, v) = random_kv(31, 77);
        private.append(&k, &v);
        paged.append(&k, &v);
        seal_blocks(&mut paged, 16, 4); // 64 shared + 9 private + 4 dense
        assert_eq!(paged.shared_tokens(), 64);
        assert_eq!(paged.private_quantized_len(), 9);
        assert_eq!(paged.len(), private.len());
        assert_eq!(paged.memory_bytes(), private.memory_bytes());

        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.21).sin()).collect();
        let current_k: Vec<f32> = (0..HEAD_DIM).map(|i| 0.04 * i as f32).collect();
        let current_v: Vec<f32> = (0..HEAD_DIM).map(|i| 0.7 - 0.03 * i as f32).collect();
        let mut scratch = AttendScratch::new();
        for head in 0..HEADS {
            for alibi in [None, Some(0.35f32)] {
                let mut params =
                    AttendParams::new(head, &query, 0.25, 77).with_current(&current_k, &current_v);
                if let Some(slope) = alibi {
                    params = params.with_alibi(slope);
                }
                let mut a = vec![0.0; HEAD_DIM];
                let mut b = vec![0.0; HEAD_DIM];
                private.attend(&params, &mut scratch, &mut a);
                paged.attend(&params, &mut scratch, &mut b);
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "fused head {head} alibi {alibi:?}"
                );
                private.attend_two_pass(&params, &mut scratch, &mut a);
                paged.attend_two_pass(&params, &mut scratch, &mut b);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!(
                        (x - y).abs() < 1e-6,
                        "two-pass head {head} alibi {alibi:?}: {x} vs {y}"
                    );
                }
            }
        }

        // Appending after sealing lands in the private tail and stays
        // equivalent.
        let (k2, v2) = random_kv(32, 15);
        private.append(&k2, &v2);
        paged.append(&k2, &v2);
        let params = AttendParams::new(0, &query, 0.25, 92);
        let mut a = vec![0.0; HEAD_DIM];
        let mut b = vec![0.0; HEAD_DIM];
        private.attend(&params, &mut scratch, &mut a);
        paged.attend(&params, &mut scratch, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn replace_private_front_adopts_identical_shared_codes() {
        let (kc, vc) = trained_codebooks(33);
        let mut donor = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 0));
        let mut adopter = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let (k, v) = random_kv(34, 32);
        donor.append(&k, &v);
        adopter.append(&k, &v);
        // Donor seals its first 16 tokens into a block; adopter converges on
        // that block instead of keeping its own copy.
        let (keys, values) = donor.take_private_front(16);
        let block = Arc::new(Block::new(1, HEADS, keys, values));
        donor.attach_shared_block(block.clone());
        adopter.replace_private_front_with_block(block.clone());
        assert_eq!(Arc::strong_count(&block), 3);
        assert_eq!(adopter.shared_tokens(), 16);

        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.4).cos()).collect();
        let a = attend_all(&donor, &query, 1);
        let b = attend_all(&adopter, &query, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn restore_parts_reconstructs_an_equivalent_cache() {
        let (kc, vc) = trained_codebooks(35);
        let mut original = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 6));
        let (k, v) = random_kv(36, 40);
        original.append(&k, &v);
        seal_blocks(&mut original, 10, 2);

        let mut restored = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 6));
        for block in original.shared_blocks() {
            restored.attach_shared_block(block.clone());
        }
        restored.restore_parts(
            original.private_key_codes().to_vec(),
            original.private_value_codes().to_vec(),
            original.recent_key_rows().to_vec(),
            original.recent_value_rows().to_vec(),
        );
        assert_eq!(restored.len(), original.len());
        assert_eq!(restored.recent_len(), original.recent_len());
        assert_eq!(restored.memory_bytes(), original.memory_bytes());
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| 0.15 * i as f32 - 1.0).collect();
        for head in 0..HEADS {
            assert_eq!(
                attend_all(&original, &query, head),
                attend_all(&restored, &query, head)
            );
        }
    }

    #[test]
    fn incremental_decode_appends_match_bulk_append() {
        let (kc, vc) = trained_codebooks(15);
        let mut bulk = PqKvCache::new(layout(), PqCacheConfig::new(kc.clone(), vc.clone(), 0));
        let mut step = PqKvCache::new(layout(), PqCacheConfig::new(kc, vc, 0));
        let (k, v) = random_kv(16, 24);
        bulk.append(&k, &v);
        for t in 0..24 {
            step.append(&k.slice_rows(t..t + 1), &v.slice_rows(t..t + 1));
        }
        let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32).cos()).collect();
        let a = attend_all(&bulk, &query, 1);
        let b = attend_all(&step, &query, 1);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
