//! The backend-agnostic KV-cache interface used by the transformer layers.

use million_tensor::Matrix;

/// Static geometry of one layer's KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLayout {
    /// Number of key/value heads (equal to query heads for MHA, fewer for GQA).
    pub n_kv_heads: usize,
    /// Channels per head.
    pub head_dim: usize,
}

impl CacheLayout {
    /// Creates a layout.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero.
    pub fn new(n_kv_heads: usize, head_dim: usize) -> Self {
        assert!(n_kv_heads > 0, "n_kv_heads must be > 0");
        assert!(head_dim > 0, "head_dim must be > 0");
        Self {
            n_kv_heads,
            head_dim,
        }
    }

    /// Width of the flattened `[tokens, n_kv_heads * head_dim]` KV matrices.
    pub fn width(&self) -> usize {
        self.n_kv_heads * self.head_dim
    }

    /// Byte size of one token's K + V in fp16, the unit the paper's memory
    /// arithmetic is based on.
    pub fn fp16_bytes_per_token(&self) -> usize {
        2 * self.width() * 2
    }
}

/// Per-query parameters for decode-time attention over the cache.
#[derive(Debug, Clone, Copy)]
pub struct AttendParams<'a> {
    /// Which KV head to attend with.
    pub head: usize,
    /// The query vector for this head (positional embedding already applied).
    pub query: &'a [f32],
    /// Score scale, normally `1/sqrt(head_dim)`.
    pub scale: f32,
    /// Absolute position of the querying token (used for ALiBi distances).
    pub query_pos: usize,
    /// ALiBi slope for this head, or `None` when the model does not use ALiBi.
    pub alibi_slope: Option<f32>,
    /// The current token's `(key, value)` pair, attended at full precision and
    /// merged with the cached history through the online softmax — the second
    /// term of Eq. (7) in the paper. `None` when the query should only see
    /// already-cached tokens.
    pub current: Option<(&'a [f32], &'a [f32])>,
}

impl<'a> AttendParams<'a> {
    /// Creates parameters with no ALiBi bias and no current-token pair.
    pub fn new(head: usize, query: &'a [f32], scale: f32, query_pos: usize) -> Self {
        Self {
            head,
            query,
            scale,
            query_pos,
            alibi_slope: None,
            current: None,
        }
    }

    /// Sets the ALiBi slope for this head.
    pub fn with_alibi(mut self, slope: f32) -> Self {
        self.alibi_slope = Some(slope);
        self
    }

    /// Attaches the current token's full-precision key/value pair.
    pub fn with_current(mut self, key: &'a [f32], value: &'a [f32]) -> Self {
        self.current = Some((key, value));
        self
    }
}

/// A growable per-layer key/value store that can answer decode-time
/// attention queries against everything it has cached.
///
/// Implementations differ in how (and how much) they compress; they all obey
/// the same contract:
///
/// * [`append`](KvCache::append) adds the keys/values of one or more new
///   tokens (rows of a `[tokens, n_kv_heads * head_dim]` matrix, with the
///   positional embedding already applied to keys where relevant);
/// * [`attend`](KvCache::attend) computes `softmax(q·K^T * scale + bias) · V`
///   for a single query over **all** cached tokens of one head and writes the
///   result into `out`, borrowing all working memory from a caller-owned
///   [`crate::AttendScratch`] so the steady-state decode loop allocates
///   nothing.
///
/// `attend` takes `&self`, so one layer's cache can serve many heads in
/// parallel (the trait requires `Sync`) as long as each worker brings its
/// own scratch.
pub trait KvCache: Send + Sync {
    /// Geometry of this cache.
    fn layout(&self) -> CacheLayout;

    /// Number of tokens currently cached.
    fn len(&self) -> usize;

    /// Returns `true` when no tokens are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the keys/values of `keys.rows()` new tokens.
    ///
    /// # Panics
    ///
    /// Implementations panic if the matrices do not both have
    /// `layout().width()` columns and the same number of rows.
    fn append(&mut self, keys: &Matrix, values: &Matrix);

    /// Attention of one query over every cached token of one head.
    ///
    /// All temporary buffers come from `scratch`, which may be shared across
    /// heads, layers, backends, and calls (but not across concurrent calls);
    /// results never depend on what a previous call left in it.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.query.len() != head_dim`,
    /// `out.len() != head_dim`, or `params.head >= n_kv_heads`.
    fn attend(
        &self,
        params: &AttendParams<'_>,
        scratch: &mut crate::AttendScratch,
        out: &mut [f32],
    );

    /// Bytes of storage attributable to the cached tokens (excluding any
    /// shared, token-count-independent state such as codebooks).
    fn memory_bytes(&self) -> usize;

    /// Drops every cached token, returning the cache to its freshly
    /// constructed state while keeping configuration and any shared state
    /// (codebooks). Lets a serving session be reused for a new conversation
    /// without re-allocating backends.
    fn reset(&mut self);

    /// Short human-readable backend name (e.g. `"fp16"`, `"million-pq"`).
    fn kind(&self) -> &'static str;
}

impl<T: KvCache + ?Sized> KvCache for Box<T> {
    fn layout(&self) -> CacheLayout {
        (**self).layout()
    }

    fn len(&self) -> usize {
        (**self).len()
    }

    fn append(&mut self, keys: &Matrix, values: &Matrix) {
        (**self).append(keys, values)
    }

    fn attend(
        &self,
        params: &AttendParams<'_>,
        scratch: &mut crate::AttendScratch,
        out: &mut [f32],
    ) {
        (**self).attend(params, scratch, out)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn kind(&self) -> &'static str {
        (**self).kind()
    }
}

/// Splits one row of a flattened `[tokens, n_kv_heads * head_dim]` matrix
/// into the slice belonging to `head`.
#[inline]
pub fn head_slice<'a>(row: &'a [f32], layout: &CacheLayout, head: usize) -> &'a [f32] {
    let d = layout.head_dim;
    &row[head * d..(head + 1) * d]
}

/// Appends the per-head slices of `[tokens, n_kv_heads * head_dim]` key and
/// value matrices to per-head contiguous stores, one strided pass per head
/// (a single `reserve` then `rows` slice copies) instead of a per-token ×
/// per-head extend dance. `heads` yields each head's `(keys, values)`
/// destination in head order; this is the shared append path of every cache
/// backend.
///
/// # Panics
///
/// Panics if the matrices differ in shape or are not `layout.width()` wide.
pub fn append_head_strided<'a>(
    layout: &CacheLayout,
    keys: &Matrix,
    values: &Matrix,
    heads: impl Iterator<Item = (&'a mut Vec<f32>, &'a mut Vec<f32>)>,
) {
    assert_eq!(keys.shape(), values.shape(), "keys/values shape mismatch");
    assert_eq!(keys.cols(), layout.width(), "KV width mismatch");
    let rows = keys.rows();
    let d = layout.head_dim;
    let width = layout.width();
    let k_src = keys.as_slice();
    let v_src = values.as_slice();
    for (h, (dst_keys, dst_values)) in heads.enumerate() {
        let offset = h * d;
        dst_keys.reserve(rows * d);
        for t in 0..rows {
            let base = t * width + offset;
            dst_keys.extend_from_slice(&k_src[base..base + d]);
        }
        dst_values.reserve(rows * d);
        for t in 0..rows {
            let base = t * width + offset;
            dst_values.extend_from_slice(&v_src[base..base + d]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_width_and_bytes() {
        let layout = CacheLayout::new(4, 64);
        assert_eq!(layout.width(), 256);
        assert_eq!(layout.fp16_bytes_per_token(), 1024);
    }

    #[test]
    #[should_panic(expected = "head_dim must be > 0")]
    fn zero_head_dim_panics() {
        let _ = CacheLayout::new(2, 0);
    }

    #[test]
    fn head_slice_selects_correct_chunk() {
        let layout = CacheLayout::new(2, 3);
        let row: Vec<f32> = (0..6).map(|v| v as f32).collect();
        assert_eq!(head_slice(&row, &layout, 0), &[0.0, 1.0, 2.0]);
        assert_eq!(head_slice(&row, &layout, 1), &[3.0, 4.0, 5.0]);
    }
}
