//! Proof of the PR's central claim: once an [`AttendScratch`] is warm,
//! decode-time attention performs **zero heap allocations** on every
//! backend's hot path.
//!
//! A counting global allocator wraps the system allocator; each case warms
//! the scratch with one call per head, snapshots the counter, runs many
//! interleaved attends, and asserts the counter never moved. The counter is
//! per-thread (const-initialised TLS, so reading it never allocates): the
//! libtest harness runs tests and its own bookkeeping on other threads
//! whose allocations must not pollute a measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use million_kvcache::{
    AttendParams, AttendScratch, CacheLayout, FullPrecisionCache, KiviCache, KiviConfig, KvCache,
    KvQuantCache, KvQuantConfig, PqCacheConfig, PqKvCache,
};
use million_quant::pq::{PqCodebook, PqConfig, PqTrainOptions};
use million_store::Block;
use million_tensor::init::{normal_matrix, seeded_rng};

struct CountingAllocator;

thread_local! {
    /// Allocations made by *this* thread. `const`-initialised `Cell<usize>`
    /// has no destructor and no lazy init, so bumping it from inside the
    /// allocator cannot itself allocate or recurse.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const HEAD_DIM: usize = 32;
const HEADS: usize = 2;
const TOKENS: usize = 96;

fn layout() -> CacheLayout {
    CacheLayout::new(HEADS, HEAD_DIM)
}

fn assert_attend_is_allocation_free(cache: &dyn KvCache, label: &str) {
    let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.23).sin()).collect();
    let current_k: Vec<f32> = (0..HEAD_DIM).map(|i| 0.02 * i as f32).collect();
    let current_v: Vec<f32> = (0..HEAD_DIM).map(|i| 1.0 - 0.01 * i as f32).collect();
    let scale = 1.0 / (HEAD_DIM as f32).sqrt();
    let mut scratch = AttendScratch::new();
    let mut out = vec![0.0f32; HEAD_DIM];

    let run = |scratch: &mut AttendScratch, out: &mut [f32]| {
        for head in 0..HEADS {
            let params = AttendParams::new(head, &query, scale, TOKENS)
                .with_alibi(0.4)
                .with_current(&current_k, &current_v);
            cache.attend(&params, scratch, out);
        }
    };

    // Warm-up sizes every scratch buffer for this geometry.
    run(&mut scratch, &mut out);

    let before = thread_allocations();
    for _ in 0..50 {
        run(&mut scratch, &mut out);
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "{label}: steady-state attend allocated {} times over 100 calls",
        after - before
    );
}

fn random_kv(seed: u64, tokens: usize) -> (million_tensor::Matrix, million_tensor::Matrix) {
    let mut rng = seeded_rng(seed);
    (
        normal_matrix(&mut rng, tokens, layout().width(), 0.0, 1.0),
        normal_matrix(&mut rng, tokens, layout().width(), 0.0, 1.0),
    )
}

#[test]
fn pq_attend_is_allocation_free_when_scratch_is_warm() {
    let mut rng = seeded_rng(0);
    let samples = normal_matrix(&mut rng, 600, HEAD_DIM, 0.0, 1.0);
    let config = PqConfig::new(8, 4).unwrap();
    let key =
        Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), 0).unwrap());
    let value =
        Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), 1).unwrap());
    // residual_len > 0 exercises both the fused quantized kernel and the
    // dense-tail path in the same call.
    let mut cache = PqKvCache::new(layout(), PqCacheConfig::new(key, value, 8));
    let (k, v) = random_kv(1, TOKENS);
    cache.append(&k, &v);
    assert!(cache.quantized_len() > 0 && cache.recent_len() > 0);
    assert_attend_is_allocation_free(&cache, "million-pq");
}

#[test]
fn paged_pq_attend_through_a_block_chain_is_allocation_free() {
    // The paged layout: a chain of sealed shared blocks, a private quantized
    // tail, and a dense residual — all three segments walked in one attend.
    // Steady-state decode through the chain must allocate nothing.
    let mut rng = seeded_rng(7);
    let samples = normal_matrix(&mut rng, 600, HEAD_DIM, 0.0, 1.0);
    let config = PqConfig::new(8, 4).unwrap();
    let key =
        Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), 2).unwrap());
    let value =
        Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), 3).unwrap());
    let mut cache = PqKvCache::new(layout(), PqCacheConfig::new(key, value, 8));
    let (k, v) = random_kv(8, TOKENS);
    cache.append(&k, &v);
    // Seal the oldest 64 quantized tokens into four 16-token shared blocks.
    for _ in 0..4 {
        let (keys, values) = cache.take_private_front(16);
        cache.attach_shared_block(Arc::new(Block::new(1, HEADS, keys, values)));
    }
    assert_eq!(cache.shared_blocks().len(), 4);
    assert!(cache.private_quantized_len() > 0 && cache.recent_len() > 0);
    assert_attend_is_allocation_free(&cache, "million-pq-paged");
}

#[test]
fn baseline_attends_are_allocation_free_when_scratch_is_warm() {
    let (k, v) = random_kv(2, TOKENS);

    let mut full = FullPrecisionCache::new(layout());
    full.append(&k, &v);
    assert_attend_is_allocation_free(&full, "fp16");

    let mut kivi = KiviCache::new(
        layout(),
        KiviConfig {
            bits: 4,
            // 96 tokens = 3 full groups of 28 + a 12-token residual, so both
            // the quantized and residual paths run.
            group_size: 28,
        },
    );
    kivi.append(&k, &v);
    assert!(kivi.group_count() > 0 && kivi.residual_len() > 0);
    assert_attend_is_allocation_free(&kivi, "kivi");

    let mut kvq = KvQuantCache::new(layout(), KvQuantConfig::default());
    kvq.append(&k, &v);
    assert!(kvq.block_count() > 0 && kvq.pending_len() > 0);
    assert_attend_is_allocation_free(&kvq, "kvquant");
}
