//! Guard against stale-scratch bugs: a single [`AttendScratch`] shared
//! across many interleaved calls — different heads, different "layers"
//! (cache instances), different backends — must produce bit-identical
//! results to a fresh scratch per call.

use std::sync::Arc;

use million_kvcache::{
    AttendParams, AttendScratch, CacheLayout, FullPrecisionCache, KiviCache, KiviConfig, KvCache,
    KvQuantCache, KvQuantConfig, PqCacheConfig, PqKvCache,
};
use million_quant::pq::{PqCodebook, PqConfig, PqTrainOptions};
use million_tensor::init::{normal_matrix, seeded_rng};

const HEAD_DIM: usize = 16;
const HEADS: usize = 2;

fn layout() -> CacheLayout {
    CacheLayout::new(HEADS, HEAD_DIM)
}

fn trained(seed: u64, m: usize, nbits: u8) -> Arc<PqCodebook> {
    let mut rng = seeded_rng(seed);
    let samples = normal_matrix(&mut rng, 500, HEAD_DIM, 0.0, 1.0);
    let config = PqConfig::new(m, nbits).unwrap();
    Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), seed).unwrap())
}

/// Builds a mixed fleet of caches standing in for "layers" of different
/// backends, each filled with its own token stream.
fn build_layers() -> Vec<Box<dyn KvCache>> {
    let mut layers: Vec<Box<dyn KvCache>> = vec![
        Box::new(PqKvCache::new(
            layout(),
            // 4-bit codes: the unrolled nibble kernel.
            PqCacheConfig::new(trained(1, 8, 4), trained(2, 8, 4), 5),
        )),
        Box::new(PqKvCache::new(
            layout(),
            // 6-bit codes: the 3-bytes-per-4-codes kernel.
            PqCacheConfig::new(trained(3, 8, 6), trained(4, 8, 6), 0),
        )),
        Box::new(FullPrecisionCache::new(layout())),
        Box::new(KiviCache::new(layout(), KiviConfig::default())),
        Box::new(KvQuantCache::new(layout(), KvQuantConfig::default())),
    ];
    for (i, layer) in layers.iter_mut().enumerate() {
        let mut rng = seeded_rng(100 + i as u64);
        let tokens = 40 + 7 * i;
        let k = normal_matrix(&mut rng, tokens, layout().width(), 0.0, 1.0);
        let v = normal_matrix(&mut rng, tokens, layout().width(), 0.0, 1.0);
        layer.append(&k, &v);
    }
    layers
}

#[test]
fn shared_scratch_matches_fresh_scratch_across_interleaved_calls() {
    let layers = build_layers();
    let scale = 1.0 / (HEAD_DIM as f32).sqrt();
    let mut shared = AttendScratch::new();

    // Interleave (layer, head, query) triples in a deliberately adversarial
    // order: big caches then small, PQ then dense, alternating heads, with
    // and without ALiBi/current-token — everything a stale buffer could
    // leak across.
    for round in 0..3 {
        for head in 0..HEADS {
            for (l, layer) in layers.iter().enumerate() {
                let query: Vec<f32> = (0..HEAD_DIM)
                    .map(|i| ((i + l + round) as f32 * 0.37).sin())
                    .collect();
                let current_k: Vec<f32> =
                    (0..HEAD_DIM).map(|i| 0.03 * (i + round) as f32).collect();
                let current_v: Vec<f32> = (0..HEAD_DIM).map(|i| 0.5 - 0.02 * i as f32).collect();
                let mut params = AttendParams::new(head, &query, scale, layer.len());
                if (l + round) % 2 == 0 {
                    params = params.with_alibi(0.25);
                }
                if (l + round) % 3 == 0 {
                    params = params.with_current(&current_k, &current_v);
                }

                let mut with_shared = vec![0.0f32; HEAD_DIM];
                layer.attend(&params, &mut shared, &mut with_shared);

                let mut fresh = AttendScratch::new();
                let mut with_fresh = vec![0.0f32; HEAD_DIM];
                layer.attend(&params, &mut fresh, &mut with_fresh);

                assert_eq!(
                    with_shared,
                    with_fresh,
                    "round {round}, head {head}, layer {l} ({}): shared scratch diverged",
                    layer.kind()
                );
            }
        }
    }
}
