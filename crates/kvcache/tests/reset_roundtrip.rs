//! `KvCache::reset` round-trip: reset + re-append must be bit-identical to a
//! freshly constructed cache on **every** backend.
//!
//! Reset is load-bearing for session recycling (a serving slot is reset and
//! handed to the next conversation without reallocating backends); a single
//! counter, group boundary, or stale buffer surviving a reset would silently
//! corrupt the next conversation's attention. "Bit-identical" here means:
//! same length/memory accounting and bit-equal attention outputs for every
//! head, with and without ALiBi, against a never-reset twin.

use std::sync::Arc;

use million_kvcache::{
    AttendParams, AttendScratch, CacheLayout, FullPrecisionCache, KiviCache, KiviConfig, KvCache,
    KvQuantCache, KvQuantConfig, PqCacheConfig, PqKvCache,
};
use million_quant::pq::{PqCodebook, PqConfig, PqTrainOptions};
use million_store::Block;
use million_tensor::init::{normal_matrix, seeded_rng};
use million_tensor::Matrix;

const HEAD_DIM: usize = 16;
const HEADS: usize = 2;

fn layout() -> CacheLayout {
    CacheLayout::new(HEADS, HEAD_DIM)
}

fn random_kv(seed: u64, tokens: usize) -> (Matrix, Matrix) {
    let mut rng = seeded_rng(seed);
    (
        normal_matrix(&mut rng, tokens, layout().width(), 0.0, 1.0),
        normal_matrix(&mut rng, tokens, layout().width(), 0.0, 1.0),
    )
}

/// Appends the fixture history in two uneven chunks (exercising incremental
/// append paths: group boundaries, residual windows, staged encodes).
fn fill(cache: &mut dyn KvCache, seed: u64) {
    let (k, v) = random_kv(seed, 41);
    cache.append(&k.slice_rows(0..17), &v.slice_rows(0..17));
    cache.append(&k.slice_rows(17..41), &v.slice_rows(17..41));
}

fn attend_bits(cache: &dyn KvCache, scratch: &mut AttendScratch) -> Vec<u32> {
    let query: Vec<f32> = (0..HEAD_DIM).map(|i| (i as f32 * 0.27).sin()).collect();
    let cur_k: Vec<f32> = (0..HEAD_DIM).map(|i| 0.03 * i as f32).collect();
    let cur_v: Vec<f32> = (0..HEAD_DIM).map(|i| 0.9 - 0.05 * i as f32).collect();
    let mut out = vec![0.0f32; HEAD_DIM];
    let mut bits = Vec::new();
    for head in 0..HEADS {
        for alibi in [None, Some(0.4f32)] {
            let mut params =
                AttendParams::new(head, &query, 1.0 / (HEAD_DIM as f32).sqrt(), cache.len())
                    .with_current(&cur_k, &cur_v);
            if let Some(slope) = alibi {
                params = params.with_alibi(slope);
            }
            cache.attend(&params, scratch, &mut out);
            bits.extend(out.iter().map(|x| x.to_bits()));
        }
    }
    bits
}

/// The round-trip contract, checked for one backend pair: `recycled` is
/// filled, reset, and refilled; `fresh` is filled once. Both must agree bit
/// for bit.
fn assert_reset_roundtrip(recycled: &mut dyn KvCache, fresh: &mut dyn KvCache, label: &str) {
    // First conversation, with *different* content so any state leaking
    // through reset has something to leak.
    fill(recycled, 1001);
    assert!(!recycled.is_empty());
    recycled.reset();
    assert_eq!(recycled.len(), 0, "{label}: reset must empty the cache");
    assert!(recycled.is_empty(), "{label}");
    assert_eq!(
        recycled.memory_bytes(),
        0,
        "{label}: reset must release token storage accounting"
    );

    // Second conversation: identical to the fresh cache's only conversation.
    fill(recycled, 2002);
    fill(fresh, 2002);
    assert_eq!(recycled.len(), fresh.len(), "{label}");
    assert_eq!(recycled.memory_bytes(), fresh.memory_bytes(), "{label}");

    let mut scratch = AttendScratch::new();
    let recycled_bits = attend_bits(recycled, &mut scratch);
    let fresh_bits = attend_bits(fresh, &mut scratch);
    assert_eq!(
        recycled_bits, fresh_bits,
        "{label}: reset + re-append diverged from a fresh cache"
    );

    // Reset is idempotent and reusable more than once.
    recycled.reset();
    recycled.reset();
    assert_eq!(recycled.len(), 0, "{label}");
}

#[test]
fn full_precision_reset_roundtrip() {
    let mut recycled = FullPrecisionCache::new(layout());
    let mut fresh = FullPrecisionCache::new(layout());
    assert_reset_roundtrip(&mut recycled, &mut fresh, "fp16");
}

#[test]
fn kivi_reset_roundtrip() {
    // group_size chosen so the fixture leaves both full groups and a partial
    // residual group behind.
    let config = KiviConfig {
        bits: 4,
        group_size: 12,
    };
    let mut recycled = KiviCache::new(layout(), config);
    let mut fresh = KiviCache::new(layout(), config);
    assert_reset_roundtrip(&mut recycled, &mut fresh, "kivi");
}

#[test]
fn kvquant_reset_roundtrip() {
    let mut recycled = KvQuantCache::new(layout(), KvQuantConfig::default());
    let mut fresh = KvQuantCache::new(layout(), KvQuantConfig::default());
    assert_reset_roundtrip(&mut recycled, &mut fresh, "kvquant");
}

fn pq_pair(residual: usize) -> (PqKvCache, PqKvCache) {
    let mut rng = seeded_rng(5);
    let samples = normal_matrix(&mut rng, 500, HEAD_DIM, 0.0, 1.0);
    let config = PqConfig::new(8, 6).unwrap();
    let key =
        Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), 0).unwrap());
    let value =
        Arc::new(PqCodebook::train(&config, &samples, &PqTrainOptions::default(), 1).unwrap());
    (
        PqKvCache::new(
            layout(),
            PqCacheConfig::new(key.clone(), value.clone(), residual),
        ),
        PqKvCache::new(layout(), PqCacheConfig::new(key, value, residual)),
    )
}

#[test]
fn pq_reset_roundtrip() {
    for residual in [0usize, 8] {
        let (mut recycled, mut fresh) = pq_pair(residual);
        assert_reset_roundtrip(
            &mut recycled,
            &mut fresh,
            &format!("million-pq r{residual}"),
        );
    }
}

#[test]
fn pq_reset_drops_shared_blocks_too() {
    // A recycled serving slot may carry another conversation's shared chain;
    // reset must detach it (the session layer releases the store refs).
    let (mut recycled, mut fresh) = pq_pair(0);
    fill(&mut recycled, 1001);
    let (keys, values) = recycled.take_private_front(16);
    recycled.attach_shared_block(Arc::new(Block::new(1, HEADS, keys, values)));
    assert_eq!(recycled.shared_tokens(), 16);
    recycled.reset();
    assert_eq!(recycled.shared_tokens(), 0);
    assert!(recycled.shared_blocks().is_empty());

    fill(&mut recycled, 2002);
    fill(&mut fresh, 2002);
    let mut scratch = AttendScratch::new();
    assert_eq!(
        attend_bits(&recycled, &mut scratch),
        attend_bits(&fresh, &mut scratch)
    );
}
