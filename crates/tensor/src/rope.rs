//! Rotary positional embeddings (RoPE) with optional linear position scaling.
//!
//! Llama-2, Longchat and Yarn-Llama in Table I of the paper all use RoPE;
//! Longchat/Yarn extend the context window by interpolating positions, which
//! is modelled here with a `position_scale` factor (positions are divided by
//! the factor before computing the rotation angles).

use serde::{Deserialize, Serialize};

/// Precomputed rotary embedding applier for one head dimension.
///
/// # Example
///
/// ```
/// use million_tensor::Rope;
///
/// let rope = Rope::new(8, 10_000.0, 1.0);
/// let mut q = vec![1.0_f32; 8];
/// let original = q.clone();
/// rope.apply(&mut q, 0);
/// // position 0 is the identity rotation
/// assert_eq!(q, original);
/// rope.apply(&mut q, 5);
/// assert_ne!(q, original);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rope {
    head_dim: usize,
    inv_freq: Vec<f32>,
    position_scale: f32,
}

impl Rope {
    /// Creates a RoPE applier for vectors of length `head_dim` (must be even)
    /// with the given base `theta` (10 000 for Llama-2) and position scaling
    /// factor (1.0 = no scaling; >1.0 compresses positions as in
    /// Longchat/Yarn-style context extension).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is odd or zero, or if `position_scale <= 0`.
    pub fn new(head_dim: usize, theta: f32, position_scale: f32) -> Self {
        assert!(
            head_dim > 0 && head_dim.is_multiple_of(2),
            "head_dim must be even"
        );
        assert!(position_scale > 0.0, "position_scale must be positive");
        let half = head_dim / 2;
        let inv_freq = (0..half)
            .map(|i| 1.0 / theta.powf(2.0 * i as f32 / head_dim as f32))
            .collect();
        Self {
            head_dim,
            inv_freq,
            position_scale,
        }
    }

    /// Head dimension this applier was built for.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Applies the rotation for absolute position `pos` to `x` in place.
    ///
    /// The layout follows the "half-split" convention used by Llama: element
    /// `i` pairs with element `i + head_dim/2`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != head_dim`.
    pub fn apply(&self, x: &mut [f32], pos: usize) {
        assert_eq!(x.len(), self.head_dim, "rope input length mismatch");
        let half = self.head_dim / 2;
        let p = pos as f32 / self.position_scale;
        for i in 0..half {
            let angle = p * self.inv_freq[i];
            let (sin, cos) = angle.sin_cos();
            let a = x[i];
            let b = x[i + half];
            x[i] = a * cos - b * sin;
            x[i + half] = a * sin + b * cos;
        }
    }

    /// Applies the rotation to every row of a `[tokens, head_dim]` block where
    /// row `i` sits at absolute position `start_pos + i`.
    pub fn apply_block(&self, rows: &mut [f32], start_pos: usize) {
        assert_eq!(
            rows.len() % self.head_dim,
            0,
            "block not a multiple of head_dim"
        );
        for (i, row) in rows.chunks_exact_mut(self.head_dim).enumerate() {
            self.apply(row, start_pos + i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::dot;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "head_dim must be even")]
    fn odd_head_dim_panics() {
        let _ = Rope::new(7, 10_000.0, 1.0);
    }

    #[test]
    fn position_zero_is_identity() {
        let rope = Rope::new(16, 10_000.0, 1.0);
        let mut x: Vec<f32> = (0..16).map(|v| v as f32).collect();
        let orig = x.clone();
        rope.apply(&mut x, 0);
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rotation_preserves_norm() {
        let rope = Rope::new(8, 10_000.0, 1.0);
        let mut x = vec![1.0, -2.0, 0.5, 3.0, -1.0, 0.25, 2.0, -0.5];
        let norm_before: f32 = x.iter().map(|v| v * v).sum();
        rope.apply(&mut x, 123);
        let norm_after: f32 = x.iter().map(|v| v * v).sum();
        assert!((norm_before - norm_after).abs() < 1e-4);
    }

    #[test]
    fn dot_product_depends_only_on_relative_position() {
        // <rope(q, m), rope(k, n)> must only depend on m - n.
        let rope = Rope::new(8, 10_000.0, 1.0);
        let q = vec![0.3, -0.7, 1.2, 0.1, -0.4, 0.9, 0.2, -1.1];
        let k = vec![1.0, 0.5, -0.2, 0.8, 0.3, -0.6, 0.4, 0.7];

        let score = |m: usize, n: usize| {
            let mut qq = q.clone();
            let mut kk = k.clone();
            rope.apply(&mut qq, m);
            rope.apply(&mut kk, n);
            dot(&qq, &kk)
        };
        assert!((score(10, 4) - score(16, 10)).abs() < 1e-3);
        assert!((score(5, 5) - score(42, 42)).abs() < 1e-3);
    }

    #[test]
    fn position_scaling_compresses_angles() {
        let base = Rope::new(8, 10_000.0, 1.0);
        let scaled = Rope::new(8, 10_000.0, 4.0);
        let x = vec![1.0; 8];
        let mut a = x.clone();
        let mut b = x.clone();
        base.apply(&mut a, 4);
        scaled.apply(&mut b, 16); // 16 / 4 == 4
        for (p, q) in a.iter().zip(b.iter()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn apply_block_matches_per_row() {
        let rope = Rope::new(4, 10_000.0, 1.0);
        let mut block = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut rows = block.clone();
        rope.apply_block(&mut block, 7);
        rope.apply(&mut rows[0..4], 7);
        rope.apply(&mut rows[4..8], 8);
        for (a, b) in block.iter().zip(rows.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    proptest! {
        #[test]
        fn norm_preserved_for_random_vectors(
            pos in 0usize..4096,
            v in proptest::collection::vec(-5.0f32..5.0, 16),
        ) {
            let rope = Rope::new(16, 10_000.0, 1.0);
            let mut x = v.clone();
            rope.apply(&mut x, pos);
            let before: f32 = v.iter().map(|a| a * a).sum();
            let after: f32 = x.iter().map(|a| a * a).sum();
            prop_assert!((before - after).abs() < 1e-2 * before.max(1.0));
        }
    }
}
