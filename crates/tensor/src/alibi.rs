//! ALiBi (Attention with Linear Biases) slopes and bias computation.
//!
//! MPT-7B in Table I of the paper uses ALiBi instead of RoPE: attention
//! scores receive a per-head linear penalty proportional to the distance
//! between the query and the key, and no rotation is applied to Q/K.

/// Returns the per-head ALiBi slopes for `n_heads` heads.
///
/// Follows the geometric sequence of the original ALiBi paper: for a power of
/// two the slopes are `2^(-8/n * i)`; otherwise the closest power of two is
/// used and interleaved extra slopes are appended.
///
/// # Example
///
/// ```
/// let slopes = million_tensor::alibi::alibi_slopes(8);
/// assert_eq!(slopes.len(), 8);
/// assert!(slopes[0] > slopes[7]);
/// ```
pub fn alibi_slopes(n_heads: usize) -> Vec<f32> {
    fn power_of_two_slopes(n: usize) -> Vec<f32> {
        let start = 2.0f32.powf(-8.0 / n as f32);
        (0..n).map(|i| start.powi(i as i32 + 1)).collect()
    }

    if n_heads == 0 {
        return Vec::new();
    }
    if n_heads.is_power_of_two() {
        power_of_two_slopes(n_heads)
    } else {
        let closest = n_heads.next_power_of_two() / 2;
        let mut slopes = power_of_two_slopes(closest);
        let extra = power_of_two_slopes(2 * closest);
        slopes.extend(extra.into_iter().step_by(2).take(n_heads - closest));
        slopes
    }
}

/// Bias added to the attention score of head `head` for a query at position
/// `q_pos` attending to a key at position `k_pos`.
///
/// Keys further in the past receive a more negative bias; the current token
/// gets zero bias.
#[inline]
pub fn alibi_bias(slope: f32, q_pos: usize, k_pos: usize) -> f32 {
    debug_assert!(k_pos <= q_pos, "ALiBi is applied causally");
    -slope * (q_pos - k_pos) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_heads_gives_empty() {
        assert!(alibi_slopes(0).is_empty());
    }

    #[test]
    fn power_of_two_heads_are_geometric() {
        let s = alibi_slopes(4);
        assert_eq!(s.len(), 4);
        let ratio = s[1] / s[0];
        assert!((s[2] / s[1] - ratio).abs() < 1e-6);
        assert!((s[3] / s[2] - ratio).abs() < 1e-6);
    }

    #[test]
    fn non_power_of_two_heads_supported() {
        let s = alibi_slopes(6);
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|&x| x > 0.0 && x < 1.0));
    }

    #[test]
    fn slopes_are_monotonically_decreasing_for_power_of_two() {
        let s = alibi_slopes(16);
        for w in s.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn bias_is_zero_for_current_token_and_negative_for_past() {
        assert_eq!(alibi_bias(0.5, 10, 10), 0.0);
        assert!(alibi_bias(0.5, 10, 3) < 0.0);
        assert!((alibi_bias(0.25, 8, 4) + 1.0).abs() < 1e-6);
    }
}
