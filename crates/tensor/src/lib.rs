//! Dense linear-algebra substrate for the MILLION reproduction.
//!
//! This crate provides the small set of numerical building blocks that the
//! transformer substrate ([`million-model`]) and the quantization crates are
//! built on: a row-major [`Matrix`] type with (optionally parallel) GEMM,
//! attention-related primitives (softmax, [`OnlineSoftmax`]), normalisation
//! layers, and the three positional-embedding schemes used by the models in
//! Table I of the paper (RoPE, ALiBi, absolute).
//!
//! Everything here is deterministic and CPU-only; GPU kernels from the paper
//! are reproduced algorithmically (same arithmetic, same data layout
//! decisions) and their cost is modelled separately in `million-perfsim`.
//!
//! # Example
//!
//! ```
//! use million_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), (2, 2));
//!
//! let mut row = vec![1.0_f32, 2.0, 3.0];
//! ops::softmax_in_place(&mut row);
//! assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod alibi;
pub mod init;
pub mod matrix;
pub mod online_softmax;
pub mod ops;
pub mod rope;
pub mod view;

pub use matrix::Matrix;
pub use online_softmax::OnlineSoftmax;
pub use rope::Rope;
pub use view::StridedRows;

/// Crate-wide error type for shape and argument validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left-hand operand.
        lhs: (usize, usize),
        /// Shape of the right-hand operand.
        rhs: (usize, usize),
    },
    /// An argument was outside its valid range.
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert!(err.to_string().contains("matmul"));
        let err = TensorError::InvalidArgument("bad".into());
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
