//! Borrowed strided views over row-major activation buffers.
//!
//! Per-head attention kernels read one head's slice of a packed
//! `[tokens, n_heads * head_dim]` activation matrix. The seed prefill path
//! materialised each head with `Matrix::from_fn` copies; a [`StridedRows`]
//! view walks the same rows in place — no copy, no allocation — which is what
//! the tiled prefill kernel iterates over.

use crate::Matrix;

/// A borrowed view of one column band of a row-major `[rows, stride]` buffer:
/// row `t` of the view is `data[t * stride + offset .. t * stride + offset +
/// width]`.
///
/// # Example
///
/// ```
/// use million_tensor::{Matrix, StridedRows};
///
/// // Two tokens, two heads of width 2 packed side by side.
/// let qkv = Matrix::from_vec(2, 4, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
/// let head1 = StridedRows::from_matrix(&qkv, 2, 2);
/// assert_eq!(head1.row(0), &[2.0, 3.0]);
/// assert_eq!(head1.row(1), &[6.0, 7.0]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StridedRows<'a> {
    data: &'a [f32],
    stride: usize,
    offset: usize,
    width: usize,
    rows: usize,
}

impl<'a> StridedRows<'a> {
    /// Creates a view over `data` interpreted as `[data.len() / stride,
    /// stride]`, selecting columns `offset..offset + width` of every row.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero, the band does not fit in a row, or `data`
    /// is not a whole number of rows.
    pub fn new(data: &'a [f32], stride: usize, offset: usize, width: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            offset + width <= stride,
            "column band {offset}..{} exceeds stride {stride}",
            offset + width
        );
        assert!(
            data.len().is_multiple_of(stride),
            "buffer of length {} is not a whole number of {stride}-wide rows",
            data.len()
        );
        Self {
            data,
            stride,
            offset,
            width,
            rows: data.len() / stride,
        }
    }

    /// View of columns `offset..offset + width` of every row of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the band exceeds the matrix width.
    pub fn from_matrix(m: &'a Matrix, offset: usize, width: usize) -> Self {
        Self::new(m.as_slice(), m.cols().max(1), offset, width)
    }

    /// Number of rows in the view.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Width of the column band.
    pub fn width(&self) -> usize {
        self.width
    }

    /// One row of the band.
    ///
    /// # Panics
    ///
    /// Panics if `t >= rows`.
    #[inline]
    pub fn row(&self, t: usize) -> &'a [f32] {
        let base = t * self.stride + self.offset;
        &self.data[base..base + self.width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_selects_band_of_every_row() {
        let m = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as f32);
        let band = StridedRows::from_matrix(&m, 2, 3);
        assert_eq!(band.rows(), 4);
        assert_eq!(band.width(), 3);
        for t in 0..4 {
            assert_eq!(band.row(t), &m.row(t)[2..5]);
        }
    }

    #[test]
    fn full_width_view_matches_rows() {
        let m = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let all = StridedRows::from_matrix(&m, 0, 4);
        for t in 0..3 {
            assert_eq!(all.row(t), m.row(t));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds stride")]
    fn band_outside_row_panics() {
        let m = Matrix::zeros(2, 4);
        let _ = StridedRows::from_matrix(&m, 3, 2);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_buffer_panics() {
        let data = [0.0f32; 7];
        let _ = StridedRows::new(&data, 4, 0, 4);
    }
}
