//! Deterministic weight initialisation helpers.
//!
//! All randomness in the repository flows through seeded [`rand::rngs::StdRng`]
//! instances so every experiment is reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

use crate::Matrix;

/// Creates a seeded RNG. Thin wrapper so downstream crates do not need to
/// depend on `rand` directly for the common case.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a `[rows, cols]` matrix with i.i.d. normal entries.
///
/// # Panics
///
/// Panics if `std` is not finite or negative.
pub fn normal_matrix(rng: &mut StdRng, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
    assert!(std.is_finite() && std >= 0.0, "std must be finite and >= 0");
    let dist = Normal::new(mean, std.max(f32::MIN_POSITIVE)).expect("valid normal");
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Xavier/Glorot-style initialisation for a `[fan_in, fan_out]` projection.
pub fn xavier_matrix(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    normal_matrix(rng, fan_in, fan_out, 0.0, std)
}

/// Scales a set of output channels (columns) of a projection matrix by
/// per-channel factors, used to inject the channel-wise outliers observed in
/// the key cache of real LLMs (Fig. 2 / Fig. 3 of the paper).
///
/// `channel_scales` maps column index to multiplier; columns not present are
/// left untouched.
pub fn scale_channels(weights: &mut Matrix, channel_scales: &[(usize, f32)]) {
    for &(col, factor) in channel_scales {
        if col >= weights.cols() {
            continue;
        }
        for r in 0..weights.rows() {
            let v = weights.get(r, col);
            weights.set(r, col, v * factor);
        }
    }
}

/// Draws `count` distinct channel indices in `0..cols` with log-normal-ish
/// outlier magnitudes in `[min_scale, max_scale]`, mirroring how a handful of
/// key channels in real models carry much larger magnitudes than the rest.
pub fn sample_outlier_channels(
    rng: &mut StdRng,
    cols: usize,
    count: usize,
    min_scale: f32,
    max_scale: f32,
) -> Vec<(usize, f32)> {
    let count = count.min(cols);
    let mut chosen = Vec::with_capacity(count);
    let mut used = vec![false; cols];
    while chosen.len() < count {
        let c = rng.gen_range(0..cols);
        if used[c] {
            continue;
        }
        used[c] = true;
        let t: f32 = rng.gen_range(0.0..1.0);
        // Square the interpolation factor so most outliers are moderate and a
        // few are extreme, matching the long-tailed magnitudes in Fig. 2.
        let scale = min_scale + (max_scale - min_scale) * t * t;
        chosen.push((c, scale));
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = normal_matrix(&mut seeded_rng(7), 4, 4, 0.0, 1.0);
        let b = normal_matrix(&mut seeded_rng(7), 4, 4, 0.0, 1.0);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let a = normal_matrix(&mut seeded_rng(1), 4, 4, 0.0, 1.0);
        let b = normal_matrix(&mut seeded_rng(2), 4, 4, 0.0, 1.0);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn xavier_has_reasonable_scale() {
        let m = xavier_matrix(&mut seeded_rng(3), 256, 256);
        let std = {
            let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
            (m.as_slice()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / m.len() as f32)
                .sqrt()
        };
        let expected = (2.0f32 / 512.0).sqrt();
        assert!((std - expected).abs() < expected * 0.2);
    }

    #[test]
    fn scale_channels_only_touches_selected_columns() {
        let mut m = Matrix::from_fn(2, 3, |_, _| 1.0);
        scale_channels(&mut m, &[(1, 10.0), (99, 5.0)]);
        assert_eq!(m.column(0), vec![1.0, 1.0]);
        assert_eq!(m.column(1), vec![10.0, 10.0]);
        assert_eq!(m.column(2), vec![1.0, 1.0]);
    }

    #[test]
    fn outlier_channels_are_distinct_and_bounded() {
        let mut rng = seeded_rng(11);
        let chans = sample_outlier_channels(&mut rng, 64, 8, 4.0, 20.0);
        assert_eq!(chans.len(), 8);
        let mut seen = std::collections::BTreeSet::new();
        for (c, s) in chans {
            assert!(c < 64);
            assert!((4.0..=20.0).contains(&s));
            assert!(seen.insert(c), "channel {c} repeated");
        }
    }

    #[test]
    fn outlier_count_clamped_to_cols() {
        let mut rng = seeded_rng(5);
        let chans = sample_outlier_channels(&mut rng, 3, 10, 2.0, 4.0);
        assert_eq!(chans.len(), 3);
    }
}
