//! Element-wise and reduction operations used throughout the inference path.

use crate::Matrix;

/// Dot product of two equally sized slices.
///
/// # Panics
///
/// Panics (in debug builds) if the slices have different lengths; in release
/// builds the shorter length is used.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = 0.0f32;
    // Unrolled-by-4 accumulation keeps the compiler's auto-vectoriser happy.
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc += a[j] * b[j] + a[j + 1] * b[j + 1] + a[j + 2] * b[j + 2] + a[j + 3] * b[j + 3];
    }
    for j in chunks * 4..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// Dot product with eight independent partial accumulators.
///
/// [`dot`] folds every product into a single accumulator, which serialises
/// the adds behind each other's latency; this variant keeps eight partial
/// lanes (two SIMD registers after auto-vectorisation) and folds them once
/// at the end. The summation **order differs** from [`dot`], so results are
/// not bit-compatible — use it only on throughput-bound, tolerance-pinned
/// paths (the tiled prefill score loop); established bit-exact paths keep
/// [`dot`].
#[inline]
pub fn dot_wide(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_wide length mismatch");
    let mut lanes = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let j = i * 8;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += a[j + l] * b[j + l];
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for j in chunks * 8..a.len() {
        acc += a[j] * b[j];
    }
    acc
}

/// `y += alpha * x` for equally sized slices.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Branchless `e^x` approximation for throughput-bound softmax tile loops.
///
/// Cephes-style `expf`: split `x = k·ln2 + r` (the round-to-nearest uses the
/// `2^23·1.5` magic-number trick instead of `floor`, so there is no libm
/// call and no branch), evaluate a degree-6 polynomial on the reduced `r`,
/// and scale by `2^k` through the exponent bits. Everything is straight-line
/// element-wise arithmetic, so a loop applying it to a contiguous score tile
/// auto-vectorises — libm `expf` is an opaque scalar call per element.
///
/// Maximum relative error ≈ 2 ulp (~2.4e-7); exactly deterministic. Inputs
/// are clamped to `[-87, 88]`, so `exp_approx(f32::NEG_INFINITY)` is
/// `e^-87 ≈ 1.6e-38` rather than exactly zero — callers that rely on masked
/// `-inf` entries vanishing must tolerate that (a softmax weight of 1e-38 is
/// far below any fidelity tolerance in this workspace).
///
/// Established bit-exact paths ([`crate::OnlineSoftmax::push`],
/// [`softmax_in_place`], the decode kernels) keep libm `exp`; only the
/// tolerance-pinned tiled prefill kernel uses this.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 * 2^23: adding it pushes the value's fraction bits out of the
    // mantissa, rounding to nearest integer; subtracting recovers it.
    const MAGIC: f32 = 12_582_912.0;
    let x = x.clamp(-87.0, 88.0);
    let kf = (x * LOG2E + MAGIC) - MAGIC;
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    let mut p = 1.388_888_9e-3_f32;
    p = p * r + 8.333_334e-3;
    p = p * r + 4.166_666_8e-2;
    p = p * r + 1.666_666_7e-1;
    p = p * r + 5.0e-1;
    p = p * r + 1.0;
    p = p * r + 1.0;
    let two_k = f32::from_bits((((kf as i32) + 127) as u32) << 23);
    p * two_k
}

/// `out = x · m` for a row vector `x` of length `m.rows()`, written into a
/// caller-owned buffer of length `m.cols()`.
///
/// This is the scratch-reuse counterpart of
/// `Matrix::from_row(x).matmul(m)` used by the allocation-free decode step:
/// the accumulation order (and the skip of zero coefficients) matches
/// [`Matrix::matmul`] exactly, so results are bit-identical.
///
/// # Panics
///
/// Panics if `x.len() != m.rows()` or `out.len() != m.cols()`.
pub fn vec_matmul_into(x: &[f32], m: &Matrix, out: &mut [f32]) {
    assert_eq!(
        x.len(),
        m.rows(),
        "vec_matmul_into inner dimension mismatch"
    );
    assert_eq!(
        out.len(),
        m.cols(),
        "vec_matmul_into output length mismatch"
    );
    out.iter_mut().for_each(|o| *o = 0.0);
    let n = m.cols();
    let data = m.as_slice();
    for (ki, &a) in x.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        let b_row = &data[ki * n..(ki + 1) * n];
        for (o, &b) in out.iter_mut().zip(b_row.iter()) {
            *o += a * b;
        }
    }
}

/// `out[r] = x · m.row(r)` — the row vector times `mᵀ`, written into a
/// caller-owned buffer of length `m.rows()`.
///
/// The scratch-reuse counterpart of
/// `Matrix::from_row(x).matmul_transposed(m)` (used for logits over the tied
/// embedding), with identical per-entry arithmetic.
///
/// # Panics
///
/// Panics if `x.len() != m.cols()` or `out.len() != m.rows()`.
pub fn vec_matmul_transposed_into(x: &[f32], m: &Matrix, out: &mut [f32]) {
    assert_eq!(
        x.len(),
        m.cols(),
        "vec_matmul_transposed_into inner dimension mismatch"
    );
    assert_eq!(
        out.len(),
        m.rows(),
        "vec_matmul_transposed_into output length mismatch"
    );
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(x, m.row(r));
    }
}

/// Squared Euclidean distance between two equally sized slices.
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "squared_distance length mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Numerically stable in-place softmax.
///
/// Empty slices are left untouched.
pub fn softmax_in_place(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for v in values.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically stable log-softmax, returning a new vector.
pub fn log_softmax(values: &[f32]) -> Vec<f32> {
    if values.is_empty() {
        return Vec::new();
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = values.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
    values.iter().map(|v| v - max - log_sum).collect()
}

/// Index of the maximum element. Returns 0 for an empty slice.
pub fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// SiLU (swish) activation applied in place.
pub fn silu_in_place(values: &mut [f32]) {
    for v in values.iter_mut() {
        *v = *v / (1.0 + (-*v).exp());
    }
}

/// Tanh-approximated GELU activation applied in place.
pub fn gelu_in_place(values: &mut [f32]) {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    for v in values.iter_mut() {
        let x = *v;
        let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x);
        *v = 0.5 * x * (1.0 + inner.tanh());
    }
}

/// RMS normalisation of a single vector with learned gain `weight`.
///
/// # Panics
///
/// Panics if `x.len() != weight.len()`.
pub fn rms_norm(x: &mut [f32], weight: &[f32], eps: f32) {
    assert_eq!(x.len(), weight.len(), "rms_norm length mismatch");
    if x.is_empty() {
        return;
    }
    let mean_sq: f32 = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let inv = 1.0 / (mean_sq + eps).sqrt();
    for (v, w) in x.iter_mut().zip(weight.iter()) {
        *v = *v * inv * w;
    }
}

/// Layer normalisation of a single vector with learned gain and bias.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn layer_norm(x: &mut [f32], weight: &[f32], bias: &[f32], eps: f32) {
    assert_eq!(x.len(), weight.len(), "layer_norm weight length mismatch");
    assert_eq!(x.len(), bias.len(), "layer_norm bias length mismatch");
    if x.is_empty() {
        return;
    }
    let n = x.len() as f32;
    let mean: f32 = x.iter().sum::<f32>() / n;
    let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + eps).sqrt();
    for ((v, w), b) in x.iter_mut().zip(weight.iter()).zip(bias.iter()) {
        *v = (*v - mean) * inv * w + b;
    }
}

/// Applies a causal mask in place to a `[q_len, k_len]` score matrix where the
/// last query row attends to all `k_len` keys.
///
/// Entry `(i, j)` is masked (set to `-inf`) when key `j` is in the future of
/// query `i`, i.e. `j > offset + i` with `offset = k_len - q_len`.
///
/// # Panics
///
/// Panics if `k_len < q_len`.
pub fn apply_causal_mask(scores: &mut Matrix) {
    let (q_len, k_len) = scores.shape();
    assert!(k_len >= q_len, "causal mask requires k_len >= q_len");
    let offset = k_len - q_len;
    for i in 0..q_len {
        let row = scores.row_mut(i);
        for (j, s) in row.iter_mut().enumerate() {
            if j > offset + i {
                *s = f32::NEG_INFINITY;
            }
        }
    }
}

/// Per-channel standard deviation of a `[tokens, channels]` matrix.
pub fn channel_std(data: &Matrix) -> Vec<f32> {
    let (rows, cols) = data.shape();
    if rows == 0 {
        return vec![0.0; cols];
    }
    let mut mean = vec![0.0f64; cols];
    for row in data.iter_rows() {
        for (m, &v) in mean.iter_mut().zip(row.iter()) {
            *m += v as f64;
        }
    }
    for m in &mut mean {
        *m /= rows as f64;
    }
    let mut var = vec![0.0f64; cols];
    for row in data.iter_rows() {
        for ((v, &x), m) in var.iter_mut().zip(row.iter()).zip(mean.iter()) {
            let d = x as f64 - *m;
            *v += d * d;
        }
    }
    var.iter()
        .map(|v| (v / rows as f64).sqrt() as f32)
        .collect()
}

/// Per-channel absolute maximum of a `[tokens, channels]` matrix.
pub fn channel_abs_max(data: &Matrix) -> Vec<f32> {
    let cols = data.cols();
    let mut out = vec![0.0f32; cols];
    for row in data.iter_rows() {
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o = o.max(v.abs());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..11).map(|v| v as f32).collect();
        let b: Vec<f32> = (0..11).map(|v| (v * 2) as f32).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut v);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_handles_extreme_values() {
        let mut v = vec![1e4, -1e4, 0.0];
        softmax_in_place(&mut v);
        assert!(v.iter().all(|x| x.is_finite()));
        assert!((v[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_in_place(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let v = vec![0.5, -1.0, 2.0, 0.0];
        let ls = log_softmax(&v);
        let mut s = v.clone();
        softmax_in_place(&mut s);
        for (l, p) in ls.iter().zip(s.iter()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn exp_approx_matches_libm_within_ulps() {
        // The attention range: scores relative to a running max are <= 0,
        // but cover positives too for generality.
        for i in -1700..=1700 {
            let x = i as f32 * 0.05;
            let approx = exp_approx(x);
            let exact = x.exp();
            let rel = (approx - exact).abs() / exact.max(f32::MIN_POSITIVE);
            assert!(rel < 1e-6, "x={x}: approx {approx} vs libm {exact}");
        }
        assert_eq!(exp_approx(0.0), 1.0);
        // Clamped tails: deeply negative inputs (and -inf) floor at e^-87.
        let floor = exp_approx(f32::NEG_INFINITY);
        assert!(floor > 0.0 && floor < 2e-38);
        assert_eq!(exp_approx(-1000.0), floor);
        assert!(exp_approx(f32::INFINITY).is_finite()); // clamped to e^88
    }

    #[test]
    fn dot_wide_matches_dot_within_rounding() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 33, 128] {
            let a: Vec<f32> = (0..len)
                .map(|v| ((v * 7) % 13) as f32 * 0.3 - 1.5)
                .collect();
            let b: Vec<f32> = (0..len)
                .map(|v| ((v * 5) % 11) as f32 * 0.25 - 1.0)
                .collect();
            let narrow = dot(&a, &b);
            let wide = dot_wide(&a, &b);
            assert!(
                (narrow - wide).abs() <= 1e-4 * narrow.abs().max(1.0),
                "len {len}: {narrow} vs {wide}"
            );
        }
    }

    #[test]
    fn vec_matmul_into_matches_matrix_matmul() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let x = vec![1.0f32, 0.0, -2.0, 3.0];
        let mut out = vec![9.0f32; 3];
        vec_matmul_into(&x, &m, &mut out);
        let expected = Matrix::from_row(&x).matmul(&m);
        assert_eq!(out.as_slice(), expected.row(0));
    }

    #[test]
    fn vec_matmul_transposed_into_matches_matrix_path() {
        let m = Matrix::from_fn(5, 4, |r, c| ((r * 7 + c) % 5) as f32 - 2.0);
        let x = vec![0.5f32, -1.0, 2.0, 0.25];
        let mut out = vec![0.0f32; 5];
        vec_matmul_transposed_into(&x, &m, &mut out);
        let expected = Matrix::from_row(&x).matmul_transposed(&m);
        assert_eq!(out.as_slice(), expected.row(0));
    }

    #[test]
    fn argmax_picks_largest() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn rms_norm_produces_unit_rms() {
        let mut x = vec![3.0, -4.0, 12.0, 5.0];
        let w = vec![1.0; 4];
        rms_norm(&mut x, &w, 1e-6);
        let rms: f32 = (x.iter().map(|v| v * v).sum::<f32>() / 4.0).sqrt();
        assert!((rms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let mut x = vec![1.0, 2.0, 3.0, 4.0];
        let w = vec![1.0; 4];
        let b = vec![0.0; 4];
        layer_norm(&mut x, &w, &b, 1e-6);
        let mean: f32 = x.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn silu_and_gelu_fixed_points() {
        let mut v = vec![0.0f32];
        silu_in_place(&mut v);
        assert_eq!(v[0], 0.0);
        let mut v = vec![0.0f32];
        gelu_in_place(&mut v);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut scores = Matrix::from_fn(2, 4, |_, _| 1.0);
        apply_causal_mask(&mut scores);
        // first query row (global position 2) can see keys 0..=2
        assert!(scores.get(0, 3).is_infinite());
        assert!(scores.get(0, 2).is_finite());
        // second query row (global position 3) sees everything
        assert!(scores.get(1, 3).is_finite());
    }

    #[test]
    fn channel_statistics() {
        let m = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, 2.0]).unwrap();
        let std = channel_std(&m);
        let amax = channel_abs_max(&m);
        assert!((std[0] - 1.0).abs() < 1e-5);
        assert!((std[1] - 2.0).abs() < 1e-5);
        assert_eq!(amax, vec![3.0, 2.0]);
    }

    proptest! {
        #[test]
        fn softmax_is_probability_distribution(v in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            let mut s = v.clone();
            softmax_in_place(&mut s);
            let sum: f32 = s.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }

        #[test]
        fn dot_is_commutative(a in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let b: Vec<f32> = a.iter().rev().copied().collect();
            prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-3);
        }

        #[test]
        fn squared_distance_nonnegative(a in proptest::collection::vec(-5.0f32..5.0, 1..16)) {
            let b: Vec<f32> = a.iter().map(|x| x + 1.0).collect();
            prop_assert!(squared_distance(&a, &b) >= 0.0);
            prop_assert!(squared_distance(&a, &a) < 1e-9);
        }
    }
}
