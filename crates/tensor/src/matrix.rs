//! Row-major `f32` matrix with the handful of BLAS-like operations the
//! transformer substrate needs.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::TensorError;

/// A dense, row-major matrix of `f32` values.
///
/// The matrix is deliberately simple: it owns a flat `Vec<f32>` and exposes
/// only the operations used by the inference engine (GEMM, transposed GEMM,
/// row views, element-wise helpers). Parallelism is applied across rows via
/// rayon once the problem size crosses a small threshold.
///
/// # Example
///
/// ```
/// use million_tensor::Matrix;
///
/// let identity = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
/// let x = Matrix::from_vec(3, 3, (0..9).map(|v| v as f32).collect()).unwrap();
/// let y = x.matmul(&identity);
/// assert_eq!(x.as_slice(), y.as_slice());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Problem sizes (rows * cols) below this stay single-threaded.
const PAR_THRESHOLD: usize = 64 * 64;

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a closure evaluated at every `(row, col)` index.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidArgument(format!(
                "buffer of length {} cannot back a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a single-row matrix from a slice.
    pub fn from_row(row: &[f32]) -> Self {
        Self {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies one column into a fresh vector.
    ///
    /// Hot paths should prefer [`Matrix::column_iter`] (no materialisation)
    /// or [`Matrix::column_into`] (caller-owned buffer): this variant
    /// allocates a new `Vec` on every call.
    pub fn column(&self, col: usize) -> Vec<f32> {
        self.column_iter(col).collect()
    }

    /// Strided iterator over one column, without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols` (on a non-empty matrix).
    #[inline]
    pub fn column_iter(&self, col: usize) -> impl ExactSizeIterator<Item = f32> + '_ {
        assert!(
            col < self.cols || self.rows == 0,
            "column index out of bounds"
        );
        self.data
            .iter()
            .skip(col)
            .step_by(self.cols.max(1))
            .copied()
    }

    /// Copies one column into a caller-provided buffer of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= cols` or `out.len() != rows`.
    pub fn column_into(&self, col: usize, out: &mut [f32]) {
        assert!(col < self.cols, "column index out of bounds");
        assert_eq!(out.len(), self.rows, "column buffer length mismatch");
        for (slot, value) in out.iter_mut().zip(self.column_iter(col)) {
            *slot = value;
        }
    }

    /// Reshapes the matrix in place to `rows x cols`, zero-filling the
    /// contents. The backing allocation is kept whenever its capacity
    /// suffices — the buffer-reuse counterpart of [`Matrix::zeros`] used by
    /// scratch owners (no allocation once the buffer has grown to the
    /// largest shape seen).
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns a new matrix containing rows `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(range.end <= self.rows, "row range out of bounds");
        Matrix {
            rows: range.len(),
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }

    /// Appends the rows of `other` below `self`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ.
    pub fn append_rows(&mut self, other: &Matrix) -> Result<(), TensorError> {
        if self.cols != other.cols && !self.is_empty() {
            return Err(TensorError::ShapeMismatch {
                op: "append_rows",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if self.is_empty() {
            self.cols = other.cols;
        }
        self.data.extend_from_slice(&other.data);
        self.rows += other.rows;
        Ok(())
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Dense GEMM: `self (m x k) * other (k x n) -> (m x n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree. Use [`Matrix::try_matmul`]
    /// for a fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other).expect("matmul shape mismatch")
    }

    /// Fallible dense GEMM.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let k = self.cols;
        let n = other.cols;
        let compute_row = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (ki, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[ki * n..(ki + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        };
        if self.rows * other.cols * k >= PAR_THRESHOLD * 8 {
            out.data.par_chunks_mut(n).enumerate().for_each(compute_row);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(compute_row);
        }
        Ok(out)
    }

    /// GEMM with the right-hand side transposed: `self (m x k) * other^T` where
    /// `other` is `(n x k)`, producing `(m x n)`.
    ///
    /// This is the layout used for attention scores (`Q * K^T`) because keys
    /// are stored row-per-token.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transposed(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transposed requires equal inner dimensions"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        let k = self.cols;
        let n = other.rows;
        let compute_row = |(r, out_row): (usize, &mut [f32])| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (c, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[c * k..(c + 1) * k];
                *o = crate::ops::dot(a_row, b_row);
            }
        };
        if self.rows * n * k >= PAR_THRESHOLD * 8 {
            out.data.par_chunks_mut(n).enumerate().for_each(compute_row);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(compute_row);
        }
        out
    }

    /// Element-wise addition of a broadcast row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length must equal cols");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (x, b) in row.iter_mut().zip(bias.iter()) {
                *x += b;
            }
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling of every element.
    pub fn scale(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Mean of `(self - other)^2` over all elements.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "mse shape mismatch");
        if self.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let d = (*a - *b) as f64;
                d * d
            })
            .sum();
        sum / self.data.len() as f64
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl FromIterator<Vec<f32>> for Matrix {
    /// Builds a matrix from row vectors. All rows must have equal length;
    /// otherwise the constructor panics.
    fn from_iter<T: IntoIterator<Item = Vec<f32>>>(iter: T) -> Self {
        let mut rows = 0;
        let mut cols = 0;
        let mut data = Vec::new();
        for row in iter {
            if rows == 0 {
                cols = row.len();
            }
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(&row);
            rows += 1;
        }
        Matrix { rows, cols, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_right_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn try_matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_transposed_equals_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Matrix::from_fn(5, 4, |r, c| (r * c) as f32 * 0.25 - 1.0);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transposed(&b);
        for (x, y) in via_t.as_slice().iter().zip(direct.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn append_rows_grows_matrix() {
        let mut a = Matrix::zeros(0, 0);
        let b = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        a.append_rows(&b).unwrap();
        a.append_rows(&b).unwrap();
        assert_eq!(a.shape(), (4, 3));
        assert_eq!(a.row(3), b.row(1));
    }

    #[test]
    fn append_rows_rejects_mismatched_cols() {
        let mut a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(a.append_rows(&b).is_err());
    }

    #[test]
    fn resize_zeroed_reuses_capacity_and_zero_fills() {
        let mut m = Matrix::from_fn(4, 4, |_, _| 7.0);
        let ptr = m.as_slice().as_ptr();
        m.resize_zeroed(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        // Shrinking reuses the original allocation.
        assert_eq!(m.as_slice().as_ptr(), ptr);
        m.resize_zeroed(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn slice_rows_returns_copy() {
        let m = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let s = m.slice_rows(1..3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), m.row(1));
    }

    #[test]
    fn add_row_bias_and_scale() {
        let mut m = Matrix::from_fn(2, 2, |_, _| 1.0);
        m.add_row_bias(&[1.0, 2.0]);
        m.scale(2.0);
        assert_eq!(m.as_slice(), &[4.0, 6.0, 4.0, 6.0]);
    }

    #[test]
    fn mse_and_norm() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        let b = Matrix::from_fn(2, 2, |_, _| 3.0);
        assert!((a.mse(&b) - 4.0).abs() < 1e-9);
        assert!((a.frobenius_norm() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn from_iterator_of_rows() {
        let m: Matrix = vec![vec![1.0, 2.0], vec![3.0, 4.0]].into_iter().collect();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn column_extracts_values() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(m.column(1), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn column_iter_and_column_into_match_column() {
        let m = Matrix::from_fn(5, 3, |r, c| (r * 7 + c * 3) as f32 - 4.0);
        for c in 0..3 {
            let owned = m.column(c);
            let iterated: Vec<f32> = m.column_iter(c).collect();
            assert_eq!(iterated, owned);
            assert_eq!(m.column_iter(c).len(), 5);
            let mut buf = vec![0.0f32; 5];
            m.column_into(c, &mut buf);
            assert_eq!(buf, owned);
        }
    }

    #[test]
    #[should_panic(expected = "column buffer length mismatch")]
    fn column_into_rejects_wrong_buffer() {
        let m = Matrix::zeros(3, 2);
        let mut buf = vec![0.0f32; 2];
        m.column_into(0, &mut buf);
    }

    proptest! {
        #[test]
        fn matmul_identity_is_noop(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let m = Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 17 + seed as usize) % 13) as f32 - 6.0);
            let eye = Matrix::from_fn(cols, cols, |r, c| if r == c { 1.0 } else { 0.0 });
            let out = m.matmul(&eye);
            prop_assert_eq!(out.as_slice(), m.as_slice());
        }

        #[test]
        fn transpose_twice_is_identity(rows in 1usize..8, cols in 1usize..8) {
            let m = Matrix::from_fn(rows, cols, |r, c| (r * cols + c) as f32);
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn parallel_and_serial_matmul_agree(n in 1usize..5) {
            // Exercise both code paths by scaling problem size.
            let big = 70;
            let a = Matrix::from_fn(big, big, |r, c| ((r + c * n) % 7) as f32 * 0.5 - 1.0);
            let b = Matrix::from_fn(big, big, |r, c| ((r * 3 + c) % 5) as f32 * 0.25);
            let small_a = a.slice_rows(0..4);
            let full = a.matmul(&b);
            let partial = small_a.matmul(&b);
            for r in 0..4 {
                for c in 0..big {
                    prop_assert!((full.get(r, c) - partial.get(r, c)).abs() < 1e-4);
                }
            }
        }
    }
}
