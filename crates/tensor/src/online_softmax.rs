//! Online (streaming) softmax accumulator.
//!
//! The MILLION decode path computes attention in two segments — the
//! quantized history and the full-precision recent window (including the
//! current token) — and merges them with an online softmax exactly as in
//! Eq. (7) of the paper. The accumulator here is the flash-decoding style
//! `(max, sum, weighted value)` triple that allows segments to be processed
//! in any order without materialising the full score vector.

/// Streaming softmax-weighted-average accumulator.
///
/// Feeding `(score, value)` pairs (or whole segments) produces the same
/// result as computing `softmax(scores) @ values` over the concatenation of
/// everything fed, up to floating-point rounding.
///
/// # Example
///
/// ```
/// use million_tensor::OnlineSoftmax;
///
/// let values = [[1.0_f32, 0.0], [0.0, 1.0]];
/// let scores = [0.3_f32, -0.2];
///
/// // Reference: full softmax.
/// let mut probs = scores.to_vec();
/// million_tensor::ops::softmax_in_place(&mut probs);
/// let expected = [
///     probs[0] * values[0][0] + probs[1] * values[1][0],
///     probs[0] * values[0][1] + probs[1] * values[1][1],
/// ];
///
/// // Streaming: one token at a time.
/// let mut acc = OnlineSoftmax::new(2);
/// acc.push(scores[0], &values[0]);
/// acc.push(scores[1], &values[1]);
/// let out = acc.finish();
/// assert!((out[0] - expected[0]).abs() < 1e-6);
/// assert!((out[1] - expected[1]).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineSoftmax {
    max_score: f32,
    sum_exp: f32,
    acc: Vec<f32>,
}

impl OnlineSoftmax {
    /// Creates an accumulator producing vectors of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            max_score: f32::NEG_INFINITY,
            sum_exp: 0.0,
            acc: vec![0.0; dim],
        }
    }

    /// Clears the accumulator for a new reduction of dimension `dim`,
    /// reusing the existing buffer (no allocation once the buffer has grown
    /// to the largest `dim` seen). This is the scratch-reuse counterpart of
    /// [`OnlineSoftmax::new`] used by the decode hot path.
    pub fn reset(&mut self, dim: usize) {
        self.max_score = f32::NEG_INFINITY;
        self.sum_exp = 0.0;
        self.acc.resize(dim, 0.0);
        self.acc.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.acc.len()
    }

    /// Returns `true` if nothing has been accumulated yet.
    pub fn is_empty(&self) -> bool {
        self.sum_exp == 0.0
    }

    /// Current running maximum score (`-inf` when empty).
    pub fn max_score(&self) -> f32 {
        self.max_score
    }

    /// Current running sum of exponentials (relative to [`Self::max_score`]).
    pub fn sum_exp(&self) -> f32 {
        self.sum_exp
    }

    /// Adds a single `(score, value)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `value.len() != self.dim()`.
    // analyze: no-alloc
    pub fn push(&mut self, score: f32, value: &[f32]) {
        assert_eq!(value.len(), self.acc.len(), "value dimension mismatch");
        if score == f32::NEG_INFINITY {
            return;
        }
        if score > self.max_score {
            let rescale = if self.max_score == f32::NEG_INFINITY {
                0.0
            } else {
                (self.max_score - score).exp()
            };
            self.sum_exp *= rescale;
            for a in &mut self.acc {
                *a *= rescale;
            }
            self.max_score = score;
        }
        let w = (score - self.max_score).exp();
        self.sum_exp += w;
        crate::ops::axpy(w, value, &mut self.acc);
    }

    /// Pushes one tile of `(score, value-row)` pairs in a single batch — the
    /// flash-attention inner step used by the tiled prefill kernel. `values`
    /// holds the tile's value rows contiguous (`[scores.len(), dim]`
    /// row-major, e.g. a staged value tile); `scores` is consumed in place
    /// (overwritten with the softmax weights).
    ///
    /// The tile's maximum triggers at most one rescale of the running state.
    /// The exponentials are then batched into one pass of their own — a libm
    /// `exp` call clobbers every SIMD register, so interleaving it with the
    /// wide value accumulation would spill the accumulator around every
    /// call — and the weighted value rows are folded in a second, pure axpy
    /// pass over a stack-resident accumulator. Equivalent to pushing each
    /// pair through [`Self::push`] up to floating-point reassociation (one
    /// shared reference maximum per tile instead of a running one). `-inf`
    /// scores (masked entries) contribute zero weight.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != scores.len() * self.dim()` (when any score
    /// is finite).
    #[inline]
    // analyze: no-alloc
    pub fn push_tile(&mut self, scores: &mut [f32], values: &[f32]) {
        // Lane-parallel maximum: `max` is associative and commutative, so
        // folding four independent lanes gives the exact same result as a
        // sequential scan, without chaining every compare behind the last.
        let mut max_lanes = [f32::NEG_INFINITY; 4];
        let chunks = scores.chunks_exact(4);
        let remainder = chunks.remainder();
        for chunk in chunks {
            for (lane, &s) in max_lanes.iter_mut().zip(chunk.iter()) {
                *lane = lane.max(s);
            }
        }
        let mut tile_max = max_lanes[0]
            .max(max_lanes[1])
            .max(max_lanes[2].max(max_lanes[3]));
        for &s in remainder {
            tile_max = tile_max.max(s);
        }
        if tile_max == f32::NEG_INFINITY {
            return;
        }
        let dim = self.acc.len();
        assert_eq!(
            values.len(),
            scores.len() * dim,
            "value tile shape mismatch"
        );
        if tile_max > self.max_score {
            let rescale = if self.max_score == f32::NEG_INFINITY {
                0.0
            } else {
                (self.max_score - tile_max).exp()
            };
            self.sum_exp *= rescale;
            for a in &mut self.acc {
                *a *= rescale;
            }
            self.max_score = tile_max;
        }
        let max_score = self.max_score;
        // Two separate passes so each can vectorise: the branchless
        // exponential is pure element-wise arithmetic, and folding the sum
        // in the same loop would chain every iteration behind a scalar add.
        // Masked `-inf` entries come out as exp_approx's clamped floor,
        // e^-87 ≈ 1.6e-38 — a weight far below every fidelity tolerance.
        for score in scores.iter_mut() {
            *score = crate::ops::exp_approx(*score - max_score);
        }
        // Lane-parallel weight sum (deterministic: the lane split depends
        // only on the tile length).
        let mut sum_lanes = [0.0f32; 4];
        let chunks = scores.chunks_exact(4);
        let remainder = chunks.remainder();
        for chunk in chunks {
            for (lane, &w) in sum_lanes.iter_mut().zip(chunk.iter()) {
                *lane += w;
            }
        }
        let mut sum = (sum_lanes[0] + sum_lanes[1]) + (sum_lanes[2] + sum_lanes[3]);
        for &w in remainder {
            sum += w;
        }
        self.sum_exp += sum;
        // A stack-local accumulator keeps the fold in registers for the
        // whole tile (heads are <= 256 channels in every supported model);
        // wider reductions fall back to accumulating in place.
        let mut acc_buf = [0.0f32; 256];
        if dim <= acc_buf.len() {
            let local = &mut acc_buf[..dim];
            local.copy_from_slice(&self.acc);
            for (&weight, row) in scores.iter().zip(values.chunks_exact(dim)) {
                for (a, &x) in local.iter_mut().zip(row.iter()) {
                    *a += weight * x;
                }
            }
            self.acc.copy_from_slice(local);
        } else {
            for (&weight, row) in scores.iter().zip(values.chunks_exact(dim)) {
                crate::ops::axpy(weight, row, &mut self.acc);
            }
        }
    }

    /// Merges a pre-reduced segment described by its own `(max, sum_exp,
    /// weighted accumulator)` triple, e.g. produced by another accumulator or
    /// by a batched kernel over the quantized history.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != self.dim()`.
    pub fn merge_segment(&mut self, max_score: f32, sum_exp: f32, acc: &[f32]) {
        assert_eq!(acc.len(), self.acc.len(), "segment dimension mismatch");
        if sum_exp <= 0.0 || max_score == f32::NEG_INFINITY {
            return;
        }
        if max_score > self.max_score {
            let rescale = if self.max_score == f32::NEG_INFINITY {
                0.0
            } else {
                (self.max_score - max_score).exp()
            };
            self.sum_exp *= rescale;
            for a in &mut self.acc {
                *a *= rescale;
            }
            self.max_score = max_score;
        }
        let w = (max_score - self.max_score).exp();
        self.sum_exp += w * sum_exp;
        crate::ops::axpy(w, acc, &mut self.acc);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineSoftmax) {
        self.merge_segment(other.max_score, other.sum_exp, &other.acc);
    }

    /// Finalises the accumulator, returning `softmax(scores) @ values`.
    ///
    /// Returns a zero vector when nothing was accumulated.
    pub fn finish(self) -> Vec<f32> {
        if self.sum_exp == 0.0 {
            return self.acc;
        }
        let inv = 1.0 / self.sum_exp;
        self.acc.into_iter().map(|a| a * inv).collect()
    }

    /// Writes `softmax(scores) @ values` into `out` without consuming the
    /// accumulator (which can then be [`reset`](OnlineSoftmax::reset) and
    /// reused). Writes zeros when nothing was accumulated.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn finish_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.acc.len(), "output dimension mismatch");
        if self.sum_exp == 0.0 {
            out.iter_mut().for_each(|o| *o = 0.0);
            return;
        }
        let inv = 1.0 / self.sum_exp;
        for (o, a) in out.iter_mut().zip(self.acc.iter()) {
            *o = a * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::softmax_in_place;
    use proptest::prelude::*;

    fn reference(scores: &[f32], values: &[Vec<f32>]) -> Vec<f32> {
        let mut probs = scores.to_vec();
        softmax_in_place(&mut probs);
        let dim = values[0].len();
        let mut out = vec![0.0; dim];
        for (p, v) in probs.iter().zip(values.iter()) {
            for (o, x) in out.iter_mut().zip(v.iter()) {
                *o += p * x;
            }
        }
        out
    }

    #[test]
    fn empty_accumulator_finishes_to_zero() {
        let acc = OnlineSoftmax::new(3);
        assert!(acc.is_empty());
        assert_eq!(acc.finish(), vec![0.0; 3]);
    }

    #[test]
    fn single_element_returns_value() {
        let mut acc = OnlineSoftmax::new(2);
        acc.push(5.0, &[1.5, -2.0]);
        let out = acc.finish();
        assert!((out[0] - 1.5).abs() < 1e-6);
        assert!((out[1] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn neg_infinity_scores_are_ignored() {
        let mut acc = OnlineSoftmax::new(1);
        acc.push(f32::NEG_INFINITY, &[100.0]);
        acc.push(0.0, &[2.0]);
        let out = acc.finish();
        assert!((out[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn merge_of_two_segments_matches_full_softmax() {
        let scores = vec![0.1, -0.5, 2.0, 1.0, -3.0];
        let values: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, 1.0 - i as f32]).collect();
        let expected = reference(&scores, &values);

        let mut left = OnlineSoftmax::new(2);
        for i in 0..3 {
            left.push(scores[i], &values[i]);
        }
        let mut right = OnlineSoftmax::new(2);
        for i in 3..5 {
            right.push(scores[i], &values[i]);
        }
        left.merge(&right);
        let out = left.finish();
        for (o, e) in out.iter().zip(expected.iter()) {
            assert!((o - e).abs() < 1e-5, "{o} vs {e}");
        }
    }

    #[test]
    fn reset_and_finish_into_match_fresh_accumulator() {
        let scores = [0.7f32, -1.2, 0.3];
        let values: Vec<Vec<f32>> = (0..3).map(|i| vec![i as f32, 2.0 - i as f32]).collect();

        let mut reused = OnlineSoftmax::new(4);
        reused.push(9.0, &[1.0, 2.0, 3.0, 4.0]); // pollute state
        reused.reset(2);
        let mut fresh = OnlineSoftmax::new(2);
        for (s, v) in scores.iter().zip(values.iter()) {
            reused.push(*s, v);
            fresh.push(*s, v);
        }
        let mut out = vec![0.0f32; 2];
        reused.finish_into(&mut out);
        assert_eq!(out, fresh.finish());
    }

    #[test]
    fn finish_into_on_empty_writes_zeros() {
        let acc = OnlineSoftmax::new(3);
        let mut out = vec![7.0f32; 3];
        acc.finish_into(&mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn merge_segment_with_zero_sum_is_noop() {
        let mut acc = OnlineSoftmax::new(1);
        acc.push(1.0, &[3.0]);
        acc.merge_segment(f32::NEG_INFINITY, 0.0, &[99.0]);
        let out = acc.finish();
        assert!((out[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn push_tile_matches_per_element_push() {
        use crate::Matrix;
        let values = Matrix::from_fn(10, 3, |r, c| ((r * 5 + c * 3) % 9) as f32 - 4.0);
        let scores: Vec<f32> = (0..10).map(|i| (i as f32 * 0.9).sin() * 6.0).collect();

        let mut pushed = OnlineSoftmax::new(3);
        for (i, &s) in scores.iter().enumerate() {
            pushed.push(s, values.row(i));
        }
        let mut tiled = OnlineSoftmax::new(3);
        let mut head = scores[..4].to_vec();
        let mut tail = scores[4..].to_vec();
        tiled.push_tile(&mut head, &values.as_slice()[..4 * 3]);
        tiled.push_tile(&mut tail, &values.as_slice()[4 * 3..]);

        let a = pushed.finish();
        let b = tiled.finish();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn push_tile_skips_masked_scores() {
        use crate::Matrix;
        let values = Matrix::from_fn(3, 2, |r, _| r as f32);
        let mut acc = OnlineSoftmax::new(2);
        acc.push_tile(&mut [0.0, f32::NEG_INFINITY, 0.0], values.as_slice());
        let out = acc.finish();
        // Row 1 is masked out: the average of rows 0 and 2 is 1.0.
        assert!((out[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn push_tile_of_all_masked_scores_is_noop() {
        use crate::Matrix;
        let values = Matrix::from_fn(2, 1, |_, _| 7.0);
        let mut acc = OnlineSoftmax::new(1);
        acc.push(1.0, &[3.0]);
        acc.push_tile(
            &mut [f32::NEG_INFINITY, f32::NEG_INFINITY],
            values.as_slice(),
        );
        let out = acc.finish();
        assert!((out[0] - 3.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn streaming_matches_batch(
            scores in proptest::collection::vec(-20.0f32..20.0, 1..40),
            dim in 1usize..8,
        ) {
            let values: Vec<Vec<f32>> = (0..scores.len())
                .map(|i| (0..dim).map(|d| ((i * 7 + d * 3) % 11) as f32 - 5.0).collect())
                .collect();
            let expected = reference(&scores, &values);
            let mut acc = OnlineSoftmax::new(dim);
            for (s, v) in scores.iter().zip(values.iter()) {
                acc.push(*s, v);
            }
            let out = acc.finish();
            for (o, e) in out.iter().zip(expected.iter()) {
                prop_assert!((o - e).abs() < 1e-3);
            }
        }

        #[test]
        fn merge_order_does_not_matter(
            scores in proptest::collection::vec(-10.0f32..10.0, 2..30),
            split in 1usize..29,
        ) {
            let split = split.min(scores.len() - 1);
            let values: Vec<Vec<f32>> = (0..scores.len()).map(|i| vec![(i % 5) as f32]).collect();

            let mut a = OnlineSoftmax::new(1);
            let mut b = OnlineSoftmax::new(1);
            for i in 0..split { a.push(scores[i], &values[i]); }
            for i in split..scores.len() { b.push(scores[i], &values[i]); }

            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            let x = ab.finish()[0];
            let y = ba.finish()[0];
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
