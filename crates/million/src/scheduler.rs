//! Multi-session batch scheduling: the serving layer over
//! [`InferenceSession`].
//!
//! A [`BatchScheduler`] owns N concurrent sessions of one engine and
//! round-robin interleaves their decode steps. All sessions share a single
//! [`QuantWorker`] — the software analogue of the paper's one low-priority
//! CUDA stream serving the whole GPU — and the scheduler routes finished
//! encode blocks back to the session that staged them using the session tag
//! on every [`crate::async_quant::EncodeResult`].
//!
//! Sessions keep fully independent KV caches, so interleaving never changes
//! *what* attention sees for a given session — with synchronous quantization
//! the scheduler is token-for-token identical to running the same sessions
//! serially, and with the asynchronous stream it differs only in encode
//! timing (exactly the transient the paper's Fig. 4 design permits).

use million_model::Sampler;

use crate::async_quant::QuantWorker;
use crate::engine::MillionEngine;
use crate::session::{GenerationOptions, InferenceSession, StepResult};

/// Final state of one scheduled session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Scheduler-assigned session id (index of [`BatchScheduler::add_session`]
    /// calls).
    pub session: usize,
    /// Every token the session generated.
    pub tokens: Vec<u32>,
    /// Prompt tokens the session consumed.
    pub prompt_tokens: usize,
    /// Final KV-cache bytes across all layers (shared blocks counted in
    /// full, as if owned — comparable with an unshared session).
    pub kv_bytes: usize,
    /// What an fp16 cache of the same length would use.
    pub fp16_kv_bytes: usize,
    /// Of `kv_bytes`, bytes held in store blocks co-referenced by at least
    /// one other live session — memory prefix sharing deduplicated.
    pub kv_shared_bytes: usize,
    /// Of `kv_bytes`, bytes this session holds exclusively.
    pub kv_owned_bytes: usize,
    /// Prompt tokens satisfied from resident shared blocks at admission
    /// (prefill skipped for them).
    pub prefix_tokens_reused: usize,
    /// Encoded blocks the session absorbed from the shared worker.
    pub async_batches: usize,
    /// Wall-clock nanoseconds the session spent in prompt admission (tiled
    /// prefill attention plus synchronous prompt encoding; warm admissions
    /// include the unmatched-suffix decode).
    pub prefill_ns: u64,
    /// Prompt tokens admitted per second during prefill.
    pub prefill_tokens_per_s: f64,
    /// Whether generation ended on a stop token (as opposed to the length
    /// budget).
    pub stopped_early: bool,
}

struct Slot<'e> {
    session: InferenceSession<'e>,
    sampler: Sampler,
    options: GenerationOptions,
    tokens: Vec<u32>,
    stopped_early: bool,
    done: bool,
}

impl Slot<'_> {
    /// Flushes the session and snapshots its final report. Called while the
    /// whole cohort is still alive, so the shared/owned byte split reflects
    /// the sharing that actually held during serving.
    fn report(&mut self, id: usize) -> SessionReport {
        self.session.flush();
        SessionReport {
            session: id,
            tokens: std::mem::take(&mut self.tokens),
            prompt_tokens: self.session.prompt_tokens(),
            kv_bytes: self.session.kv_bytes(),
            fp16_kv_bytes: self.session.fp16_kv_bytes(),
            kv_shared_bytes: self.session.kv_shared_bytes(),
            kv_owned_bytes: self.session.kv_owned_bytes(),
            prefix_tokens_reused: self.session.prefix_tokens_reused(),
            async_batches: self.session.async_batches(),
            prefill_ns: self.session.prefill_ns(),
            prefill_tokens_per_s: self.session.prefill_tokens_per_s(),
            stopped_early: self.stopped_early,
        }
    }
}

/// Round-robin scheduler interleaving decode steps of N concurrent sessions
/// through one shared quantization worker.
pub struct BatchScheduler<'e> {
    engine: &'e MillionEngine,
    worker: Option<QuantWorker>,
    slots: Vec<Slot<'e>>,
}

impl<'e> BatchScheduler<'e> {
    /// Creates an empty scheduler for `engine`. The shared quantization
    /// worker is spawned lazily with the first session when the engine runs
    /// asynchronously.
    pub fn new(engine: &'e MillionEngine) -> Self {
        Self {
            engine,
            worker: None,
            slots: Vec::new(),
        }
    }

    /// Admits a new session: prefills `prompt` and queues it for decoding
    /// under `options`. Returns the session id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds the model's context window.
    pub fn add_session(
        &mut self,
        prompt: &[u32],
        options: GenerationOptions,
        sampler: Sampler,
    ) -> usize {
        let id = self.slots.len();
        if self.engine.config().async_quant && self.worker.is_none() {
            self.worker = Some(QuantWorker::spawn(
                self.engine.codebooks().key.clone(),
                self.engine.codebooks().value.clone(),
                self.engine.model().cache_layout(),
            ));
        }
        let mut session = InferenceSession::new(self.engine, id, true);
        session.prefill(prompt);
        self.slots.push(Slot {
            session,
            sampler,
            options,
            tokens: Vec::new(),
            stopped_early: false,
            done: false,
        });
        id
    }

    /// Number of sessions still decoding.
    pub fn active_sessions(&self) -> usize {
        self.slots.iter().filter(|s| !s.done).count()
    }

    /// Total sessions admitted.
    pub fn total_sessions(&self) -> usize {
        self.slots.len()
    }

    /// Aggregate KV-cache bytes across all sessions.
    pub fn kv_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.session.kv_bytes()).sum()
    }

    /// Aggregate fp16-equivalent bytes across all sessions.
    pub fn fp16_kv_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.session.fp16_kv_bytes()).sum()
    }

    /// Runs one scheduling round: every active session decodes exactly one
    /// token. Returns `(session_id, step)` for each token produced this
    /// round; an empty vector means every session is finished.
    pub fn step_round(&mut self) -> Vec<(usize, StepResult)> {
        let mut produced = Vec::new();
        for idx in 0..self.slots.len() {
            if self.slots[idx].done {
                continue;
            }
            // Route everything the shared worker finished so far to its
            // owning session (absorb-before-attend, as in the single-session
            // loop).
            self.route_finished();
            let slot = &mut self.slots[idx];
            let mut step = slot.session.step_with(&mut slot.sampler);
            slot.tokens.push(step.token);
            if slot.options.stop.matches(step.token) {
                step.matched_stop = true;
                slot.stopped_early = true;
                slot.done = true;
            } else if slot.tokens.len() >= slot.options.max_new_tokens {
                slot.done = true;
            }
            // Ship the tokens this step staged through the shared worker.
            let requests = self.slots[idx].session.take_encode_requests();
            if let Some(worker) = &mut self.worker {
                for request in requests {
                    worker.submit(request);
                }
            }
            produced.push((idx, step));
        }
        produced
    }

    /// Decodes every session to completion and returns the per-session
    /// reports (indexed by session id).
    pub fn run_to_completion(mut self) -> Vec<SessionReport> {
        while !self.step_round().is_empty() {}
        self.finish()
    }

    /// Flushes the shared quantization stream and returns the per-session
    /// reports (indexed by session id).
    pub fn finish(mut self) -> Vec<SessionReport> {
        if let Some(worker) = &mut self.worker {
            for result in worker.drain_all() {
                self.slots[result.session].session.absorb(result);
            }
        }
        self.slots
            .iter_mut()
            .enumerate()
            .map(|(id, slot)| slot.report(id))
            .collect()
    }

    fn route_finished(&mut self) {
        if let Some(worker) = &mut self.worker {
            for result in worker.try_drain() {
                self.slots[result.session].session.absorb(result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_fixtures::engine;
    use crate::{GenerationOptions, StopCriteria};

    fn prompts() -> Vec<Vec<u32>> {
        vec![
            vec![3, 9, 27, 81, 11, 33],
            vec![5, 10, 20, 40, 80],
            vec![7, 14, 28, 56, 112, 97, 61],
            vec![2, 4, 8, 16, 32, 64],
        ]
    }

    #[test]
    fn scheduler_matches_serial_execution_in_sync_mode() {
        let engine = engine(false, 0);
        let mut scheduler = BatchScheduler::new(&engine);
        for p in prompts() {
            scheduler.add_session(&p, GenerationOptions::max_tokens(10), Sampler::greedy());
        }
        assert_eq!(scheduler.total_sessions(), 4);
        let reports = scheduler.run_to_completion();

        for (p, report) in prompts().iter().zip(reports.iter()) {
            let mut session = engine.session();
            session.prefill(p);
            let serial = session.generate(&GenerationOptions::max_tokens(10));
            assert_eq!(report.tokens, serial.tokens, "prompt {p:?}");
        }
    }

    #[test]
    fn scheduler_drives_async_sessions_through_shared_worker() {
        let engine = engine(true, 1);
        let mut scheduler = BatchScheduler::new(&engine);
        for p in prompts() {
            scheduler.add_session(&p, GenerationOptions::max_tokens(16), Sampler::greedy());
        }
        let reports = scheduler.run_to_completion();
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert_eq!(report.tokens.len(), 16);
            assert!(report.kv_bytes > 0);
            assert!(report.kv_bytes < report.fp16_kv_bytes);
            assert!(report.prefill_ns > 0);
            assert!(report.prefill_tokens_per_s > 0.0);
        }
        // The shared worker actually carried traffic for the batch.
        assert!(reports.iter().map(|r| r.async_batches).sum::<usize>() > 0);
    }

    #[test]
    fn sessions_finish_independently_on_stop_tokens() {
        let engine = engine(false, 2);
        // Discover what the first session's second token will be, then stop
        // on it; the other session runs to its full budget.
        let p = prompts();
        let mut probe = engine.session();
        probe.prefill(&p[0]);
        let probed: Vec<u32> = probe
            .stream(GenerationOptions::max_tokens(2))
            .map(|s| s.token)
            .collect();
        let target = probed[1];
        let expected_len = probed.iter().position(|&t| t == target).unwrap() + 1;

        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.add_session(
            &p[0],
            GenerationOptions::max_tokens(12).with_stop(StopCriteria::eos(target)),
            Sampler::greedy(),
        );
        scheduler.add_session(&p[1], GenerationOptions::max_tokens(12), Sampler::greedy());
        let mut rounds = 0;
        while !scheduler.step_round().is_empty() {
            rounds += 1;
        }
        assert_eq!(rounds, 12);
        let reports = scheduler.finish();
        assert_eq!(reports[0].tokens.len(), expected_len);
        assert!(reports[0].stopped_early);
        assert_eq!(reports[1].tokens.len(), 12);
        assert!(!reports[1].stopped_early);
    }

    #[test]
    fn aggregate_accounting_sums_over_sessions() {
        let engine = engine(false, 3);
        let mut scheduler = BatchScheduler::new(&engine);
        for p in prompts() {
            scheduler.add_session(&p, GenerationOptions::max_tokens(4), Sampler::greedy());
        }
        let _ = scheduler.step_round();
        assert!(scheduler.kv_bytes() > 0);
        assert!(scheduler.kv_bytes() < scheduler.fp16_kv_bytes());
        assert_eq!(scheduler.active_sessions(), 4);
    }
}
