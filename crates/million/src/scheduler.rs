//! Static-cohort batch scheduling: the compatibility wrapper over the
//! continuous-batching serving loop.
//!
//! [`BatchScheduler`] keeps the PR 1 surface — admit N sessions up front,
//! interleave their decode steps round-robin, collect every report at the
//! end — but is now a thin shell over [`crate::ServingEngine`] configured as
//! the *retained cohort* special case: unbounded admission (every
//! `add_session` is admitted and prefilled immediately), a single QoS class
//! (so deficit-weighted round-robin degenerates to exactly one step per
//! session per round, in admission order), and no per-round retirement
//! (finished sessions keep their KV alive until [`BatchScheduler::finish`],
//! so the shared/owned byte split in the reports reflects the sharing that
//! held while the whole cohort was resident).
//!
//! Sessions keep fully independent KV caches, so interleaving never changes
//! *what* attention sees for a given session — with synchronous quantization
//! the scheduler is token-for-token identical to running the same sessions
//! serially, and with the asynchronous stream it differs only in encode
//! timing (exactly the transient the paper's Fig. 4 design permits). For
//! iteration-level admission, QoS classes, backpressure, and mid-flight
//! cancellation, use [`crate::ServingEngine`] directly.

use million_model::Sampler;

use crate::engine::MillionEngine;
use crate::serving::{QosClass, Request, RequestHandle, ServingConfig, ServingEngine};
use crate::session::{GenerationOptions, StepResult};

/// Final state of one served request. Serializable so metrics endpoints and
/// dashboards can export it without hand-formatting JSON.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SessionReport {
    /// Request id ([`BatchScheduler`]: index of the `add_session` call;
    /// [`crate::ServingEngine`]: the [`crate::RequestId`] in submission
    /// order).
    pub session: usize,
    /// The request's QoS class ([`QosClass::Standard`] for every
    /// [`BatchScheduler`] session).
    pub class: QosClass,
    /// Every token the session generated.
    pub tokens: Vec<u32>,
    /// Prompt tokens the session consumed.
    pub prompt_tokens: usize,
    /// Final KV-cache bytes across all layers (shared blocks counted in
    /// full, as if owned — comparable with an unshared session).
    pub kv_bytes: usize,
    /// What an fp16 cache of the same length would use.
    pub fp16_kv_bytes: usize,
    /// Of `kv_bytes`, bytes held in store blocks co-referenced by at least
    /// one other live session — memory prefix sharing deduplicated.
    pub kv_shared_bytes: usize,
    /// Of `kv_bytes`, bytes this session holds exclusively.
    pub kv_owned_bytes: usize,
    /// Prompt tokens satisfied from resident shared blocks at admission
    /// (prefill skipped for them).
    pub prefix_tokens_reused: usize,
    /// Encoded blocks the session absorbed from the shared worker.
    pub async_batches: usize,
    /// Wall-clock nanoseconds the session spent in prompt admission (tiled
    /// prefill attention plus synchronous prompt encoding; warm admissions
    /// include the unmatched-suffix decode).
    pub prefill_ns: u64,
    /// Prompt tokens admitted per second during prefill.
    pub prefill_tokens_per_s: f64,
    /// Prefill chunks the admission was fed in
    /// ([`crate::ServingConfig::prefill_chunk_tokens`]-sized work items); a
    /// monolithic admission counts as one.
    pub prefill_chunks: usize,
    /// Wall-clock nanoseconds between submission and admission (0 for a
    /// [`BatchScheduler`] session, which is admitted inside `add_session`).
    pub queue_wait_ns: u64,
    /// Whole scheduling rounds the request waited in the pending queue.
    pub queue_wait_rounds: u64,
    /// Wall-clock nanoseconds from submission to the first generated token
    /// (time-to-first-token). 0 when no token was ever generated, and for
    /// [`BatchScheduler`] sessions, which are driven outside serve rounds.
    pub first_token_ns: u64,
    /// Wall-clock nanoseconds spent in decode steps (forward pass plus
    /// sampling), accumulated across the request's generated tokens.
    pub decode_ns: u64,
    /// Whether generation ended on a stop token (as opposed to the length
    /// budget).
    pub stopped_early: bool,
    /// Whether the request was cancelled (before or after admission); the
    /// report then carries whatever was produced up to that point.
    pub cancelled: bool,
    /// Whether the request missed its [`crate::Request::deadline_ms`] and
    /// was retired at a round boundary — distinct from `cancelled`, which is
    /// client-initiated; at most one of the two is set.
    pub timed_out: bool,
}

/// Round-robin scheduler interleaving decode steps of N concurrent sessions
/// through one shared quantization worker — the retained-cohort
/// configuration of [`ServingEngine`].
pub struct BatchScheduler<'e> {
    serving: ServingEngine<'e>,
    /// Handles in admission order, kept alive so streamed tokens are never
    /// sent into closed channels (and so reports stay addressable by id).
    handles: Vec<RequestHandle>,
}

impl<'e> BatchScheduler<'e> {
    /// Creates an empty scheduler for `engine`. The shared quantization
    /// worker is spawned lazily with the first session when the engine runs
    /// asynchronously.
    pub fn new(engine: &'e MillionEngine) -> Self {
        Self {
            serving: ServingEngine::new(
                engine,
                ServingConfig {
                    max_resident: usize::MAX,
                    queue_capacity: usize::MAX,
                    kv_byte_budget: None,
                    // The cohort contract is that `add_session` prefills the
                    // whole prompt on the spot, so chunked admission (a
                    // serve_round concern) stays disabled here.
                    prefill_chunk_tokens: 0,
                    retain_finished: true,
                    ..ServingConfig::default()
                },
            ),
            handles: Vec::new(),
        }
    }

    /// Admits a new session: prefills `prompt` and queues it for decoding
    /// under `options`. Returns the session id.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds the model's context window.
    pub fn add_session(
        &mut self,
        prompt: &[u32],
        options: GenerationOptions,
        sampler: Sampler,
    ) -> usize {
        let request = Request::new(prompt.to_vec(), options).with_sampler(sampler);
        let handle = self
            .serving
            .submit(request)
            .unwrap_or_else(|e| panic!("add_session: {e}"));
        // The static cohort admits eagerly: the prompt is prefilled here,
        // not at the next round boundary.
        self.serving.admit_ready();
        let id = handle.id().as_u64() as usize;
        self.handles.push(handle);
        id
    }

    /// Number of sessions still decoding.
    pub fn active_sessions(&self) -> usize {
        self.serving.active_sessions() + self.serving.queued_requests()
    }

    /// Total sessions admitted.
    pub fn total_sessions(&self) -> usize {
        self.handles.len()
    }

    /// Aggregate KV-cache bytes across all sessions.
    pub fn kv_bytes(&self) -> usize {
        self.serving.kv_bytes()
    }

    /// Aggregate fp16-equivalent bytes across all sessions.
    pub fn fp16_kv_bytes(&self) -> usize {
        self.serving.fp16_kv_bytes()
    }

    /// Runs one scheduling round: every active session decodes exactly one
    /// token. Returns `(session_id, step)` for each token produced this
    /// round; an empty vector means every session is finished.
    pub fn step_round(&mut self) -> Vec<(usize, StepResult)> {
        self.serving
            .serve_round()
            .into_iter()
            .map(|(id, step)| (id.as_u64() as usize, step))
            .collect()
    }

    /// Decodes every session to completion and returns the per-session
    /// reports (indexed by session id).
    pub fn run_to_completion(mut self) -> Vec<SessionReport> {
        while !self.step_round().is_empty() {}
        self.finish()
    }

    /// Flushes the shared quantization stream and returns the per-session
    /// reports (indexed by session id). Sessions — finished or not — stay
    /// resident until this point, so every report's shared/owned byte split
    /// reflects the sharing that actually held during serving.
    pub fn finish(self) -> Vec<SessionReport> {
        self.serving.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_fixtures::engine;
    use crate::{GenerationOptions, StopCriteria};

    fn prompts() -> Vec<Vec<u32>> {
        vec![
            vec![3, 9, 27, 81, 11, 33],
            vec![5, 10, 20, 40, 80],
            vec![7, 14, 28, 56, 112, 97, 61],
            vec![2, 4, 8, 16, 32, 64],
        ]
    }

    #[test]
    fn scheduler_matches_serial_execution_in_sync_mode() {
        let engine = engine(false, 0);
        let mut scheduler = BatchScheduler::new(&engine);
        for p in prompts() {
            scheduler.add_session(&p, GenerationOptions::max_tokens(10), Sampler::greedy());
        }
        assert_eq!(scheduler.total_sessions(), 4);
        let reports = scheduler.run_to_completion();

        for (p, report) in prompts().iter().zip(reports.iter()) {
            let mut session = engine.session();
            session.prefill(p);
            let serial = session.generate(&GenerationOptions::max_tokens(10));
            assert_eq!(report.tokens, serial.tokens, "prompt {p:?}");
        }
    }

    #[test]
    fn scheduler_drives_async_sessions_through_shared_worker() {
        let engine = engine(true, 1);
        let mut scheduler = BatchScheduler::new(&engine);
        for p in prompts() {
            scheduler.add_session(&p, GenerationOptions::max_tokens(16), Sampler::greedy());
        }
        let reports = scheduler.run_to_completion();
        assert_eq!(reports.len(), 4);
        for report in &reports {
            assert_eq!(report.tokens.len(), 16);
            assert!(report.kv_bytes > 0);
            assert!(report.kv_bytes < report.fp16_kv_bytes);
            assert!(report.prefill_ns > 0);
            assert!(report.prefill_tokens_per_s > 0.0);
            assert_eq!(report.queue_wait_rounds, 0, "cohort admits eagerly");
        }
        // The shared worker actually carried traffic for the batch.
        assert!(reports.iter().map(|r| r.async_batches).sum::<usize>() > 0);
    }

    #[test]
    fn sessions_finish_independently_on_stop_tokens() {
        let engine = engine(false, 2);
        // Discover what the first session's second token will be, then stop
        // on it; the other session runs to its full budget.
        let p = prompts();
        let mut probe = engine.session();
        probe.prefill(&p[0]);
        let probed: Vec<u32> = probe
            .stream(GenerationOptions::max_tokens(2))
            .map(|s| s.token)
            .collect();
        let target = probed[1];
        let expected_len = probed.iter().position(|&t| t == target).unwrap() + 1;

        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.add_session(
            &p[0],
            GenerationOptions::max_tokens(12).with_stop(StopCriteria::eos(target)),
            Sampler::greedy(),
        );
        scheduler.add_session(&p[1], GenerationOptions::max_tokens(12), Sampler::greedy());
        let mut rounds = 0;
        while !scheduler.step_round().is_empty() {
            rounds += 1;
        }
        assert_eq!(rounds, 12);
        let reports = scheduler.finish();
        assert_eq!(reports[0].tokens.len(), expected_len);
        assert!(reports[0].stopped_early);
        assert_eq!(reports[1].tokens.len(), 12);
        assert!(!reports[1].stopped_early);
    }

    #[test]
    fn aggregate_accounting_sums_over_sessions() {
        let engine = engine(false, 3);
        let mut scheduler = BatchScheduler::new(&engine);
        for p in prompts() {
            scheduler.add_session(&p, GenerationOptions::max_tokens(4), Sampler::greedy());
        }
        let _ = scheduler.step_round();
        assert!(scheduler.kv_bytes() > 0);
        assert!(scheduler.kv_bytes() < scheduler.fp16_kv_bytes());
        assert_eq!(scheduler.active_sessions(), 4);
    }

    #[test]
    fn finished_cohort_sessions_keep_kv_until_finish() {
        // The wrapper's contract vs the continuous loop: a finished
        // session's KV stays resident (and countable) until the reports are
        // collected.
        let engine = engine(false, 4);
        let mut scheduler = BatchScheduler::new(&engine);
        scheduler.add_session(
            &prompts()[0],
            GenerationOptions::max_tokens(2),
            Sampler::greedy(),
        );
        scheduler.add_session(
            &prompts()[1],
            GenerationOptions::max_tokens(8),
            Sampler::greedy(),
        );
        let mut rounds = 0;
        while !scheduler.step_round().is_empty() {
            rounds += 1;
            assert!(scheduler.kv_bytes() > 0);
        }
        assert_eq!(rounds, 8);
        let kv_before_finish = scheduler.kv_bytes();
        assert!(kv_before_finish > 0, "finished sessions still counted");
        let reports = scheduler.finish();
        assert_eq!(reports[0].tokens.len(), 2);
        assert_eq!(reports[1].tokens.len(), 8);
    }
}
