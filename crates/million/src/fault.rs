//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded schedule of faults parsed from a compact
//! string spec, threaded as an `Arc` through the serving engine (snapshot
//! writes, admission) and the serverd shard loop (injected panics). Every
//! injection point is keyed off a monotonic atomic counter, so a given
//! `(spec, seed)` pair reproduces the exact same fault sequence on every
//! run — chaos tests assert bit-identical outcomes across two runs of the
//! same plan.
//!
//! The spec grammar is whitespace-separated clauses of `kind@key=value,…`:
//!
//! ```text
//! panic@shard=0,round=5        injected panic before shard 0's 5th round
//! snapshot_io@write=3          the 3rd snapshot write fails with an I/O error
//! short_read@read=1            the 1st snapshot read is truncated to half
//! queue_full@submit=4,count=2  submissions 4 and 5 are rejected QueueFull
//! ```
//!
//! The module is dependency-free; the jitter helper is a SplitMix64 hash of
//! the plan seed, not a stateful RNG, so concurrent injection points cannot
//! perturb each other's draws.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// SplitMix64: a stateless 64-bit mixer used for deterministic jitter.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An injected shard panic: fires once, before the shard's `round`-th
/// serving round (1-based).
#[derive(Debug, Clone, Copy)]
struct PanicAt {
    shard: usize,
    round: u64,
}

/// A burst of injected `QueueFull` rejections covering submissions
/// `from ..= from + count - 1` (1-based).
#[derive(Debug, Clone, Copy)]
struct QueueFullBurst {
    from: u64,
    count: u64,
}

/// A seeded, reproducible schedule of injected faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    spec: String,
    panic_at: Option<PanicAt>,
    snapshot_io_write: Option<u64>,
    short_read: Option<u64>,
    queue_full: Option<QueueFullBurst>,
    panicked: AtomicBool,
    writes: AtomicU64,
    reads: AtomicU64,
    submits: AtomicU64,
}

impl FaultPlan {
    /// Parses a plan from the compact spec grammar (see the module docs).
    /// An empty spec yields a plan that injects nothing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed,
            spec: spec.trim().to_string(),
            ..FaultPlan::default()
        };
        for clause in spec.split_whitespace() {
            let (kind, args) = clause
                .split_once('@')
                .ok_or_else(|| format!("fault clause `{clause}` is missing `@`"))?;
            let mut fields = std::collections::BTreeMap::new();
            for pair in args.split(',') {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("fault clause `{clause}`: `{pair}` is not key=value"))?;
                let value: u64 = value.parse().map_err(|_| {
                    format!("fault clause `{clause}`: `{value}` is not an unsigned integer")
                })?;
                fields.insert(key, value);
            }
            let mut get = |key: &str| {
                fields
                    .remove(key)
                    .ok_or_else(|| format!("fault clause `{clause}` is missing `{key}=`"))
            };
            match kind {
                "panic" => {
                    plan.panic_at = Some(PanicAt {
                        shard: get("shard")? as usize,
                        round: get("round")?,
                    });
                }
                "snapshot_io" => plan.snapshot_io_write = Some(get("write")?),
                "short_read" => plan.short_read = Some(get("read")?),
                "queue_full" => {
                    plan.queue_full = Some(QueueFullBurst {
                        from: get("submit")?,
                        count: get("count")?,
                    });
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            }
            if let Some(stray) = fields.keys().next() {
                return Err(format!("fault clause `{clause}`: unknown key `{stray}`"));
            }
        }
        Ok(plan)
    }

    /// The spec string this plan was parsed from.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The plan's seed (drives [`FaultPlan::jitter_ms`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the shard should deliberately panic before serving `round`
    /// (1-based). Fires at most once per plan, so a restarted shard whose
    /// round counter resets does not crash again at the same round.
    pub fn should_panic(&self, shard: usize, round: u64) -> bool {
        match self.panic_at {
            Some(p) if p.shard == shard && p.round == round => {
                !self.panicked.swap(true, Ordering::SeqCst)
            }
            _ => false,
        }
    }

    /// Counts one snapshot write and returns the injected error if this is
    /// the scheduled one.
    pub fn inject_snapshot_io_error(&self) -> Option<std::io::Error> {
        let write = self.writes.fetch_add(1, Ordering::SeqCst) + 1;
        if self.snapshot_io_write == Some(write) {
            Some(std::io::Error::other(format!(
                "injected fault: snapshot write {write} failed"
            )))
        } else {
            None
        }
    }

    /// Counts one snapshot read; on the scheduled read, truncates `bytes`
    /// to half its length (a short read) and returns `true`.
    pub fn corrupt_restore_read(&self, bytes: &mut Vec<u8>) -> bool {
        let read = self.reads.fetch_add(1, Ordering::SeqCst) + 1;
        if self.short_read == Some(read) {
            bytes.truncate(bytes.len() / 2);
            true
        } else {
            false
        }
    }

    /// Counts one submission and returns `true` if it falls inside the
    /// scheduled queue-full burst.
    pub fn inject_queue_full(&self) -> bool {
        let submit = self.submits.fetch_add(1, Ordering::SeqCst) + 1;
        match self.queue_full {
            Some(burst) => submit >= burst.from && submit < burst.from + burst.count,
            None => false,
        }
    }

    /// A deterministic jitter draw in `0..bound` (0 when `bound` is 0),
    /// keyed on the plan seed and a caller-chosen salt.
    pub fn jitter_ms(&self, salt: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        splitmix64(self.seed ^ salt) % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_clause_kind_and_rejects_malformed_specs() {
        let plan = FaultPlan::parse(
            "panic@shard=1,round=7 snapshot_io@write=3 short_read@read=2 queue_full@submit=5,count=2",
            42,
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert!(plan.should_panic(1, 7));
        assert!(!plan.should_panic(1, 7), "panic fires once");
        assert!(FaultPlan::parse("", 0).unwrap().spec().is_empty());
        for bad in [
            "panic",
            "panic@shard=1",
            "panic@shard=x,round=1",
            "panic@shard=1,round=1,extra=2",
            "explode@now=1",
            "queue_full@submit=1",
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn snapshot_write_and_read_faults_fire_on_the_scheduled_ordinal() {
        let plan = FaultPlan::parse("snapshot_io@write=2 short_read@read=3", 0).unwrap();
        assert!(plan.inject_snapshot_io_error().is_none());
        assert!(plan.inject_snapshot_io_error().is_some(), "2nd write fails");
        assert!(plan.inject_snapshot_io_error().is_none());
        let mut bytes = vec![0u8; 100];
        assert!(!plan.corrupt_restore_read(&mut bytes));
        assert!(!plan.corrupt_restore_read(&mut bytes));
        assert!(plan.corrupt_restore_read(&mut bytes), "3rd read is short");
        assert_eq!(bytes.len(), 50);
    }

    #[test]
    fn queue_full_burst_covers_exactly_the_scheduled_window() {
        let plan = FaultPlan::parse("queue_full@submit=3,count=2", 0).unwrap();
        let hits: Vec<bool> = (0..6).map(|_| plan.inject_queue_full()).collect();
        assert_eq!(hits, [false, false, true, true, false, false]);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_salt() {
        let a = FaultPlan::parse("", 9).unwrap();
        let b = FaultPlan::parse("", 9).unwrap();
        let c = FaultPlan::parse("", 10).unwrap();
        assert_eq!(a.jitter_ms(1, 250), b.jitter_ms(1, 250));
        assert!(a.jitter_ms(1, 250) < 250);
        assert_eq!(a.jitter_ms(7, 0), 0);
        assert!(
            (0..16).any(|s| a.jitter_ms(s, 1 << 30) != c.jitter_ms(s, 1 << 30)),
            "different seeds diverge"
        );
    }
}
