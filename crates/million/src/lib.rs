//! # MILLION — outlier-immunized KV-cache product quantization
//!
//! End-to-end engine tying together the substrates of this workspace, in the
//! shape of the system described in the DAC 2025 paper *"MILLION: MasterIng
//! Long-Context LLM Inference Via Outlier-Immunized KV Product
//! QuaNtization"*:
//!
//! 1. **Offline codebook training** ([`trainer`]) — run the model over a
//!    calibration stream, sample its keys/values, and fit per-layer product
//!    quantization codebooks.
//! 2. **Persistent sessions** ([`session`]) — an [`InferenceSession`] owns a
//!    sequence's quantized KV caches across prefill, decoding, and follow-up
//!    turns, streaming one token (plus telemetry) per [`InferenceSession::step`].
//! 3. **Decode with KV quantization** — attention over the history is
//!    computed directly on the codes through per-query lookup tables; the
//!    current token stays full precision and is merged with an online
//!    softmax.
//! 4. **Asynchronous quantization** ([`async_quant`]) — freshly generated KV
//!    is encoded on a background worker (the paper's low-priority CUDA
//!    stream) so encoding never blocks the decode critical path.
//! 5. **Continuous-batching serving** ([`serving`]) — a [`ServingEngine`]
//!    accepts a stream of prioritised [`Request`]s, schedules at *iteration*
//!    granularity (finished requests retire per round, freed slots refill
//!    from the queue under a KV-byte admission budget), shares decode
//!    throughput across QoS classes with deficit-weighted round-robin, and
//!    streams tokens through [`RequestHandle`]s with first-class
//!    cancellation and queue-full backpressure. The static-cohort
//!    [`BatchScheduler`] ([`scheduler`]) survives as a thin wrapper over the
//!    same loop.
//!
//! ## Quickstart: a streaming chat session
//!
//! ```no_run
//! use million::{GenerationOptions, MillionConfig, MillionEngine, StopCriteria};
//! use million_model::{ModelConfig, Transformer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ModelConfig::llama2_7b_sim();
//! let model = Transformer::new(config.clone(), 42);
//! let calibration: Vec<u32> = (0..512).map(|i| (i * 7 % config.vocab_size as u32)).collect();
//! let engine = MillionEngine::new(model, MillionConfig::four_bit(config.head_dim()), &calibration)?;
//!
//! // One persistent session per user; its PQ-compressed cache survives turns.
//! let mut session = engine.session();
//! session.prefill(&[1, 2, 3, 4]);
//! for step in session.stream(GenerationOptions::max_tokens(32).with_stop(StopCriteria::eos(0))) {
//!     println!("token {} @ {} (cache {} B, {} batches quantized in background)",
//!              step.token, step.position, step.kv_bytes, step.async_batches);
//! }
//!
//! // A follow-up turn attends to the already-quantized history — nothing is
//! // re-prefetched or re-encoded.
//! session.append_prompt(&[9, 8, 7]);
//! let reply = session.generate(&GenerationOptions::max_tokens(16));
//! println!("turn 2: {} tokens, cache at {:.1}% of fp16",
//!          reply.tokens.len(), reply.compression_ratio() * 100.0);
//! # Ok(())
//! # }
//! ```
//!
//! To serve many users, submit their prompts to a [`ServingEngine`] instead
//! (see `examples/continuous_serving.rs` and docs/SERVING.md); a fixed
//! cohort can use the simpler [`BatchScheduler`]
//! (`examples/multi_user_serving.rs`).

#![warn(missing_docs)]

pub mod async_quant;
pub mod config;
pub mod engine;
pub mod fault;
pub mod observe;
mod persist;
pub mod scheduler;
pub mod serving;
pub mod session;
pub mod trainer;

pub use async_quant::QuantWorker;
pub use config::MillionConfig;
pub use engine::{GenerationResult, MillionEngine};
pub use fault::FaultPlan;
pub use million_store::{Block, BlockStore, StoreStats};
pub use observe::{
    HistogramReport, RequestInfo, RequestState, RoundPhase, ServingTelemetry, TelemetrySnapshot,
};
pub use scheduler::{BatchScheduler, SessionReport};
pub use serving::{
    DrainReport, QosClass, RecoverReport, Request, RequestHandle, RequestId, ServingConfig,
    ServingEngine, ServingStats, SubmitError, TokenWait,
};
pub use session::{GenerationOptions, InferenceSession, SessionStream, StepResult, StopCriteria};
pub use trainer::{train_codebooks, TrainedCodebooks};

/// Errors produced by the MILLION engine.
#[derive(Debug)]
pub enum MillionError {
    /// Codebook training failed (propagated from the quantization crate).
    Quant(million_quant::QuantError),
    /// The engine was configured inconsistently with the model.
    InvalidConfig(String),
    /// A persisted session could not be read back (I/O failure, corruption,
    /// or an engine-geometry mismatch).
    Persist(String),
}

impl std::fmt::Display for MillionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MillionError::Quant(e) => write!(f, "codebook training failed: {e}"),
            MillionError::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
            MillionError::Persist(msg) => write!(f, "session restore failed: {msg}"),
        }
    }
}

impl std::error::Error for MillionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MillionError::Quant(e) => Some(e),
            MillionError::InvalidConfig(_) | MillionError::Persist(_) => None,
        }
    }
}

impl From<million_quant::QuantError> for MillionError {
    fn from(e: million_quant::QuantError) -> Self {
        MillionError::Quant(e)
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use million_model::{ModelConfig, Transformer};

    use crate::{MillionConfig, MillionEngine};

    /// The tiny engine shared by the engine/session/scheduler test modules.
    pub(crate) fn engine(async_quant: bool, seed: u64) -> MillionEngine {
        let config = ModelConfig::tiny_for_tests();
        let model = Transformer::new(config.clone(), seed);
        let calibration: Vec<u32> = (0..96)
            .map(|i| ((i * 13 + 5) % config.vocab_size) as u32)
            .collect();
        let mut engine_cfg = MillionConfig::four_bit(config.head_dim());
        engine_cfg.async_quant = async_quant;
        MillionEngine::new(model, engine_cfg, &calibration).expect("engine builds")
    }

    /// A short fixed prompt within the tiny model's vocabulary.
    pub(crate) fn prompt() -> Vec<u32> {
        vec![3, 9, 27, 81, 11, 33, 99, 41, 2, 6, 18, 54]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let err: MillionError = million_quant::QuantError::InvalidConfig("nbits".into()).into();
        assert!(err.to_string().contains("nbits"));
        assert!(std::error::Error::source(&err).is_some());
        let err = MillionError::InvalidConfig("bad".into());
        assert!(std::error::Error::source(&err).is_none());
    }
}
