//! # MILLION — outlier-immunized KV-cache product quantization
//!
//! End-to-end engine tying together the substrates of this workspace, in the
//! shape of the system described in the DAC 2025 paper *"MILLION: MasterIng
//! Long-Context LLM Inference Via Outlier-Immunized KV Product
//! QuaNtization"*:
//!
//! 1. **Offline codebook training** ([`trainer`]) — run the model over a
//!    calibration stream, sample its keys/values, and fit per-layer product
//!    quantization codebooks.
//! 2. **Prefill with KV quantization** — the prompt is processed with
//!    full-precision attention, then its KV is encoded into PQ codes.
//! 3. **Decode with KV quantization** — attention over the history is
//!    computed directly on the codes through per-query lookup tables; the
//!    current token stays full precision and is merged with an online
//!    softmax.
//! 4. **Asynchronous quantization** ([`async_quant`]) — freshly generated KV
//!    is encoded on a background worker (the paper's low-priority CUDA
//!    stream) so encoding never blocks the decode critical path.
//!
//! ```no_run
//! use million::{MillionConfig, MillionEngine};
//! use million_model::{ModelConfig, Sampler, Transformer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ModelConfig::llama2_7b_sim();
//! let model = Transformer::new(config.clone(), 42);
//! let calibration: Vec<u32> = (0..512).map(|i| (i * 7 % config.vocab_size as u32)).collect();
//! let engine = MillionEngine::new(model, MillionConfig::four_bit(config.head_dim()), &calibration)?;
//! let mut sampler = Sampler::greedy();
//! let result = engine.generate(&[1, 2, 3, 4], 32, &mut sampler);
//! println!("generated {} tokens, cache is {:.1}% of fp16",
//!          result.tokens.len(), result.compression_ratio() * 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod async_quant;
pub mod config;
pub mod engine;
pub mod trainer;

pub use async_quant::QuantWorker;
pub use config::MillionConfig;
pub use engine::{GenerationResult, MillionEngine};
pub use trainer::{train_codebooks, TrainedCodebooks};

/// Errors produced by the MILLION engine.
#[derive(Debug)]
pub enum MillionError {
    /// Codebook training failed (propagated from the quantization crate).
    Quant(million_quant::QuantError),
    /// The engine was configured inconsistently with the model.
    InvalidConfig(String),
}

impl std::fmt::Display for MillionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MillionError::Quant(e) => write!(f, "codebook training failed: {e}"),
            MillionError::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
        }
    }
}

impl std::error::Error for MillionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MillionError::Quant(e) => Some(e),
            MillionError::InvalidConfig(_) => None,
        }
    }
}

impl From<million_quant::QuantError> for MillionError {
    fn from(e: million_quant::QuantError) -> Self {
        MillionError::Quant(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let err: MillionError =
            million_quant::QuantError::InvalidConfig("nbits".into()).into();
        assert!(err.to_string().contains("nbits"));
        assert!(std::error::Error::source(&err).is_some());
        let err = MillionError::InvalidConfig("bad".into());
        assert!(std::error::Error::source(&err).is_none());
    }
}
