//! Session persistence: serialize a session's paged PQ cache to disk and
//! restore it for bit-identical continuation.
//!
//! The on-disk payload is dominated by the packed PQ codes — already the
//! compressed wire format — framed by the binary codec in
//! [`million_store::persist`]. A snapshot carries the sealed block chain,
//! each layer's private code tail, the dense residual window, and the decode
//! front (pending token + current logits), so a restored session's next
//! [`crate::InferenceSession::step`] performs the identical arithmetic the
//! original session would have.
//!
//! Restoring into an engine whose store already holds blocks of the same
//! token chain **re-attaches** them instead of duplicating codes (the
//! content-addressed index recognises the chain), so persisted sessions keep
//! participating in prefix sharing. With the store disabled — or a different
//! block granularity — the sealed blocks are folded back into private code
//! tails instead.

use std::path::Path;

use million_quant::pq::{PqCodes, PqConfig};
use million_store::persist::{
    put_block, put_codes, put_f32_slice, put_u32, put_u32_slice, put_u64, PersistError, Reader,
};
use million_store::Block;

use crate::engine::MillionEngine;
use crate::session::InferenceSession;
use crate::MillionError;

const MAGIC: &[u8; 8] = b"MLNSES01";

/// Per-head rows of one layer's dense recent window (keys, values).
type DenseLayer = (Vec<Vec<f32>>, Vec<Vec<f32>>);

/// Bit-exact content equality of two sealed blocks (geometry plus every
/// packed code byte).
fn blocks_equal(a: &Block, b: &Block) -> bool {
    a.len() == b.len()
        && a.n_layers() == b.n_layers()
        && a.n_kv_heads() == b.n_kv_heads()
        && a.all_key_codes()
            .iter()
            .zip(b.all_key_codes())
            .all(|(x, y)| x.packed_bytes() == y.packed_bytes())
        && a.all_value_codes()
            .iter()
            .zip(b.all_value_codes())
            .all(|(x, y)| x.packed_bytes() == y.packed_bytes())
}

impl InferenceSession<'_> {
    /// Writes the session's cache state to `path` (flushing the
    /// asynchronous quantization stream first, so the snapshot is the
    /// steady state).
    ///
    /// The sampler is *not* persisted — a restored session starts with the
    /// default greedy sampler; re-set a custom one with
    /// [`InferenceSession::set_sampler`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be written.
    pub fn persist<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<()> {
        self.flush();
        std::fs::write(path, self.encode())
    }

    fn encode(&self) -> Vec<u8> {
        let engine = self.engine();
        let layout = engine.model().cache_layout();
        let key_config = engine.codebooks().key[0].config();
        let value_config = engine.codebooks().value[0].config();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, engine.config().block_tokens as u32);
        put_u32(&mut out, self.caches.len() as u32);
        put_u32(&mut out, layout.n_kv_heads as u32);
        put_u32(&mut out, layout.head_dim as u32);
        put_u32(&mut out, key_config.m as u32);
        out.push(key_config.nbits);
        put_u32(&mut out, value_config.m as u32);
        out.push(value_config.nbits);
        put_u32_slice(&mut out, &self.history);
        let blocks = self.chain.as_ref().map_or(&[][..], |c| c.blocks());
        put_u32(&mut out, blocks.len() as u32);
        for (_, block) in blocks {
            put_block(&mut out, block);
        }
        for cache in &self.caches {
            for codes in cache
                .private_key_codes()
                .iter()
                .chain(cache.private_value_codes())
            {
                put_codes(&mut out, codes);
            }
        }
        for cache in &self.caches {
            for row in cache
                .recent_key_rows()
                .iter()
                .chain(cache.recent_value_rows())
            {
                put_f32_slice(&mut out, row);
            }
        }
        put_u64(&mut out, self.prompt_tokens as u64);
        put_u32_slice(&mut out, &self.generated);
        match self.pending {
            Some(token) => {
                out.push(1);
                put_u32(&mut out, token);
            }
            None => out.push(0),
        }
        match &self.cur_logits {
            Some(logits) => {
                out.push(1);
                put_f32_slice(&mut out, logits);
            }
            None => out.push(0),
        }
        put_u64(&mut out, self.prefix_reused as u64);
        out
    }
}

impl MillionEngine {
    /// Restores a session persisted with [`InferenceSession::persist`].
    ///
    /// The snapshot must have been produced by an engine with the same
    /// geometry (layers, heads, head dimension, PQ configuration) **and the
    /// same weights and codebooks** — continuation is only meaningful, and
    /// the store's content addressing only sound, for the engine that
    /// encoded the codes. Geometry is validated; weight identity is the
    /// caller's contract.
    ///
    /// # Errors
    ///
    /// Returns [`MillionError::Persist`] if the file cannot be read, is
    /// corrupt, or disagrees with this engine's geometry.
    pub fn restore_session<P: AsRef<Path>>(
        &self,
        path: P,
    ) -> Result<InferenceSession<'_>, MillionError> {
        let bytes = std::fs::read(path)
            .map_err(|e| MillionError::Persist(format!("cannot read snapshot: {e}")))?;
        self.decode_session(&bytes)
            .map_err(|e| MillionError::Persist(e.to_string()))
    }

    fn decode_session(&self, bytes: &[u8]) -> Result<InferenceSession<'_>, PersistError> {
        let corrupt = |msg: &str| PersistError::Corrupt(msg.to_string());
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 8];
        for slot in magic.iter_mut() {
            *slot = r.get_u8()?;
        }
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let snapshot_bt = r.get_u32()? as usize;
        let layout = self.model().cache_layout();
        let n_layers = r.get_u32()? as usize;
        let n_kv_heads = r.get_u32()? as usize;
        let head_dim = r.get_u32()? as usize;
        if n_layers != self.model().config().n_layers
            || n_kv_heads != layout.n_kv_heads
            || head_dim != layout.head_dim
        {
            return Err(corrupt("model geometry mismatch"));
        }
        let read_config = |r: &mut Reader| -> Result<PqConfig, PersistError> {
            let m = r.get_u32()? as usize;
            let nbits = r.get_u8()?;
            PqConfig::new(m, nbits).map_err(|e| PersistError::Corrupt(e.to_string()))
        };
        let key_config = read_config(&mut r)?;
        let value_config = read_config(&mut r)?;
        if key_config != self.codebooks().key[0].config()
            || value_config != self.codebooks().value[0].config()
        {
            return Err(corrupt("PQ configuration mismatch"));
        }

        let history = r.get_u32_slice()?;
        let n_blocks = r.get_u32()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let block = r.get_block()?;
            if block.n_layers() != n_layers || block.n_kv_heads() != n_kv_heads {
                return Err(corrupt("sealed block geometry mismatch"));
            }
            for layer in 0..n_layers {
                for h in 0..n_kv_heads {
                    if block.key_codes(layer, h).config() != key_config
                        || block.value_codes(layer, h).config() != value_config
                    {
                        return Err(corrupt("sealed block code configuration mismatch"));
                    }
                }
            }
            blocks.push(block);
        }
        // Per-layer private tails and dense windows: every code sequence and
        // dense row is validated here (config, equal lengths across heads
        // and layers) so a corrupt snapshot surfaces as an error instead of
        // tripping cache-construction assertions later.
        let mut private: Vec<(Vec<PqCodes>, Vec<PqCodes>)> = Vec::with_capacity(n_layers);
        let mut private_len = None;
        for _ in 0..n_layers {
            let mut keys = Vec::with_capacity(n_kv_heads);
            let mut values = Vec::with_capacity(n_kv_heads);
            for _ in 0..n_kv_heads {
                keys.push(r.get_codes()?);
            }
            for _ in 0..n_kv_heads {
                values.push(r.get_codes()?);
            }
            let len = *private_len.get_or_insert(keys[0].len());
            let keys_ok = keys
                .iter()
                .all(|c| c.config() == key_config && c.len() == len);
            let values_ok = values
                .iter()
                .all(|c| c.config() == value_config && c.len() == len);
            if !keys_ok || !values_ok {
                return Err(corrupt("private code tail is ragged or misconfigured"));
            }
            private.push((keys, values));
        }
        let mut dense: Vec<DenseLayer> = Vec::with_capacity(n_layers);
        let mut dense_len = None;
        for _ in 0..n_layers {
            let mut keys = Vec::with_capacity(n_kv_heads);
            let mut values = Vec::with_capacity(n_kv_heads);
            for _ in 0..n_kv_heads {
                keys.push(r.get_f32_slice()?);
            }
            for _ in 0..n_kv_heads {
                values.push(r.get_f32_slice()?);
            }
            let len = *dense_len.get_or_insert(keys[0].len());
            if !len.is_multiple_of(head_dim)
                || keys.iter().chain(values.iter()).any(|row| row.len() != len)
            {
                return Err(corrupt("dense recent window is ragged"));
            }
            dense.push((keys, values));
        }
        let prompt_tokens = r.get_len()?;
        let generated = r.get_u32_slice()?;
        let pending = if r.get_u8()? == 1 {
            Some(r.get_u32()?)
        } else {
            None
        };
        let cur_logits = if r.get_u8()? == 1 {
            Some(r.get_f32_slice()?)
        } else {
            None
        };
        let prefix_reused = r.get_len()?;
        if !r.is_exhausted() {
            return Err(corrupt("trailing bytes after snapshot"));
        }

        let mut session = InferenceSession::new(self, 0, false);
        // Re-attach the sealed chain through the store when granularities
        // agree — deduplicating against resident sessions — otherwise fold
        // the blocks back into private code tails. A resident block is
        // adopted only if its codes are bit-identical to the snapshot's
        // (token-chain identity alone is not sufficient: the same tokens
        // admitted through a different prefill/turn segmentation yield
        // different codes); on a content mismatch the snapshot's own codes
        // for that block and everything after it stay private — restore
        // never changes the session's arithmetic.
        let via_store = self
            .store()
            .is_some_and(|s| s.block_tokens() == snapshot_bt && snapshot_bt > 0)
            && blocks.iter().all(|b| b.len() == snapshot_bt);
        let mut folded_blocks: Vec<Block> = Vec::new();
        if via_store {
            let chain = session.chain.as_mut().expect("store implies chain");
            let store = chain.store().clone();
            let mut pos = 0usize;
            let mut iter = blocks.into_iter();
            for block in iter.by_ref() {
                let len = block.len();
                if pos + len > history.len() {
                    return Err(corrupt("history shorter than sealed chain"));
                }
                let tokens = &history[pos..pos + len];
                let (id, arc) = match store.lookup_child(chain.last_id(), tokens) {
                    Some((id, resident)) => {
                        if !blocks_equal(&resident, &block) {
                            store.release(id);
                            folded_blocks.push(block);
                            break;
                        }
                        (id, resident)
                    }
                    None => store.insert_child(chain.last_id(), tokens, block),
                };
                pos += len;
                for cache in &mut session.caches {
                    cache.attach_shared_block(arc.clone());
                }
                chain.push(id, arc);
            }
            folded_blocks.extend(iter);
        } else {
            folded_blocks = blocks;
        }
        for (layer, (cache, (mut keys, mut values))) in
            session.caches.iter_mut().zip(private).enumerate()
        {
            if !folded_blocks.is_empty() {
                for (h, merged) in keys.iter_mut().enumerate() {
                    let mut folded = PqCodes::new(key_config);
                    for block in &folded_blocks {
                        folded.append(block.key_codes(layer, h));
                    }
                    folded.append(merged);
                    *merged = folded;
                }
                for (h, merged) in values.iter_mut().enumerate() {
                    let mut folded = PqCodes::new(value_config);
                    for block in &folded_blocks {
                        folded.append(block.value_codes(layer, h));
                    }
                    folded.append(merged);
                    *merged = folded;
                }
            }
            let (dense_k, dense_v) = dense.remove(0);
            cache.restore_parts(keys, values, dense_k, dense_v);
        }
        if session.cached_tokens() != history.len() {
            return Err(corrupt("token history disagrees with cache length"));
        }
        session.history = history;
        session.prompt_tokens = prompt_tokens;
        session.generated = generated;
        session.pending = pending;
        session.cur_logits = cur_logits;
        session.prefix_reused = prefix_reused;
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::engine;

    /// A hand-built snapshot whose header matches `engine` but whose
    /// private-tail codes use the wrong bit width must come back as a
    /// `MillionError::Persist`, never a panic (the restore error contract
    /// covers arbitrary on-disk corruption, not just truncation).
    #[test]
    fn misconfigured_code_sections_error_instead_of_panicking() {
        let engine = engine(false, 40);
        let layout = engine.model().cache_layout();
        let key_config = engine.codebooks().key[0].config();
        let value_config = engine.codebooks().value[0].config();
        let n_layers = engine.model().config().n_layers;

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, engine.config().block_tokens as u32);
        put_u32(&mut out, n_layers as u32);
        put_u32(&mut out, layout.n_kv_heads as u32);
        put_u32(&mut out, layout.head_dim as u32);
        put_u32(&mut out, key_config.m as u32);
        out.push(key_config.nbits);
        put_u32(&mut out, value_config.m as u32);
        out.push(value_config.nbits);
        put_u32_slice(&mut out, &[1, 2]); // history: 2 tokens
        put_u32(&mut out, 0); // no sealed blocks
                              // Private tails carry a *different* geometry than the header claims.
        let bad_config = PqConfig::new(key_config.m, key_config.nbits / 2).unwrap();
        let mut bad = PqCodes::new(bad_config);
        bad.push(&vec![0u16; bad_config.m]);
        bad.push(&vec![1u16; bad_config.m]);
        for _ in 0..n_layers {
            for _ in 0..2 * layout.n_kv_heads {
                put_codes(&mut out, &bad);
            }
        }
        for _ in 0..n_layers {
            for _ in 0..2 * layout.n_kv_heads {
                put_f32_slice(&mut out, &[]);
            }
        }
        put_u64(&mut out, 2);
        put_u32_slice(&mut out, &[]);
        out.push(0); // no pending
        out.push(0); // no logits
        put_u64(&mut out, 0);

        let err = engine
            .decode_session(&out)
            .expect_err("misconfigured codes must be rejected");
        assert!(err.to_string().contains("misconfigured"), "{err}");
    }
}
