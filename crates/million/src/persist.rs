//! Session persistence: serialize a session's paged PQ cache to disk and
//! restore it for bit-identical continuation.
//!
//! The on-disk payload is dominated by the packed PQ codes — already the
//! compressed wire format — framed by the binary codec in
//! [`million_store::persist`]. A snapshot carries the sealed block chain,
//! each layer's private code tail, the dense residual window, and the decode
//! front (pending token + current logits), so a restored session's next
//! [`crate::InferenceSession::step`] performs the identical arithmetic the
//! original session would have.
//!
//! ## Format v2 (`MLNSES02`)
//!
//! The 8-byte magic is followed by six CRC32-framed sections (each
//! `[len u64][crc32 u32][payload]`, see `million_store::persist`):
//! header (engine geometry + PQ configs), history, sealed blocks, private
//! code tails, dense recent windows, and the decode front. Every write goes
//! through `atomic_write` (temp file + fsync + rename), so a crash mid-write
//! never leaves a torn snapshot at the destination path, and any flipped
//! byte or truncation inside a section surfaces on restore as a typed
//! [`MillionError::Persist`] — never a panic or a silent misread.
//!
//! Restoring into an engine whose store already holds blocks of the same
//! token chain **re-attaches** them instead of duplicating codes (the
//! content-addressed index recognises the chain), so persisted sessions keep
//! participating in prefix sharing. With the store disabled — or a different
//! block granularity — the sealed blocks are folded back into private code
//! tails instead.

use std::path::Path;

use million_quant::pq::{PqCodes, PqConfig};
use million_store::persist::{
    atomic_write, put_block, put_codes, put_f32_slice, put_section, put_u32, put_u32_slice,
    put_u64, PersistError, Reader,
};
use million_store::Block;

use crate::engine::MillionEngine;
use crate::session::InferenceSession;
use crate::MillionError;

const MAGIC: &[u8; 8] = b"MLNSES02";
const MAGIC_V1: &[u8; 8] = b"MLNSES01";

/// Per-head rows of one layer's dense recent window (keys, values).
type DenseLayer = (Vec<Vec<f32>>, Vec<Vec<f32>>);

/// Bit-exact content equality of two sealed blocks (geometry plus every
/// packed code byte).
fn blocks_equal(a: &Block, b: &Block) -> bool {
    a.len() == b.len()
        && a.n_layers() == b.n_layers()
        && a.n_kv_heads() == b.n_kv_heads()
        && a.all_key_codes()
            .iter()
            .zip(b.all_key_codes())
            .all(|(x, y)| x.packed_bytes() == y.packed_bytes())
        && a.all_value_codes()
            .iter()
            .zip(b.all_value_codes())
            .all(|(x, y)| x.packed_bytes() == y.packed_bytes())
}

impl InferenceSession<'_> {
    /// Writes the session's cache state to `path` (flushing the
    /// asynchronous quantization stream first, so the snapshot is the
    /// steady state).
    ///
    /// The sampler is *not* persisted — a restored session starts with the
    /// default greedy sampler; re-set a custom one with
    /// [`InferenceSession::set_sampler`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be written. The
    /// write is atomic: the bytes land in a temporary sibling, are fsynced,
    /// and are renamed over `path` — a crash mid-write never leaves a torn
    /// snapshot behind.
    pub fn persist<P: AsRef<Path>>(&mut self, path: P) -> std::io::Result<()> {
        self.flush();
        atomic_write(path.as_ref(), &self.encode())
    }

    /// The encoded snapshot bytes, after flushing the asynchronous
    /// quantization stream (the serving engine's checkpoint path composes
    /// these into its own checkpoint files).
    pub(crate) fn snapshot_bytes(&mut self) -> Vec<u8> {
        self.flush();
        self.encode()
    }

    fn encode(&self) -> Vec<u8> {
        let engine = self.engine();
        let layout = engine.model().cache_layout();
        // A built engine always has per-layer codebooks; the zeroed
        // fallback keeps the encoder panic-free and produces a header the
        // decoder rejects as a configuration mismatch.
        let fallback = PqConfig { m: 0, nbits: 0 };
        let key_config = engine
            .codebooks()
            .key
            .first()
            .map_or(fallback, |c| c.config());
        let value_config = engine
            .codebooks()
            .value
            .first()
            .map_or(fallback, |c| c.config());
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);

        // Header: engine geometry and PQ configuration.
        let mut body = Vec::new();
        put_u32(&mut body, engine.config().block_tokens as u32);
        put_u32(&mut body, self.caches.len() as u32);
        put_u32(&mut body, layout.n_kv_heads as u32);
        put_u32(&mut body, layout.head_dim as u32);
        put_u32(&mut body, key_config.m as u32);
        body.push(key_config.nbits);
        put_u32(&mut body, value_config.m as u32);
        body.push(value_config.nbits);
        put_section(&mut out, &body);

        // Token history.
        body.clear();
        put_u32_slice(&mut body, &self.history);
        put_section(&mut out, &body);

        // Sealed block chain.
        body.clear();
        let blocks = self.chain.as_ref().map_or(&[][..], |c| c.blocks());
        put_u32(&mut body, blocks.len() as u32);
        for (_, block) in blocks {
            put_block(&mut body, block);
        }
        put_section(&mut out, &body);

        // Per-layer private code tails.
        body.clear();
        for cache in &self.caches {
            for codes in cache
                .private_key_codes()
                .iter()
                .chain(cache.private_value_codes())
            {
                put_codes(&mut body, codes);
            }
        }
        put_section(&mut out, &body);

        // Per-layer dense recent windows.
        body.clear();
        for cache in &self.caches {
            for row in cache
                .recent_key_rows()
                .iter()
                .chain(cache.recent_value_rows())
            {
                put_f32_slice(&mut body, row);
            }
        }
        put_section(&mut out, &body);

        // Decode front.
        body.clear();
        put_u64(&mut body, self.prompt_tokens as u64);
        put_u32_slice(&mut body, &self.generated);
        match self.pending {
            Some(token) => {
                body.push(1);
                put_u32(&mut body, token);
            }
            None => body.push(0),
        }
        match &self.cur_logits {
            Some(logits) => {
                body.push(1);
                put_f32_slice(&mut body, logits);
            }
            None => body.push(0),
        }
        put_u64(&mut body, self.prefix_reused as u64);
        put_section(&mut out, &body);
        out
    }
}

impl MillionEngine {
    /// Restores a session persisted with [`InferenceSession::persist`].
    ///
    /// The snapshot must have been produced by an engine with the same
    /// geometry (layers, heads, head dimension, PQ configuration) **and the
    /// same weights and codebooks** — continuation is only meaningful, and
    /// the store's content addressing only sound, for the engine that
    /// encoded the codes. Geometry is validated; weight identity is the
    /// caller's contract.
    ///
    /// # Errors
    ///
    /// Returns [`MillionError::Persist`] if the file cannot be read, is
    /// corrupt, or disagrees with this engine's geometry.
    pub fn restore_session<P: AsRef<Path>>(
        &self,
        path: P,
    ) -> Result<InferenceSession<'_>, MillionError> {
        let bytes = std::fs::read(path)
            .map_err(|e| MillionError::Persist(format!("cannot read snapshot: {e}")))?;
        self.restore_session_bytes(&bytes)
    }

    /// Restores a session from already-read snapshot bytes — the same
    /// decode path as [`MillionEngine::restore_session`], exposed for
    /// callers (checkpoint recovery, fault-injection harnesses) that manage
    /// the I/O themselves.
    ///
    /// # Errors
    ///
    /// Returns [`MillionError::Persist`] on any malformed input: truncation
    /// at any byte, a checksum mismatch in any section, or a geometry
    /// disagreement with this engine.
    pub fn restore_session_bytes(
        &self,
        bytes: &[u8],
    ) -> Result<InferenceSession<'_>, MillionError> {
        self.decode_session(bytes)
            .map_err(|e| MillionError::Persist(e.to_string()))
    }

    fn decode_session(&self, bytes: &[u8]) -> Result<InferenceSession<'_>, PersistError> {
        let corrupt = |msg: &str| PersistError::Corrupt(msg.to_string());
        let done = |r: &Reader, section: &str| -> Result<(), PersistError> {
            if r.is_exhausted() {
                Ok(())
            } else {
                Err(PersistError::Corrupt(format!(
                    "trailing bytes in {section} section"
                )))
            }
        };
        let mut r = Reader::new(bytes);
        let mut magic = [0u8; 8];
        for slot in magic.iter_mut() {
            *slot = r.get_u8()?;
        }
        if &magic == MAGIC_V1 {
            return Err(corrupt(
                "snapshot format v1 (MLNSES01) predates CRC framing and is no longer readable",
            ));
        }
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }

        let mut h = Reader::new(r.get_section()?);
        let snapshot_bt = h.get_u32()? as usize;
        let layout = self.model().cache_layout();
        let n_layers = h.get_u32()? as usize;
        let n_kv_heads = h.get_u32()? as usize;
        let head_dim = h.get_u32()? as usize;
        if n_layers != self.model().config().n_layers
            || n_kv_heads != layout.n_kv_heads
            || head_dim != layout.head_dim
        {
            return Err(corrupt("model geometry mismatch"));
        }
        let read_config = |r: &mut Reader| -> Result<PqConfig, PersistError> {
            let m = r.get_u32()? as usize;
            let nbits = r.get_u8()?;
            PqConfig::new(m, nbits).map_err(|e| PersistError::Corrupt(e.to_string()))
        };
        let key_config = read_config(&mut h)?;
        let value_config = read_config(&mut h)?;
        let own_key = self.codebooks().key.first().map(|c| c.config());
        let own_value = self.codebooks().value.first().map(|c| c.config());
        if own_key != Some(key_config) || own_value != Some(value_config) {
            return Err(corrupt("PQ configuration mismatch"));
        }
        done(&h, "header")?;

        let mut s = Reader::new(r.get_section()?);
        let history = s.get_u32_slice()?;
        done(&s, "history")?;

        let mut s = Reader::new(r.get_section()?);
        let n_blocks = s.get_u32()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        for _ in 0..n_blocks {
            let block = s.get_block()?;
            if block.n_layers() != n_layers || block.n_kv_heads() != n_kv_heads {
                return Err(corrupt("sealed block geometry mismatch"));
            }
            for layer in 0..n_layers {
                for h in 0..n_kv_heads {
                    if block.key_codes(layer, h).config() != key_config
                        || block.value_codes(layer, h).config() != value_config
                    {
                        return Err(corrupt("sealed block code configuration mismatch"));
                    }
                }
            }
            blocks.push(block);
        }
        done(&s, "block")?;

        // Per-layer private tails and dense windows: every code sequence and
        // dense row is validated here (config, equal lengths across heads
        // and layers) so a corrupt snapshot surfaces as an error instead of
        // tripping cache-construction assertions later.
        let mut s = Reader::new(r.get_section()?);
        let mut private: Vec<(Vec<PqCodes>, Vec<PqCodes>)> = Vec::with_capacity(n_layers);
        let mut private_len = None;
        for _ in 0..n_layers {
            let mut keys = Vec::with_capacity(n_kv_heads);
            let mut values = Vec::with_capacity(n_kv_heads);
            for _ in 0..n_kv_heads {
                keys.push(s.get_codes()?);
            }
            for _ in 0..n_kv_heads {
                values.push(s.get_codes()?);
            }
            let first_len = keys.first().map_or(0, |c| c.len());
            let len = *private_len.get_or_insert(first_len);
            let keys_ok = keys
                .iter()
                .all(|c| c.config() == key_config && c.len() == len);
            let values_ok = values
                .iter()
                .all(|c| c.config() == value_config && c.len() == len);
            if !keys_ok || !values_ok {
                return Err(corrupt("private code tail is ragged or misconfigured"));
            }
            private.push((keys, values));
        }
        done(&s, "private tail")?;

        let mut s = Reader::new(r.get_section()?);
        let mut dense: Vec<DenseLayer> = Vec::with_capacity(n_layers);
        let mut dense_len = None;
        for _ in 0..n_layers {
            let mut keys = Vec::with_capacity(n_kv_heads);
            let mut values = Vec::with_capacity(n_kv_heads);
            for _ in 0..n_kv_heads {
                keys.push(s.get_f32_slice()?);
            }
            for _ in 0..n_kv_heads {
                values.push(s.get_f32_slice()?);
            }
            let first_len = keys.first().map_or(0, |row| row.len());
            let len = *dense_len.get_or_insert(first_len);
            if !len.is_multiple_of(head_dim)
                || keys.iter().chain(values.iter()).any(|row| row.len() != len)
            {
                return Err(corrupt("dense recent window is ragged"));
            }
            dense.push((keys, values));
        }
        done(&s, "dense window")?;

        let mut s = Reader::new(r.get_section()?);
        let prompt_tokens = s.get_len()?;
        let generated = s.get_u32_slice()?;
        let pending = if s.get_u8()? == 1 {
            Some(s.get_u32()?)
        } else {
            None
        };
        let cur_logits = if s.get_u8()? == 1 {
            Some(s.get_f32_slice()?)
        } else {
            None
        };
        let prefix_reused = s.get_len()?;
        done(&s, "decode front")?;
        if !r.is_exhausted() {
            return Err(corrupt("trailing bytes after snapshot"));
        }

        let mut session = InferenceSession::new(self, 0, false);
        // Re-attach the sealed chain through the store when granularities
        // agree — deduplicating against resident sessions — otherwise fold
        // the blocks back into private code tails. A resident block is
        // adopted only if its codes are bit-identical to the snapshot's
        // (token-chain identity alone is not sufficient: the same tokens
        // admitted through a different prefill/turn segmentation yield
        // different codes); on a content mismatch the snapshot's own codes
        // for that block and everything after it stay private — restore
        // never changes the session's arithmetic.
        let via_store = self
            .store()
            .is_some_and(|s| s.block_tokens() == snapshot_bt && snapshot_bt > 0)
            && blocks.iter().all(|b| b.len() == snapshot_bt);
        let mut folded_blocks: Vec<Block> = Vec::new();
        if via_store {
            let Some(chain) = session.chain.as_mut() else {
                return Err(corrupt("store-backed snapshot without a block chain"));
            };
            let store = chain.store().clone();
            let mut pos = 0usize;
            let mut iter = blocks.into_iter();
            for block in iter.by_ref() {
                let len = block.len();
                let tokens = history
                    .get(pos..pos + len)
                    .ok_or_else(|| corrupt("history shorter than sealed chain"))?;
                let (id, arc) = match store.lookup_child(chain.last_id(), tokens) {
                    Some((id, resident)) => {
                        if !blocks_equal(&resident, &block) {
                            store.release(id);
                            folded_blocks.push(block);
                            break;
                        }
                        (id, resident)
                    }
                    None => store.insert_child(chain.last_id(), tokens, block),
                };
                pos += len;
                for cache in &mut session.caches {
                    cache.attach_shared_block(arc.clone());
                }
                chain.push(id, arc);
            }
            folded_blocks.extend(iter);
        } else {
            folded_blocks = blocks;
        }
        for (layer, (cache, (mut keys, mut values))) in
            session.caches.iter_mut().zip(private).enumerate()
        {
            if !folded_blocks.is_empty() {
                for (h, merged) in keys.iter_mut().enumerate() {
                    let mut folded = PqCodes::new(key_config);
                    for block in &folded_blocks {
                        folded.append(block.key_codes(layer, h));
                    }
                    folded.append(merged);
                    *merged = folded;
                }
                for (h, merged) in values.iter_mut().enumerate() {
                    let mut folded = PqCodes::new(value_config);
                    for block in &folded_blocks {
                        folded.append(block.value_codes(layer, h));
                    }
                    folded.append(merged);
                    *merged = folded;
                }
            }
            let (dense_k, dense_v) = dense.remove(0);
            cache.restore_parts(keys, values, dense_k, dense_v);
        }
        if session.cached_tokens() != history.len() {
            return Err(corrupt("token history disagrees with cache length"));
        }
        session.history = history;
        session.prompt_tokens = prompt_tokens;
        session.generated = generated;
        session.pending = pending;
        session.cur_logits = cur_logits;
        session.prefix_reused = prefix_reused;
        Ok(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{engine, prompt};
    use crate::GenerationOptions;

    /// A hand-built snapshot whose header matches `engine` but whose
    /// private-tail codes use the wrong bit width must come back as a
    /// `MillionError::Persist`, never a panic (the restore error contract
    /// covers arbitrary on-disk corruption, not just truncation).
    #[test]
    fn misconfigured_code_sections_error_instead_of_panicking() {
        let engine = engine(false, 40);
        let layout = engine.model().cache_layout();
        let key_config = engine.codebooks().key[0].config();
        let value_config = engine.codebooks().value[0].config();
        let n_layers = engine.model().config().n_layers;

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        let mut body = Vec::new();
        put_u32(&mut body, engine.config().block_tokens as u32);
        put_u32(&mut body, n_layers as u32);
        put_u32(&mut body, layout.n_kv_heads as u32);
        put_u32(&mut body, layout.head_dim as u32);
        put_u32(&mut body, key_config.m as u32);
        body.push(key_config.nbits);
        put_u32(&mut body, value_config.m as u32);
        body.push(value_config.nbits);
        put_section(&mut out, &body);
        body.clear();
        put_u32_slice(&mut body, &[1, 2]); // history: 2 tokens
        put_section(&mut out, &body);
        body.clear();
        put_u32(&mut body, 0); // no sealed blocks
        put_section(&mut out, &body);
        // Private tails carry a *different* geometry than the header claims.
        body.clear();
        let bad_config = PqConfig::new(key_config.m, key_config.nbits / 2).unwrap();
        let mut bad = PqCodes::new(bad_config);
        bad.push(&vec![0u16; bad_config.m]);
        bad.push(&vec![1u16; bad_config.m]);
        for _ in 0..n_layers {
            for _ in 0..2 * layout.n_kv_heads {
                put_codes(&mut body, &bad);
            }
        }
        put_section(&mut out, &body);
        body.clear();
        for _ in 0..n_layers {
            for _ in 0..2 * layout.n_kv_heads {
                put_f32_slice(&mut body, &[]);
            }
        }
        put_section(&mut out, &body);
        body.clear();
        put_u64(&mut body, 2);
        put_u32_slice(&mut body, &[]);
        body.push(0); // no pending
        body.push(0); // no logits
        put_u64(&mut body, 0);
        put_section(&mut out, &body);

        let err = engine
            .decode_session(&out)
            .expect_err("misconfigured codes must be rejected");
        assert!(err.to_string().contains("misconfigured"), "{err}");
    }

    /// A mid-generation session snapshot for the corruption sweeps below.
    fn snapshot(engine: &MillionEngine) -> Vec<u8> {
        let mut session = engine.session();
        session.prefill(&prompt());
        let _ = session.generate(&GenerationOptions::max_tokens(6));
        session.snapshot_bytes()
    }

    /// Kill-point sweep: a snapshot truncated at *any* byte — every section
    /// boundary plus a stride through each section's interior — must restore
    /// as a typed error, never a panic or a silent partial read.
    #[test]
    fn truncation_at_any_point_is_a_typed_error() {
        let engine = engine(false, 41);
        let bytes = snapshot(&engine);
        assert!(
            engine.restore_session_bytes(&bytes).is_ok(),
            "uncut snapshot restores"
        );

        // Walk the section frames to collect every boundary offset.
        let mut boundaries = vec![0usize, MAGIC.len()];
        let mut pos = MAGIC.len();
        while pos < bytes.len() {
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("frame")) as usize;
            // After the length, after the CRC, and after the payload.
            boundaries.extend([pos + 8, pos + 12, pos + 12 + len]);
            pos += 12 + len;
        }
        assert_eq!(pos, bytes.len(), "frame walk covers the snapshot");
        let cuts: Vec<usize> = boundaries
            .iter()
            .copied()
            .chain((0..bytes.len()).step_by(97))
            .filter(|&c| c < bytes.len())
            .collect();
        for cut in cuts {
            let err = engine
                .restore_session_bytes(&bytes[..cut])
                .expect_err(&format!("cut at byte {cut}/{} restores", bytes.len()));
            assert!(matches!(err, MillionError::Persist(_)));
        }
    }

    /// Any flipped byte inside a CRC-covered section payload is detected by
    /// the section checksum.
    #[test]
    fn flipped_bytes_in_every_section_are_detected() {
        let engine = engine(false, 42);
        let bytes = snapshot(&engine);
        let mut pos = MAGIC.len();
        let mut section = 0;
        while pos < bytes.len() {
            let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("frame")) as usize;
            let payload = pos + 12..pos + 12 + len;
            // First, last, and a stride of interior payload bytes.
            let targets: Vec<usize> = [payload.start, payload.end.saturating_sub(1)]
                .into_iter()
                .chain(payload.clone().step_by(61))
                .filter(|i| payload.contains(i))
                .collect();
            for i in targets {
                let mut bad = bytes.clone();
                bad[i] ^= 0x10;
                let err = engine.restore_session_bytes(&bad).expect_err(&format!(
                    "flip at byte {i} in section {section} went undetected"
                ));
                assert!(
                    err.to_string().contains("checksum mismatch"),
                    "section {section} flip at {i}: {err}"
                );
            }
            pos += 12 + len;
            section += 1;
        }
        assert_eq!(section, 6, "snapshot carries six sections");
    }

    /// The malformed-input audit: zero-length files, a bare magic, the
    /// retired v1 magic, and trailing garbage each get a distinct typed
    /// error.
    #[test]
    fn malformed_snapshots_error_cleanly() {
        let engine = engine(false, 43);
        let err = engine.restore_session_bytes(&[]).expect_err("zero-length");
        assert!(err.to_string().contains("truncated"), "{err}");
        let err = engine
            .restore_session_bytes(&MAGIC[..4])
            .expect_err("truncated magic");
        assert!(err.to_string().contains("truncated"), "{err}");
        let err = engine
            .restore_session_bytes(MAGIC)
            .expect_err("magic with no sections");
        assert!(err.to_string().contains("truncated"), "{err}");
        let err = engine
            .restore_session_bytes(b"MLNSES01rest-of-an-old-snapshot")
            .expect_err("v1 snapshot");
        assert!(err.to_string().contains("MLNSES01"), "{err}");
        let err = engine
            .restore_session_bytes(b"NOTMAGIC")
            .expect_err("foreign bytes");
        assert!(err.to_string().contains("bad magic"), "{err}");
        let mut trailing = snapshot(&engine);
        trailing.extend_from_slice(b"garbage");
        let err = engine
            .restore_session_bytes(&trailing)
            .expect_err("trailing garbage");
        assert!(err.to_string().contains("trailing bytes"), "{err}");
        // A non-persist path never existed for directories: reading one
        // surfaces the I/O error as MillionError::Persist too.
        let err = engine
            .restore_session(std::env::temp_dir())
            .expect_err("directory is not a snapshot");
        assert!(matches!(err, MillionError::Persist(_)));
    }
}
