//! Asynchronous quantization worker — the software analogue of the paper's
//! low-priority CUDA stream.
//!
//! During decoding, freshly generated keys/values are staged densely in the
//! recent window of each layer's [`million_kvcache::PqKvCache`]. Instead of
//! encoding them on the critical path, the session ships them to this worker;
//! the worker encodes them into PQ codes and posts the result back. Sessions
//! absorb finished blocks at the *start of the next decode step*, which
//! mirrors the paper's observation that cached codes are not needed until the
//! next token's attention — so quantization never blocks decoding and
//! attention never misses a token (the dense copy stays visible until the
//! codes arrive).
//!
//! One worker can serve many concurrent [`crate::InferenceSession`]s: every
//! request and result carries a `session` tag, and the
//! [`crate::BatchScheduler`] routes finished blocks back to the session that
//! submitted them.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use million_kvcache::pq_cache::EncodedTokens;
use million_kvcache::{CacheLayout, PqKvCache};
use million_quant::pq::PqCodebook;
use million_tensor::Matrix;

/// A request to encode a block of dense keys/values belonging to one layer of
/// one session.
#[derive(Debug, Clone)]
pub struct EncodeRequest {
    /// Session the block belongs to (0 for a standalone session).
    pub session: usize,
    /// Layer the block belongs to.
    pub layer: usize,
    /// `[tokens, n_kv_heads * head_dim]` keys (positional embedding applied).
    pub keys: Matrix,
    /// `[tokens, n_kv_heads * head_dim]` values.
    pub values: Matrix,
}

/// A finished encode job.
#[derive(Debug, Clone)]
pub struct EncodeResult {
    /// Session the block belongs to (0 for a standalone session).
    pub session: usize,
    /// Layer the block belongs to.
    pub layer: usize,
    /// Number of tokens encoded.
    pub tokens: usize,
    /// The per-head PQ codes, ready to be absorbed by the layer's cache.
    pub encoded: EncodedTokens,
}

/// Background PQ-encoding worker with per-layer codebooks, shared by one or
/// more sessions of the same engine.
#[derive(Debug)]
pub struct QuantWorker {
    request_tx: Option<Sender<EncodeRequest>>,
    result_rx: Receiver<EncodeResult>,
    handle: Option<JoinHandle<()>>,
    in_flight: usize,
}

impl QuantWorker {
    /// Spawns the worker thread.
    ///
    /// # Panics
    ///
    /// Panics if the codebook vectors are empty or of different lengths.
    pub fn spawn(
        key_codebooks: Vec<Arc<PqCodebook>>,
        value_codebooks: Vec<Arc<PqCodebook>>,
        layout: CacheLayout,
    ) -> Self {
        assert!(!key_codebooks.is_empty(), "at least one layer required");
        assert_eq!(
            key_codebooks.len(),
            value_codebooks.len(),
            "key/value codebook count mismatch"
        );
        let (request_tx, request_rx) = channel::<EncodeRequest>();
        let (result_tx, result_rx) = channel::<EncodeResult>();
        let handle = std::thread::Builder::new()
            .name("million-quant-worker".into())
            .spawn(move || {
                while let Ok(req) = request_rx.recv() {
                    let encoded = PqKvCache::encode_tokens(
                        &key_codebooks[req.layer],
                        &value_codebooks[req.layer],
                        &layout,
                        &req.keys,
                        &req.values,
                    );
                    let result = EncodeResult {
                        session: req.session,
                        layer: req.layer,
                        tokens: req.keys.rows(),
                        encoded,
                    };
                    if result_tx.send(result).is_err() {
                        break;
                    }
                }
            })
            .expect("failed to spawn quantization worker");
        Self {
            request_tx: Some(request_tx),
            result_rx,
            handle: Some(handle),
            in_flight: 0,
        }
    }

    /// Number of submitted blocks whose results have not been drained yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Submits a block for background encoding.
    ///
    /// # Panics
    ///
    /// Panics if the worker has already been shut down.
    pub fn submit(&mut self, request: EncodeRequest) {
        self.request_tx
            .as_ref()
            .expect("worker already shut down")
            .send(request)
            .expect("quantization worker disappeared");
        self.in_flight += 1;
    }

    /// Collects every finished block without waiting.
    pub fn try_drain(&mut self) -> Vec<EncodeResult> {
        let mut out = Vec::new(); // analyze: allow(no-alloc) — empty Vec::new is allocation-free; it grows only when a finished encode batch arrived (block-boundary path)
        while let Ok(result) = self.result_rx.try_recv() {
            self.in_flight -= 1;
            out.push(result);
        }
        out
    }

    /// Blocks until every submitted block has been encoded and returns the
    /// remaining results.
    pub fn drain_all(&mut self) -> Vec<EncodeResult> {
        let mut out = Vec::new();
        while self.in_flight > 0 {
            match self.result_rx.recv() {
                Ok(result) => {
                    self.in_flight -= 1;
                    out.push(result);
                }
                Err(_) => break,
            }
        }
        out
    }
}

impl Drop for QuantWorker {
    fn drop(&mut self) {
        // Closing the request channel lets the worker loop exit.
        self.request_tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use million_quant::pq::{PqConfig, PqTrainOptions};
    use million_tensor::init::{normal_matrix, seeded_rng};

    fn codebook(seed: u64, dim: usize) -> Arc<PqCodebook> {
        let mut rng = seeded_rng(seed);
        let samples = normal_matrix(&mut rng, 256, dim, 0.0, 1.0);
        Arc::new(
            PqCodebook::train(
                &PqConfig::new(4, 4).unwrap(),
                &samples,
                &PqTrainOptions::default(),
                seed,
            )
            .unwrap(),
        )
    }

    #[test]
    fn worker_encodes_submitted_blocks() {
        let layout = CacheLayout::new(2, 8);
        let kc = codebook(0, 8);
        let vc = codebook(1, 8);
        let mut worker = QuantWorker::spawn(vec![kc.clone(), kc], vec![vc.clone(), vc], layout);

        let mut rng = seeded_rng(2);
        let keys = normal_matrix(&mut rng, 5, 16, 0.0, 1.0);
        let values = normal_matrix(&mut rng, 5, 16, 0.0, 1.0);
        worker.submit(EncodeRequest {
            session: 0,
            layer: 1,
            keys,
            values,
        });
        assert_eq!(worker.in_flight(), 1);
        let results = worker.drain_all();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].layer, 1);
        assert_eq!(results[0].tokens, 5);
        assert_eq!(results[0].encoded.key_codes.len(), 2);
        assert_eq!(worker.in_flight(), 0);
    }

    #[test]
    fn background_encoding_matches_synchronous_encoding() {
        let layout = CacheLayout::new(1, 8);
        let kc = codebook(3, 8);
        let vc = codebook(4, 8);
        let mut worker = QuantWorker::spawn(vec![kc.clone()], vec![vc.clone()], layout);

        let mut rng = seeded_rng(5);
        let keys = normal_matrix(&mut rng, 12, 8, 0.0, 1.0);
        let values = normal_matrix(&mut rng, 12, 8, 0.0, 1.0);
        worker.submit(EncodeRequest {
            session: 0,
            layer: 0,
            keys: keys.clone(),
            values: values.clone(),
        });
        let background = worker.drain_all().pop().unwrap().encoded;
        let sync = PqKvCache::encode_tokens(&kc, &vc, &layout, &keys, &values);
        let mut a = vec![0u16; 4];
        let mut b = vec![0u16; 4];
        for t in 0..12 {
            background.key_codes[0].read_into(t, &mut a);
            sync.key_codes[0].read_into(t, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn session_tags_round_trip_through_the_worker() {
        let layout = CacheLayout::new(1, 8);
        let mut worker = QuantWorker::spawn(vec![codebook(10, 8)], vec![codebook(11, 8)], layout);
        let mut rng = seeded_rng(12);
        for session in [3usize, 7, 5] {
            worker.submit(EncodeRequest {
                session,
                layer: 0,
                keys: normal_matrix(&mut rng, 2, 8, 0.0, 1.0),
                values: normal_matrix(&mut rng, 2, 8, 0.0, 1.0),
            });
        }
        let mut tags: Vec<usize> = worker.drain_all().iter().map(|r| r.session).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![3, 5, 7]);
    }

    #[test]
    fn try_drain_on_empty_worker_returns_nothing() {
        let layout = CacheLayout::new(1, 8);
        let mut worker = QuantWorker::spawn(vec![codebook(6, 8)], vec![codebook(7, 8)], layout);
        assert!(worker.try_drain().is_empty());
    }

    #[test]
    fn dropping_worker_shuts_down_cleanly() {
        let layout = CacheLayout::new(1, 8);
        let worker = QuantWorker::spawn(vec![codebook(8, 8)], vec![codebook(9, 8)], layout);
        drop(worker);
    }
}
