//! Engine configuration.

use million_quant::pq::{PqConfig, PqTrainOptions};
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::MillionEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MillionConfig {
    /// Product-quantization geometry per head vector (`M` subspaces of
    /// `nbits`-bit codes).
    pub pq: PqConfig,
    /// Number of most recent tokens kept in full precision during decoding.
    /// The paper's stress evaluations use 0; the asynchronous pipeline keeps
    /// the not-yet-encoded tokens here regardless.
    pub residual_len: usize,
    /// Run PQ encoding on a background worker thread (the paper's
    /// low-priority CUDA stream) instead of on the decode critical path.
    pub async_quant: bool,
    /// Maximum number of calibration tokens sampled per layer for codebook
    /// training.
    pub calibration_tokens: usize,
    /// k-means options used during codebook training.
    #[serde(skip, default = "PqTrainOptions::default")]
    pub train_options: PqTrainOptions,
    /// Seed for codebook training.
    pub seed: u64,
    /// Tokens per sealed block of the engine's copy-on-write code store.
    /// Sessions seal their quantized history into immutable, ref-counted,
    /// content-addressed blocks of this many tokens (enabling cross-session
    /// prefix sharing and cheap persistence). `0` disables the store —
    /// sessions then keep their codes fully private.
    pub block_tokens: usize,
    /// Retention byte budget of the code store: when nonzero, blocks whose
    /// last session reference is released stay resident (still discoverable
    /// by prefix-sharing admissions) until total store bytes exceed this
    /// budget, at which point the least-recently-released unreferenced
    /// blocks are evicted first. `0` keeps the strict behaviour — a block
    /// lives exactly as long as its references. Referenced blocks are never
    /// evicted, so live sessions can exceed the budget (it bounds caching,
    /// not correctness).
    pub store_byte_budget: usize,
    /// When `true`, a newly admitted session looks its prompt up in the
    /// store's prefix index and attaches already-resident blocks instead of
    /// prefilling them — skipping both the prefill compute and the code
    /// memory for the matched prefix. The matched prefix is then attended in
    /// quantized form (exactly as a multi-turn continuation would see it),
    /// which is why sharing is opt-in: an attached session is bit-identical
    /// to an unshared session admitted via `prefill(prefix)` +
    /// `append_prompt(rest)`, not to one that cold-prefilled the whole
    /// prompt in full precision.
    pub prefix_sharing: bool,
}

impl MillionConfig {
    /// A configuration with an explicit PQ geometry and default pipeline
    /// settings.
    pub fn new(pq: PqConfig) -> Self {
        Self {
            pq,
            residual_len: 0,
            async_quant: true,
            calibration_tokens: 2048,
            train_options: PqTrainOptions::default(),
            seed: 0,
            block_tokens: 32,
            store_byte_budget: 0,
            prefix_sharing: false,
        }
    }

    /// 4-bit-per-channel configuration for a model with the given head
    /// dimension: `M = head_dim / 2`, 8-bit codes (the paper's `(64, 8)`
    /// point at `head_dim = 128`).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is not divisible by 2.
    pub fn four_bit(head_dim: usize) -> Self {
        assert!(head_dim.is_multiple_of(2), "head_dim must be even");
        Self::new(PqConfig::new(head_dim / 2, 8).expect("valid PQ config"))
    }

    /// 3-bit-per-channel configuration: `M = head_dim / 4`, 12-bit codes (the
    /// paper's `(32, 12)` point at `head_dim = 128`).
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is not divisible by 4.
    pub fn three_bit(head_dim: usize) -> Self {
        assert!(
            head_dim.is_multiple_of(4),
            "head_dim must be divisible by 4"
        );
        Self::new(PqConfig::new(head_dim / 4, 12).expect("valid PQ config"))
    }

    /// 2-bit-per-channel configuration: `M = head_dim / 8`, 16-bit codes.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` is not divisible by 8.
    pub fn two_bit(head_dim: usize) -> Self {
        assert!(
            head_dim.is_multiple_of(8),
            "head_dim must be divisible by 8"
        );
        Self::new(PqConfig::new(head_dim / 8, 16).expect("valid PQ config"))
    }

    /// Effective bits per KV channel for a given head dimension.
    pub fn bits_per_channel(&self, head_dim: usize) -> f64 {
        self.pq.bits_per_channel(head_dim)
    }

    /// Disables the asynchronous quantization worker (ablation E9).
    pub fn with_sync_quant(mut self) -> Self {
        self.async_quant = false;
        self
    }

    /// Sets the dense recent-window length.
    pub fn with_residual_len(mut self, residual_len: usize) -> Self {
        self.residual_len = residual_len;
        self
    }

    /// Sets the sealed-block granularity of the copy-on-write code store
    /// (`0` disables the store entirely).
    pub fn with_block_tokens(mut self, block_tokens: usize) -> Self {
        self.block_tokens = block_tokens;
        self
    }

    /// Lets the store retain up to `bytes` of unreferenced blocks for later
    /// prefix-sharing admissions (see [`MillionConfig::store_byte_budget`]).
    pub fn with_store_byte_budget(mut self, bytes: usize) -> Self {
        self.store_byte_budget = bytes;
        self
    }

    /// Enables cross-session prompt-prefix sharing at admission (see
    /// [`MillionConfig::prefix_sharing`] for the equivalence class this
    /// changes).
    pub fn with_prefix_sharing(mut self) -> Self {
        self.prefix_sharing = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_hit_their_bit_budgets() {
        assert!((MillionConfig::four_bit(128).bits_per_channel(128) - 4.0).abs() < 1e-9);
        assert!((MillionConfig::three_bit(128).bits_per_channel(128) - 3.0).abs() < 1e-9);
        assert!((MillionConfig::two_bit(128).bits_per_channel(128) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_configuration_at_head_dim_128_matches_footnote() {
        // Footnote 2 of the paper: (M, nbits) = (64, 8) and (32, 12).
        let four = MillionConfig::four_bit(128);
        assert_eq!(four.pq.m, 64);
        assert_eq!(four.pq.nbits, 8);
        let three = MillionConfig::three_bit(128);
        assert_eq!(three.pq.m, 32);
        assert_eq!(three.pq.nbits, 12);
    }

    #[test]
    fn builders_toggle_pipeline_options() {
        let cfg = MillionConfig::four_bit(32)
            .with_sync_quant()
            .with_residual_len(16)
            .with_block_tokens(64)
            .with_store_byte_budget(1 << 20)
            .with_prefix_sharing();
        assert!(!cfg.async_quant);
        assert_eq!(cfg.residual_len, 16);
        assert_eq!(cfg.block_tokens, 64);
        assert_eq!(cfg.store_byte_budget, 1 << 20);
        assert!(cfg.prefix_sharing);
        let defaults = MillionConfig::four_bit(32);
        assert!(defaults.block_tokens > 0, "store is on by default");
        assert!(!defaults.prefix_sharing, "attachment is opt-in");
        assert_eq!(defaults.store_byte_budget, 0, "strict eviction by default");
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn three_bit_rejects_odd_head_dim() {
        let _ = MillionConfig::three_bit(30);
    }
}
