//! Continuous-batching serving front-end: a request queue, an
//! iteration-level scheduler, streaming handles, and QoS classes.
//!
//! [`crate::BatchScheduler`] (PR 1) ran a *static cohort*: every session was
//! admitted up front and the batch ran to completion, so one long request
//! kept every finished slot idle. A [`ServingEngine`] instead schedules at
//! **iteration granularity** — the unit of work is one decode round, not one
//! request:
//!
//! 1. clients [`ServingEngine::submit`] a [`Request`] (prompt, generation
//!    options, sampler, [`QosClass`]) and get a [`RequestHandle`] back that
//!    streams tokens as they are produced and resolves to the final
//!    [`SessionReport`];
//! 2. every [`ServingEngine::serve_round`] first **retires** finished and
//!    cancelled requests (freeing their slots and KV immediately), then
//!    **admits** pending requests into the freed slots under the admission
//!    policy — resident-session cap plus a KV-byte budget metered against
//!    the physical fleet footprint (session-private bytes + store-resident
//!    bytes, each counted once) — and finally runs one **deficit-weighted
//!    round-robin** pass of decode steps over the resident batch;
//! 3. admission feeds the prompt in fixed-size **prefill chunks**
//!    ([`ServingConfig::prefill_chunk_tokens`]) scheduled as first-class
//!    DWRR work items: a request admits into the *Prefilling* state
//!    (resident store prefixes attach first, when
//!    [`crate::MillionConfig::prefix_sharing`] is on), each round charges it
//!    one chunk of teacher-forced prompt against its class's deficit, and it
//!    transitions to decoding when the prompt is exhausted — so a long
//!    arrival *interleaves* with the batch's decode rounds instead of
//!    freezing them, never stalling resident decodes for more than one
//!    chunk's worth of work. The round in which the final chunk lands is
//!    scheduled exactly like a monolithic admission turn (the request
//!    decodes its first token in that same round), which makes chunking
//!    invisible for prompts no longer than one chunk.
//!
//! **Fairness.** Each resident request accumulates `weight(class)` deficit
//! per round and spends `quantum = min(weight over active residents)` per
//! decode step, so classes get token throughput proportional to their
//! weights (4 : 2 : 1 for interactive : standard : background) and every
//! active request — weight ≥ quantum — decodes at least one token per
//! round: no resident request ever starves. Admission picks the
//! highest-class pending request first (FIFO within a class), with aging:
//! a request that has waited [`ServingConfig::admission_aging_rounds`]
//! rounds is treated as interactive, so backlogged background work cannot
//! be overtaken forever.
//!
//! **Backpressure and cancellation** are first-class: a full pending queue
//! rejects the submission with [`SubmitError::QueueFull`] (the caller sheds
//! load instead of the engine), and [`RequestHandle::cancel`] takes effect
//! at the next round boundary whether the request is still queued or already
//! decoding — a cancelled resident frees its slot exactly like a completed
//! one.
//!
//! Because every session owns independent KV caches, interleaving never
//! changes what attention sees: a request's token stream is bit-identical to
//! running it alone on a fresh session, no matter what the rest of the fleet
//! does (pinned in `tests/serving_api.rs`). The retained-cohort special case
//! of this loop *is* the old scheduler: [`crate::BatchScheduler`] survives
//! as a thin wrapper that admits everything immediately and retires nothing
//! until the end.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use million_model::{Sampler, SamplerState};
use million_store::persist::{atomic_write, put_section, put_u32, put_u32_slice, put_u64, Reader};
use million_telemetry::{Event, EventKind, RetireOutcome};
use serde::Serialize;

use crate::async_quant::QuantWorker;
use crate::engine::MillionEngine;
use crate::fault::FaultPlan;
use crate::observe::{RequestInfo, RequestState, RoundPhase, ServingTelemetry, TelemetrySnapshot};
use crate::scheduler::SessionReport;
use crate::session::{GenerationOptions, InferenceSession, StepResult, StopCriteria};

/// Magic prefix of a serving-engine crash-recovery checkpoint
/// (`request-<id>.ckpt`): request metadata and a `MLNSES02` session
/// snapshot, each in its own CRC32-framed section.
const CKPT_MAGIC: &[u8; 8] = b"MLNCKPT1";

/// Quality-of-service class of a request, ordered from most to least
/// urgent. The class weight sets the request's share of decode throughput
/// (deficit-weighted round-robin) and its admission priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum QosClass {
    /// Latency-sensitive traffic: weight 4.
    Interactive,
    /// The default class: weight 2.
    Standard,
    /// Throughput traffic that yields to everything else: weight 1.
    Background,
}

impl QosClass {
    /// Every class, most urgent first.
    pub const ALL: [QosClass; 3] = [
        QosClass::Interactive,
        QosClass::Standard,
        QosClass::Background,
    ];

    /// Relative decode-throughput share of the class.
    pub fn weight(self) -> u32 {
        match self {
            QosClass::Interactive => 4,
            QosClass::Standard => 2,
            QosClass::Background => 1,
        }
    }

    /// Dense index (position in [`QosClass::ALL`]) for per-class tallies.
    pub fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Standard => 1,
            QosClass::Background => 2,
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Standard => "standard",
            QosClass::Background => "background",
        }
    }
}

/// One unit of serving work: a prompt plus how to decode it.
#[derive(Debug, Clone)]
pub struct Request {
    /// The prompt tokens to admit.
    pub prompt: Vec<u32>,
    /// Token budget and stop criteria.
    pub options: GenerationOptions,
    /// Sampler driving this request's decode steps.
    pub sampler: Sampler,
    /// Scheduling class (admission priority and throughput share).
    pub class: QosClass,
    /// Optional wall-clock deadline, measured from submission: once
    /// exceeded, the request is cancelled at the next round boundary —
    /// dropped from the queue if still pending, retired with whatever it
    /// produced if resident — and its [`SessionReport::timed_out`] flag is
    /// set (distinct from client cancellation). `None` = no deadline.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// A greedy, standard-class request.
    pub fn new(prompt: Vec<u32>, options: GenerationOptions) -> Self {
        Self {
            prompt,
            options,
            sampler: Sampler::greedy(),
            class: QosClass::Standard,
            deadline_ms: None,
        }
    }

    /// Sets the sampler.
    #[must_use]
    pub fn with_sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the QoS class.
    #[must_use]
    pub fn with_class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// Sets a wall-clock deadline in milliseconds from submission (see
    /// [`Request::deadline_ms`]).
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// Why a submission was rejected. Rejection is synchronous backpressure:
/// nothing about the engine changed, the caller decides whether to retry,
/// shed, or divert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is at [`ServingConfig::queue_capacity`].
    QueueFull {
        /// The configured capacity the queue is at.
        capacity: usize,
    },
    /// The prompt holds no tokens.
    EmptyPrompt,
    /// The prompt cannot fit the model's context window with at least one
    /// generated token.
    PromptTooLong {
        /// Tokens submitted.
        len: usize,
        /// The model's context window.
        max_seq_len: usize,
    },
    /// The engine is draining ([`ServingEngine::drain`]): admission is
    /// permanently closed on this instance.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "pending queue is full ({capacity} requests)")
            }
            SubmitError::EmptyPrompt => write!(f, "prompt must hold at least one token"),
            SubmitError::PromptTooLong { len, max_seq_len } => write!(
                f,
                "prompt of {len} tokens cannot fit the {max_seq_len}-token context window"
            ),
            SubmitError::Draining => write!(f, "engine is draining; admission is closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Identifier of a submitted request, unique within one [`ServingEngine`]
/// (assigned in submission order starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

impl RequestId {
    /// The raw id.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs an id from its raw value — for looking up recovered
    /// sessions when only the wire-format id (e.g. from an SSE frame) is
    /// at hand.
    pub fn from_u64(raw: u64) -> RequestId {
        RequestId(raw)
    }
}

/// State shared between a [`RequestHandle`] and the engine's slot for it.
#[derive(Debug)]
struct HandleShared {
    cancel: AtomicBool,
    report: Mutex<Option<SessionReport>>,
}

/// The client's side of a submitted request: a token stream, a cancel
/// switch, and the final report.
///
/// The handle owns no engine borrow — it can be held (or moved to another
/// thread) while the engine keeps serving. Tokens arrive through a buffered
/// channel as rounds produce them; dropping the handle does not cancel the
/// request.
#[derive(Debug)]
pub struct RequestHandle {
    id: RequestId,
    class: QosClass,
    rx: Receiver<StepResult>,
    shared: Arc<HandleShared>,
    recovered_tokens: usize,
}

impl RequestHandle {
    /// The engine-assigned request id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The request's QoS class.
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// Tokens the request had already produced when its checkpoint was
    /// taken — `0` for ordinary submissions. A handle returned by
    /// [`ServingEngine::recover`] streams only the continuation; a
    /// front-end that already delivered `n` tokens to its client resumes by
    /// skipping the first `n - recovered_tokens()` steps of this stream
    /// (tokens produced between the checkpoint and the crash are replayed
    /// bit-identically).
    pub fn recovered_tokens(&self) -> usize {
        self.recovered_tokens
    }

    /// Requests cancellation. Takes effect at the next round boundary: a
    /// queued request is dropped without admission, a resident one is
    /// retired (its report carries the tokens produced so far and
    /// [`SessionReport::cancelled`] set). Idempotent.
    pub fn cancel(&self) {
        self.shared.cancel.store(true, Ordering::Relaxed);
    }

    /// Pulls the next streamed token if one is ready (never blocks).
    pub fn try_token(&self) -> Option<StepResult> {
        self.rx.try_recv().ok()
    }

    /// Blocks up to `timeout` for the next streamed token — the primitive a
    /// network front-end's per-connection thread pumps instead of spinning
    /// on [`RequestHandle::try_token`]. [`TokenWait::Closed`] means the
    /// engine has retired the request and dropped its sender: every token is
    /// already delivered (or drained) and [`RequestHandle::report`] is about
    /// to be — or already is — available.
    pub fn recv_token(&self, timeout: Duration) -> TokenWait {
        match self.rx.recv_timeout(timeout) {
            Ok(step) => TokenWait::Token(step),
            Err(RecvTimeoutError::Timeout) => TokenWait::Idle,
            Err(RecvTimeoutError::Disconnected) => TokenWait::Closed,
        }
    }

    /// Drains every token streamed since the last call.
    pub fn drain_tokens(&self) -> Vec<StepResult> {
        let mut out = Vec::new();
        while let Ok(step) = self.rx.try_recv() {
            out.push(step);
        }
        out
    }

    /// Whether the request has been retired (completed or cancelled).
    pub fn is_finished(&self) -> bool {
        self.shared
            .report
            .lock()
            .expect("request handle poisoned")
            .is_some()
    }

    /// The final report, once the request has been retired.
    pub fn report(&self) -> Option<SessionReport> {
        self.shared
            .report
            .lock()
            .expect("request handle poisoned")
            .clone()
    }
}

/// Outcome of one blocking [`RequestHandle::recv_token`] wait.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenWait {
    /// A token arrived.
    Token(StepResult),
    /// The timeout elapsed with the request still live (queued or decoding).
    Idle,
    /// The request is retired and its stream is closed; no token will ever
    /// arrive again.
    Closed,
}

/// Admission and queueing policy of a [`ServingEngine`].
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Maximum sessions decoding at once. Freed slots are refilled from the
    /// pending queue at the next round boundary.
    pub max_resident: usize,
    /// Maximum pending (submitted, not yet admitted) requests before
    /// [`ServingEngine::submit`] rejects with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Admission KV budget in bytes, metered against the *unreclaimable*
    /// fleet footprint: resident sessions' private bytes plus the store's
    /// resident bytes (shared blocks counted once), **minus** zero-ref
    /// blocks parked in a budgeted store's cached pool (evictable on
    /// demand, so they never consume admission capacity), plus a
    /// quantized-size estimate of the candidate's prompt. `None` disables
    /// the byte gate. The budget is a soft bound — when no session is
    /// resident the head request is admitted regardless, so serving always
    /// makes progress.
    pub kv_byte_budget: Option<usize>,
    /// Rounds after which a pending request is promoted to interactive
    /// admission priority, so admission-priority traffic cannot overtake a
    /// backlogged class forever.
    pub admission_aging_rounds: u64,
    /// Admission prefill chunk size in tokens. A prompt is admitted into the
    /// *Prefilling* state and teacher-forced one chunk per serve round, so a
    /// long arrival never stalls resident decodes for more than one chunk's
    /// worth of work and stays preemptible (cancel/deadline/drain land at
    /// chunk boundaries). A non-final chunk consumes the slot's whole round
    /// allowance; the round that exhausts the prompt is scheduled exactly
    /// like a monolithic admission turn, so chunking never changes a
    /// request's token stream — only when its tokens are produced. `0`
    /// disables chunking (whole-prompt prefill inside the admission turn).
    pub prefill_chunk_tokens: usize,
    /// Compatibility mode for the static-cohort [`crate::BatchScheduler`]:
    /// finished requests keep their session (and KV) alive and are reported
    /// at [`ServingEngine::shutdown`] instead of being retired per round.
    pub retain_finished: bool,
    /// Whether the engine records serving telemetry: the TTFT /
    /// inter-token / queue-wait / end-to-end latency histograms, per-phase
    /// `serve_round` timing, and the request-lifecycle event journal (see
    /// [`crate::observe::ServingTelemetry`]). When off, the instrumented
    /// paths take **no** `Instant::now()` readings and touch nothing but
    /// the flag — per-request report timing ([`SessionReport::prefill_ns`],
    /// [`SessionReport::queue_wait_ns`], [`SessionReport::first_token_ns`],
    /// [`SessionReport::decode_ns`]) is part of the report contract and
    /// stays on regardless.
    pub telemetry: bool,
    /// Capacity of the request-lifecycle event journal ring (events, not
    /// bytes). The ring is preallocated and drops its oldest entry when
    /// full, so journalling never allocates or blocks serving. `0`
    /// disables journalling while keeping the histograms.
    pub journal_events: usize,
    /// Directory for crash-recovery checkpoints. When set (and
    /// [`ServingConfig::checkpoint_every_rounds`] is non-zero), every
    /// decoding resident is periodically snapshotted to
    /// `dir/request-<id>.ckpt` — sampler state, token budget and stream
    /// progress included — and the file is removed when the request retires
    /// cleanly. After a crash, [`ServingEngine::recover`] re-admits the
    /// survivors for bit-identical continuation. `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in rounds (checkpoints are written at round
    /// boundaries when `round % checkpoint_every_rounds == 0`). `0`
    /// disables checkpointing even when a directory is configured.
    pub checkpoint_every_rounds: u64,
    /// Deterministic fault-injection schedule for chaos testing (see
    /// [`crate::FaultPlan`]): injected `QueueFull` rejections at `submit`,
    /// injected I/O errors on checkpoint/snapshot writes, and short reads
    /// on checkpoint recovery. `None` (the default) injects nothing and
    /// costs nothing on the serving path.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self {
            max_resident: 8,
            queue_capacity: 64,
            kv_byte_budget: None,
            admission_aging_rounds: 64,
            prefill_chunk_tokens: 512,
            retain_finished: false,
            telemetry: true,
            journal_events: 4096,
            checkpoint_dir: None,
            checkpoint_every_rounds: 0,
            fault_plan: None,
        }
    }
}

/// Aggregate serving counters (monotonic; gauges are methods on
/// [`ServingEngine`]). Serializable so metrics endpoints can export it
/// without hand-formatting JSON.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServingStats {
    /// Requests accepted by [`ServingEngine::submit`].
    pub submitted: u64,
    /// Submissions rejected with [`SubmitError::QueueFull`].
    pub rejected: u64,
    /// Requests admitted to a resident slot.
    pub admitted: u64,
    /// Requests retired after completing.
    pub completed: u64,
    /// Requests retired by cancellation (queued or resident).
    pub cancelled: u64,
    /// Requests retired by a missed [`Request::deadline_ms`] (queued or
    /// resident) — counted here, never in `cancelled`.
    pub timed_out: u64,
    /// Scheduling rounds served.
    pub rounds: u64,
    /// High-water pending-queue depth.
    pub max_queue_depth: usize,
    /// High-water resident-session count.
    pub max_resident_sessions: usize,
    /// Decode tokens produced per class, indexed by [`QosClass::index`] —
    /// the fairness ledger the DWRR weights are checked against.
    pub tokens_by_class: [u64; 3],
    /// Prefill chunks executed (a monolithic admission counts as one).
    pub prefill_chunks: u64,
    /// Prompt tokens prefilled per class, indexed by [`QosClass::index`] —
    /// the admission side of the fairness ledger. Tokens satisfied from
    /// resident store prefixes are not counted: attachment costs no prefill
    /// work.
    pub prefill_tokens_by_class: [u64; 3],
    /// Snapshot/checkpoint files written successfully (periodic round
    /// checkpoints, [`ServingEngine::persist_request`], and persist-mode
    /// drains all count here).
    pub snapshot_writes: u64,
    /// Checkpoint restores rejected during [`ServingEngine::recover`] —
    /// corrupt, truncated, or unreadable files, each surfaced as a typed
    /// failure rather than a panic or a silent misread.
    pub snapshot_crc_failures: u64,
}

/// What [`ServingEngine::drain`] did with the work it found in flight.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Queued (never admitted) requests shed with a cancelled report.
    pub shed_queued: usize,
    /// Resident requests decoded to completion during the drain (the
    /// finish-mode path).
    pub finished: usize,
    /// Resident requests snapshotted mid-flight and their snapshot paths
    /// (the persist-mode path); each can be revived later via
    /// [`crate::MillionEngine::restore_session`].
    pub persisted: Vec<(RequestId, PathBuf)>,
    /// Scheduling rounds driven while finishing residents.
    pub rounds: u64,
}

/// What [`ServingEngine::recover`] found in a checkpoint directory.
#[derive(Debug, Default)]
pub struct RecoverReport {
    /// Fresh handles for the re-admitted requests, ordered by request id.
    /// Each handle streams only the tokens produced *after* the checkpoint
    /// (the checkpointed prefix is pre-seeded into the slot's budget and
    /// final report, see [`RequestHandle::recovered_tokens`]).
    pub restored: Vec<RequestHandle>,
    /// Checkpoint files that could not be restored, with the typed reason —
    /// truncation, checksum mismatch, or geometry disagreement. Each is
    /// counted in [`ServingStats::snapshot_crc_failures`]; the files are
    /// left in place for inspection.
    pub failed: Vec<(PathBuf, String)>,
}

/// A submitted request waiting for a slot.
#[derive(Debug)]
struct Pending {
    id: RequestId,
    request: Request,
    shared: Arc<HandleShared>,
    tx: Sender<StepResult>,
    submitted_at: Instant,
    submit_round: u64,
}

impl Pending {
    /// Wall-clock nanoseconds this request has waited since submission —
    /// the single definition of queue wait, read both when a request is
    /// admitted and when it is shed unadmitted, so queued-vs-resident wait
    /// is measured identically.
    fn queue_wait_ns(&self) -> u64 {
        self.submitted_at.elapsed().as_nanos() as u64
    }

    /// Admission priority with aging: a request that has waited
    /// `aging_rounds` is promoted to the top class.
    fn effective_weight(&self, round: u64, aging_rounds: u64) -> u32 {
        if round.saturating_sub(self.submit_round) >= aging_rounds {
            QosClass::Interactive.weight()
        } else {
            self.request.class.weight()
        }
    }

    /// The absolute deadline, if the request carries one.
    fn deadline(&self) -> Option<Instant> {
        self.request
            .deadline_ms
            .map(|ms| self.submitted_at + Duration::from_millis(ms))
    }
}

/// Admission work still owed by a resident in the *Prefilling* state: the
/// request's prompt and how much of it has entered the session's caches
/// (store-attached prefix tokens included in `fed`).
#[derive(Debug)]
struct PrefillJob {
    prompt: Vec<u32>,
    fed: usize,
    /// Round in which the slot's most recent chunk executed. The first
    /// chunk runs inside `admit` — sealing its blocks so later admissions
    /// in the same pass can attach them — and `prefill_round` must not
    /// charge the slot a second chunk in that same round.
    chunked_round: u64,
}

impl PrefillJob {
    fn remaining(&self) -> usize {
        self.prompt.len() - self.fed
    }
}

/// A request resident in a decode slot.
struct Resident<'e> {
    id: RequestId,
    session: InferenceSession<'e>,
    sampler: Sampler,
    options: GenerationOptions,
    class: QosClass,
    tokens: Vec<u32>,
    /// DWRR ledger: grows by `weight(class)` per round, spends `quantum`
    /// per decode step (a non-final prefill chunk spends the whole round's
    /// accrual).
    deficit: u32,
    /// `Some` while the slot is still admitting its prompt in chunks (the
    /// *Prefilling* state); `None` once it decodes. Monolithic admissions
    /// (`prefill_chunk_tokens == 0`) never set it.
    prefill: Option<PrefillJob>,
    shared: Arc<HandleShared>,
    tx: Sender<StepResult>,
    /// When the request was submitted — the anchor for TTFT and
    /// end-to-end latency.
    submitted_at: Instant,
    queue_wait_ns: u64,
    queue_wait_rounds: u64,
    /// Submission-to-first-token latency, set when the first decode token
    /// is produced ([`SessionReport::first_token_ns`]).
    first_token_ns: Option<u64>,
    /// When the most recent decode token was produced. Maintained only
    /// while telemetry is enabled (it feeds the inter-token histogram and
    /// nothing else).
    last_token_at: Option<Instant>,
    stopped_early: bool,
    /// Absolute wall-clock deadline carried over from the request, honoured
    /// at round boundaries.
    deadline: Option<Instant>,
    /// Finished decoding (stop token, token budget, or cancellation);
    /// retired at the next round boundary (or at shutdown when retained).
    done: bool,
    /// Whether `done` was reached through cancellation — kept separately so
    /// a retained-cohort slot still reports `cancelled` correctly at
    /// shutdown, long after the flag was first honoured.
    cancelled: bool,
    /// Whether `done` was reached by missing the deadline (reported as
    /// `timed_out`, never as `cancelled`).
    timed_out: bool,
}

/// Iteration-level serving engine over one [`MillionEngine`].
///
/// Single-threaded by design, like the rest of the workspace's serving
/// stack: the owner drives [`ServingEngine::serve_round`] (or
/// [`ServingEngine::run_until_idle`]) while [`RequestHandle`]s — which hold
/// no engine borrow — observe progress from anywhere.
pub struct ServingEngine<'e> {
    engine: &'e MillionEngine,
    config: ServingConfig,
    /// Shared background quantization worker (spawned on first admission
    /// when the engine runs asynchronously).
    worker: Option<QuantWorker>,
    pending: VecDeque<Pending>,
    resident: Vec<Resident<'e>>,
    reports: Vec<SessionReport>,
    next_id: u64,
    round: u64,
    stats: ServingStats,
    /// Latency histograms, per-phase round timing, and the lifecycle
    /// journal ([`ServingConfig::telemetry`] gates all recording).
    telemetry: ServingTelemetry,
    /// Once set ([`ServingEngine::drain`]), admission is closed for good:
    /// `submit` rejects and freed slots are never refilled.
    draining: bool,
}

impl<'e> ServingEngine<'e> {
    /// Creates an idle serving engine with the given policy.
    pub fn new(engine: &'e MillionEngine, config: ServingConfig) -> Self {
        let telemetry = ServingTelemetry::new(config.telemetry, config.journal_events);
        Self {
            engine,
            config,
            worker: None,
            pending: VecDeque::new(),
            resident: Vec::new(),
            reports: Vec::new(),
            next_id: 0,
            round: 0,
            stats: ServingStats::default(),
            telemetry,
            draining: false,
        }
    }

    /// The engine being served.
    pub fn engine(&self) -> &'e MillionEngine {
        self.engine
    }

    /// The serving policy.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Monotonic serving counters.
    pub fn stats(&self) -> ServingStats {
        self.stats
    }

    /// Serializable copy of the engine's latency histograms, per-phase
    /// round timing, and journal counters. With
    /// [`ServingConfig::telemetry`] off, every histogram reads empty.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// Takes every buffered request-lifecycle event, oldest first — the
    /// `GET /debug/trace` drain. Events carry monotonic nanosecond
    /// timestamps since this engine's construction; render them with
    /// [`million_telemetry::render_chrome_trace`].
    pub fn drain_trace_events(&mut self) -> Vec<Event> {
        self.telemetry.drain_events()
    }

    /// Live table of every request the engine currently knows about —
    /// queued and resident — ordered by request id (the
    /// `GET /debug/requests` view). Always available, telemetry enabled or
    /// not: it reads scheduler state, no recorded history.
    pub fn request_table(&self) -> Vec<RequestInfo> {
        let now = Instant::now();
        let mut out = Vec::with_capacity(self.pending.len() + self.resident.len());
        for pending in &self.pending {
            out.push(RequestInfo {
                id: pending.id.0,
                class: pending.request.class,
                state: RequestState::Queued,
                prompt_tokens: pending.request.prompt.len(),
                tokens_fed: 0,
                generated: 0,
                age_ms: now.duration_since(pending.submitted_at).as_millis() as u64,
            });
        }
        for slot in &self.resident {
            let state = if slot.done {
                RequestState::Finished
            } else if slot.prefill.is_some() {
                RequestState::Prefilling
            } else {
                RequestState::Decoding
            };
            let (prompt_tokens, tokens_fed) = match &slot.prefill {
                Some(job) => (job.prompt.len(), job.fed),
                None => (slot.session.prompt_tokens(), slot.session.prompt_tokens()),
            };
            out.push(RequestInfo {
                id: slot.id.0,
                class: slot.class,
                state,
                prompt_tokens,
                tokens_fed,
                generated: slot.tokens.len(),
                age_ms: now.duration_since(slot.submitted_at).as_millis() as u64,
            });
        }
        out.sort_by_key(|row| row.id);
        out
    }

    /// Rounds served so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Requests submitted but not yet admitted.
    pub fn queued_requests(&self) -> usize {
        self.pending.len()
    }

    /// Sessions currently holding a decode slot (including, in
    /// retained-cohort mode, finished ones awaiting shutdown).
    pub fn resident_sessions(&self) -> usize {
        self.resident.len()
    }

    /// Resident sessions still decoding.
    pub fn active_sessions(&self) -> usize {
        self.resident.iter().filter(|s| !s.done).count()
    }

    /// Residents currently admitting their prompt in chunks (the
    /// *Prefilling* state).
    pub fn prefilling_sessions(&self) -> usize {
        self.resident
            .iter()
            .filter(|s| !s.done && s.prefill.is_some())
            .count()
    }

    /// Prompt tokens still to be teacher-forced across every prefilling
    /// resident — the backlog the chunk scheduler is working through.
    pub fn prefill_tokens_remaining(&self) -> usize {
        self.resident
            .iter()
            .filter(|s| !s.done)
            .filter_map(|s| s.prefill.as_ref())
            .map(PrefillJob::remaining)
            .sum()
    }

    /// Whether every submitted request has been fully served: nothing
    /// queued, nothing still decoding.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.active_sessions() == 0
    }

    /// KV bytes across resident sessions (shared store blocks counted once
    /// per referencing session, as [`crate::InferenceSession::kv_bytes`]
    /// does).
    pub fn kv_bytes(&self) -> usize {
        self.resident.iter().map(|s| s.session.kv_bytes()).sum()
    }

    /// fp16-equivalent bytes across resident sessions.
    pub fn fp16_kv_bytes(&self) -> usize {
        self.resident
            .iter()
            .map(|s| s.session.fp16_kv_bytes())
            .sum()
    }

    /// Physical KV footprint the admission budget meters: resident
    /// sessions' store-external bytes plus the store's resident bytes, each
    /// counted exactly once.
    pub fn fleet_kv_bytes(&self) -> usize {
        let private: usize = self
            .resident
            .iter()
            .map(|s| s.session.kv_private_bytes())
            .sum();
        let store = self
            .engine
            .store_stats()
            .map_or(0, |stats| stats.resident_bytes);
        private + store
    }

    /// Quantized-cache bytes one cached token costs across all layers —
    /// the admission estimate for a prompt is `prompt_len` times this.
    fn quantized_bytes_per_token(&self) -> usize {
        let layout = self.engine.model().cache_layout();
        let packed = |cfg: million_quant::pq::PqConfig| (cfg.m * cfg.nbits as usize).div_ceil(8);
        let per_head = packed(self.engine.codebooks().key[0].config())
            + packed(self.engine.codebooks().value[0].config());
        self.engine.model().config().n_layers * layout.n_kv_heads * per_head
    }

    /// Submits a request. On success the request is queued (admission
    /// happens at the next round boundary) and a streaming handle is
    /// returned.
    ///
    /// # Errors
    ///
    /// [`SubmitError::EmptyPrompt`] / [`SubmitError::PromptTooLong`] for
    /// unservable prompts, [`SubmitError::QueueFull`] when the pending queue
    /// is at capacity — the backpressure signal.
    pub fn submit(&mut self, request: Request) -> Result<RequestHandle, SubmitError> {
        if self.draining {
            return Err(SubmitError::Draining);
        }
        if request.prompt.is_empty() {
            return Err(SubmitError::EmptyPrompt);
        }
        let max_seq_len = self.engine.model().config().max_seq_len;
        if request.prompt.len() >= max_seq_len {
            return Err(SubmitError::PromptTooLong {
                len: request.prompt.len(),
                max_seq_len,
            });
        }
        // Injected backpressure fires before the real capacity check so a
        // chaos plan can exercise the 429 path on an otherwise idle queue.
        let injected = self
            .config
            .fault_plan
            .as_ref()
            .is_some_and(|plan| plan.inject_queue_full());
        if injected || self.pending.len() >= self.config.queue_capacity {
            self.stats.rejected += 1;
            return Err(SubmitError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let shared = Arc::new(HandleShared {
            cancel: AtomicBool::new(false),
            report: Mutex::new(None),
        });
        let (tx, rx) = channel();
        let handle = RequestHandle {
            id,
            class: request.class,
            rx,
            shared: shared.clone(),
            recovered_tokens: 0,
        };
        let (class, prompt_tokens) = (request.class, request.prompt.len() as u32);
        self.pending.push_back(Pending {
            id,
            request,
            shared,
            tx,
            submitted_at: Instant::now(),
            submit_round: self.round,
        });
        self.stats.submitted += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.pending.len());
        self.telemetry.event(
            id.0,
            self.round,
            EventKind::Submit {
                class: class.name(),
                prompt_tokens,
            },
        );
        Ok(handle)
    }

    /// Runs one scheduling round: retire finished/cancelled requests,
    /// refill freed slots from the queue, then one DWRR decode pass.
    /// Returns `(request, step)` for every token produced this round.
    ///
    /// With [`ServingConfig::telemetry`] on, each phase of the round is
    /// timed into its [`RoundPhase`] histogram (both retirement passes sum
    /// into one `Retire` sample, so every phase histogram counts exactly
    /// one sample per round). Disabled, the round reads no clock.
    pub fn serve_round(&mut self) -> Vec<(RequestId, StepResult)> {
        self.round += 1;
        self.stats.rounds = self.round;
        let mut mark = self.telemetry.clock();
        // Cancellations signalled between rounds are honoured before any
        // admission or decode work this round...
        self.reap_cancelled_pending();
        self.retire_done();
        let retire_entry_ns = Self::lap(&mut mark);
        self.admit_ready();
        let admit_ns = Self::lap(&mut mark);
        let quantum = self.accrue_deficits();
        if quantum.is_some() {
            self.prefill_round();
        }
        let prefill_ns = Self::lap(&mut mark);
        let produced = match quantum {
            Some(quantum) => self.decode_pass(quantum),
            None => Vec::new(),
        };
        let decode_ns = Self::lap(&mut mark);
        // ...and requests that finished *this* round retire immediately —
        // their KV is released now, not at the next round — so their slots
        // are refillable the moment the next round opens.
        self.retire_done();
        let retire_exit_ns = Self::lap(&mut mark);
        if mark.is_some() {
            self.telemetry
                .record_phase(RoundPhase::Retire, retire_entry_ns + retire_exit_ns);
            self.telemetry.record_phase(RoundPhase::Admit, admit_ns);
            self.telemetry
                .record_phase(RoundPhase::PrefillChunk, prefill_ns);
            self.telemetry.record_phase(RoundPhase::Decode, decode_ns);
        }
        self.maybe_checkpoint();
        produced
    }

    /// Advances a phase-timing mark: returns the nanoseconds since `mark`
    /// and moves it to now. With telemetry disabled the mark is `None` and
    /// no clock is read.
    fn lap(mark: &mut Option<Instant>) -> u64 {
        match mark {
            Some(prev) => {
                let now = Instant::now();
                let ns = now.duration_since(*prev).as_nanos() as u64;
                *mark = Some(now);
                ns
            }
            None => 0,
        }
    }

    /// Serves rounds until every submitted request has completed or been
    /// cancelled; returns the number of rounds driven.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut rounds = 0;
        while !self.is_idle() {
            self.serve_round();
            rounds += 1;
        }
        rounds
    }

    /// Persists the resident session of `id` to `path` mid-flight (see
    /// [`crate::InferenceSession::persist`]); the request keeps decoding.
    /// Returns `Ok(false)` if the request is not currently resident.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error if the snapshot cannot be
    /// written.
    pub fn persist_request<P: AsRef<std::path::Path>>(
        &mut self,
        id: RequestId,
        path: P,
    ) -> std::io::Result<bool> {
        // Everything in flight on the shared stream must land before the
        // snapshot, or the session's own flush would miss tokens the worker
        // still owes it.
        Self::sync_worker(&mut self.worker, &mut self.resident);
        match self.resident.iter_mut().find(|s| s.id == id) {
            Some(slot) => {
                let bytes = slot.session.snapshot_bytes();
                Self::write_snapshot(
                    &self.config.fault_plan,
                    &mut self.stats,
                    path.as_ref(),
                    &bytes,
                )
                .map(|()| true)
            }
            None => Ok(false),
        }
    }

    /// Retires everything — resident sessions are flushed and reported
    /// (whether finished or not), queued requests are reported as cancelled
    /// — and returns every report of this engine's lifetime, ordered by
    /// request id.
    pub fn shutdown(mut self) -> Vec<SessionReport> {
        Self::sync_worker(&mut self.worker, &mut self.resident);
        // Snapshot every report before dropping any session, so the
        // shared/owned byte split reflects the sharing that actually held
        // while the fleet was resident.
        let mut retiring: Vec<SessionReport> = Vec::with_capacity(self.resident.len());
        for slot in &mut self.resident {
            // A slot cancelled earlier but retained (static-cohort mode)
            // already recorded the fact; one still decoding is cancelled by
            // the shutdown itself only if its handle asked for it.
            let cancelled =
                slot.cancelled || (slot.shared.cancel.load(Ordering::Relaxed) && !slot.done);
            let timed_out = slot.timed_out;
            let report = Self::build_report(slot, cancelled, timed_out);
            *slot.shared.report.lock().expect("request handle poisoned") = Some(report.clone());
            if timed_out {
                self.stats.timed_out += 1;
            } else if cancelled {
                self.stats.cancelled += 1;
            } else {
                self.stats.completed += 1;
            }
            retiring.push(report);
            Self::remove_checkpoint(&self.config, slot.id);
        }
        self.resident.clear();
        self.reports.append(&mut retiring);
        while let Some(pending) = self.pending.pop_front() {
            let report = Self::unadmitted_report(&pending, self.round, false);
            *pending
                .shared
                .report
                .lock()
                .expect("request handle poisoned") = Some(report.clone());
            self.stats.cancelled += 1;
            self.reports.push(report);
        }
        self.reports.sort_by_key(|r| r.session);
        std::mem::take(&mut self.reports)
    }

    /// Whether [`ServingEngine::drain`] has closed admission for good.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Gracefully winds the engine down: admission closes permanently
    /// ([`ServingEngine::submit`] returns [`SubmitError::Draining`] from
    /// this call on), queued requests are shed with cancelled reports, and
    /// residents are dealt with in one of two modes:
    ///
    /// * `persist_dir: None` — **finish**: keep serving rounds until every
    ///   resident has decoded to completion (clients get their full
    ///   streams);
    /// * `persist_dir: Some(dir)` — **persist**: snapshot each resident
    ///   mid-flight to `dir/request-<id>.kv` (see
    ///   [`crate::InferenceSession::persist`]) and retire it immediately;
    ///   its handle resolves to a cancelled report carrying the tokens
    ///   produced so far, and the snapshot restores bit-identically via
    ///   [`crate::MillionEngine::restore_session`].
    ///
    /// Either way the engine ends idle; the caller still owns it (and its
    /// lifetime reports) and typically calls [`ServingEngine::shutdown`]
    /// next. Idempotent: a second drain finds nothing in flight.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from snapshot writes in persist mode; residents
    /// not yet persisted keep decoding (the drain can be retried).
    pub fn drain(&mut self, persist_dir: Option<&Path>) -> std::io::Result<DrainReport> {
        self.draining = true;
        let mut report = DrainReport::default();
        while let Some(pending) = self.pending.pop_front() {
            let shed = Self::unadmitted_report(&pending, self.round, false);
            *pending
                .shared
                .report
                .lock()
                .expect("request handle poisoned") = Some(shed.clone());
            self.stats.cancelled += 1;
            self.reports.push(shed);
            report.shed_queued += 1;
        }
        if let Some(dir) = persist_dir {
            std::fs::create_dir_all(dir)?;
            // Everything in flight on the shared stream must land before
            // any snapshot (same contract as `persist_request`).
            Self::sync_worker(&mut self.worker, &mut self.resident);
            for idx in 0..self.resident.len() {
                if self.resident[idx].done {
                    continue;
                }
                let slot = &mut self.resident[idx];
                let id = slot.id;
                let path = dir.join(format!("request-{}.kv", id.as_u64()));
                let bytes = slot.session.snapshot_bytes();
                Self::write_snapshot(&self.config.fault_plan, &mut self.stats, &path, &bytes)?;
                let slot = &mut self.resident[idx];
                slot.done = true;
                slot.cancelled = true;
                report.persisted.push((id, path));
            }
            // Persisted slots must actually leave, even under a
            // retained-cohort config: drain means the fleet goes away now.
            let retain = std::mem::replace(&mut self.config.retain_finished, false);
            self.retire_done();
            self.config.retain_finished = retain;
        } else {
            let completed_before = self.stats.completed;
            while self.active_sessions() > 0 {
                self.serve_round();
                report.rounds += 1;
            }
            report.finished = (self.stats.completed - completed_before) as usize;
        }
        Ok(report)
    }

    /// One snapshot write, routed through the fault plan: the scheduled
    /// injected I/O error fires *instead of* touching the filesystem, and
    /// every successful write is atomic (temp + fsync + rename) and counted
    /// in [`ServingStats::snapshot_writes`].
    fn write_snapshot(
        fault: &Option<Arc<FaultPlan>>,
        stats: &mut ServingStats,
        path: &Path,
        bytes: &[u8],
    ) -> std::io::Result<()> {
        if let Some(err) = fault
            .as_ref()
            .and_then(|plan| plan.inject_snapshot_io_error())
        {
            return Err(err);
        }
        atomic_write(path, bytes)?;
        stats.snapshot_writes += 1;
        Ok(())
    }

    /// Removes the request's checkpoint file, if checkpointing is
    /// configured — called on every clean retirement so a later
    /// [`ServingEngine::recover`] never resurrects a finished request.
    fn remove_checkpoint(config: &ServingConfig, id: RequestId) {
        if let Some(dir) = &config.checkpoint_dir {
            let _ = std::fs::remove_file(dir.join(format!("request-{}.ckpt", id.as_u64())));
        }
    }

    /// Writes this round's crash-recovery checkpoints
    /// ([`ServingConfig::checkpoint_dir`] /
    /// [`ServingConfig::checkpoint_every_rounds`]): every resident that has
    /// finished prefilling and is still decoding is snapshotted to
    /// `dir/request-<id>.ckpt`. Failures (including injected ones) are
    /// non-fatal — the previous checkpoint, if any, survives untouched
    /// because writes are atomic.
    fn maybe_checkpoint(&mut self) {
        let every = self.config.checkpoint_every_rounds;
        if every == 0 || !self.round.is_multiple_of(every) {
            return;
        }
        let Some(dir) = self.config.checkpoint_dir.clone() else {
            return;
        };
        let wants_checkpoint = |slot: &Resident<'_>| {
            !slot.done
                && !slot.cancelled
                && slot.prefill.is_none()
                && !slot.shared.cancel.load(Ordering::Relaxed)
        };
        if !self.resident.iter().any(wants_checkpoint) {
            return;
        }
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        // Same contract as `persist_request`: in-flight encode traffic must
        // land before any session is flushed into its snapshot.
        Self::sync_worker(&mut self.worker, &mut self.resident);
        for idx in 0..self.resident.len() {
            if !wants_checkpoint(&self.resident[idx]) {
                continue;
            }
            let slot = &mut self.resident[idx];
            let id = slot.id;
            let bytes = Self::encode_checkpoint(slot);
            let path = dir.join(format!("request-{}.ckpt", id.as_u64()));
            let _ = Self::write_snapshot(&self.config.fault_plan, &mut self.stats, &path, &bytes);
        }
    }

    /// Encodes one resident's crash-recovery checkpoint: request metadata
    /// (id, class, budget, stop criteria, exact sampler state, the tokens
    /// streamed so far) in one CRC-framed section, the session snapshot
    /// (`MLNSES02`) in a second.
    fn encode_checkpoint(slot: &mut Resident<'e>) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CKPT_MAGIC);
        let mut body = Vec::new();
        put_u64(&mut body, slot.id.as_u64());
        body.push(slot.class.index() as u8);
        put_u64(&mut body, slot.options.max_new_tokens as u64);
        match slot.options.stop.eos_id {
            Some(token) => {
                body.push(1);
                put_u32(&mut body, token);
            }
            None => body.push(0),
        }
        put_u32_slice(&mut body, &slot.options.stop.stop_ids);
        match slot.sampler.state() {
            SamplerState::Greedy => body.push(0),
            SamplerState::TopK {
                temperature,
                top_k,
                seed,
                draws,
            } => {
                body.push(1);
                put_u32(&mut body, temperature.to_bits());
                put_u64(&mut body, top_k as u64);
                put_u64(&mut body, seed);
                put_u64(&mut body, draws);
            }
        }
        put_u32_slice(&mut body, &slot.tokens);
        put_section(&mut out, &body);
        put_section(&mut out, &slot.session.snapshot_bytes());
        out
    }

    /// Re-admits every restorable checkpoint in `dir` — the supervisor's
    /// first act after restarting a crashed shard. Each restored request
    /// resumes with its exact sampler state and token budget, so its
    /// continuation is bit-identical to the stream the crashed incarnation
    /// would have produced. Malformed checkpoints (truncated, flipped
    /// bytes, wrong geometry) are reported in
    /// [`RecoverReport::failed`] and counted in
    /// [`ServingStats::snapshot_crc_failures`]; they never panic and never
    /// admit a corrupt session. A missing or unreadable directory recovers
    /// nothing.
    pub fn recover(&mut self, dir: &Path) -> RecoverReport {
        let mut report = RecoverReport::default();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return report;
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "ckpt"))
            .collect();
        paths.sort();
        for path in paths {
            match self.recover_one(&path) {
                Ok(handle) => report.restored.push(handle),
                Err(reason) => {
                    self.stats.snapshot_crc_failures += 1;
                    report.failed.push((path, reason));
                }
            }
        }
        report.restored.sort_by_key(|h| h.id);
        report
    }

    fn recover_one(&mut self, path: &Path) -> Result<RequestHandle, String> {
        let mut bytes = std::fs::read(path).map_err(|e| format!("cannot read checkpoint: {e}"))?;
        if let Some(plan) = &self.config.fault_plan {
            plan.corrupt_restore_read(&mut bytes);
        }
        let mut r = Reader::new(&bytes);
        let mut magic = [0u8; 8];
        for slot in magic.iter_mut() {
            *slot = r.get_u8().map_err(|e| e.to_string())?;
        }
        if &magic != CKPT_MAGIC {
            return Err("bad checkpoint magic".to_string());
        }
        let meta = r.get_section().map_err(|e| e.to_string())?;
        let mut m = Reader::new(meta);
        let parsed: Result<_, million_store::persist::PersistError> = (|| {
            let id = m.get_len()? as u64;
            let class = m.get_u8()?;
            let max_new_tokens = m.get_len()?;
            let eos_id = if m.get_u8()? == 1 {
                Some(m.get_u32()?)
            } else {
                None
            };
            let stop_ids = m.get_u32_slice()?;
            let sampler_kind = m.get_u8()?;
            let sampler_state = if sampler_kind == 1 {
                Some((
                    f32::from_bits(m.get_u32()?),
                    m.get_len()?,
                    m.get_len()? as u64,
                    m.get_len()? as u64,
                ))
            } else {
                None
            };
            let tokens = m.get_u32_slice()?;
            Ok((
                id,
                class,
                max_new_tokens,
                eos_id,
                stop_ids,
                sampler_kind,
                sampler_state,
                tokens,
            ))
        })();
        let (id, class, max_new_tokens, eos_id, stop_ids, sampler_kind, sampler_state, tokens) =
            parsed.map_err(|e| e.to_string())?;
        if !m.is_exhausted() {
            return Err("trailing bytes in checkpoint metadata section".to_string());
        }
        let class = *QosClass::ALL
            .get(class as usize)
            .ok_or_else(|| format!("unknown QoS class tag {class}"))?;
        let sampler = match (sampler_kind, sampler_state) {
            (0, None) => Sampler::greedy(),
            (1, Some((temperature, top_k, seed, draws))) => {
                if !temperature.is_finite() || temperature <= 0.0 || top_k == 0 {
                    return Err(format!(
                        "checkpoint sampler state is unservable \
                         (temperature {temperature}, top_k {top_k})"
                    ));
                }
                Sampler::from_state(&SamplerState::TopK {
                    temperature,
                    top_k,
                    seed,
                    draws,
                })
            }
            (kind, _) => return Err(format!("unknown sampler kind tag {kind}")),
        };
        let session_bytes = r.get_section().map_err(|e| e.to_string())?;
        if !r.is_exhausted() {
            return Err("trailing bytes after checkpoint sections".to_string());
        }
        let mut session = self
            .engine
            .restore_session_bytes(session_bytes)
            .map_err(|e| e.to_string())?;
        session.id = id as usize;
        if self.engine.config().async_quant && self.worker.is_none() {
            self.worker = Some(QuantWorker::spawn(
                self.engine.codebooks().key.clone(),
                self.engine.codebooks().value.clone(),
                self.engine.model().cache_layout(),
            ));
        }
        let shared = Arc::new(HandleShared {
            cancel: AtomicBool::new(false),
            report: Mutex::new(None),
        });
        let (tx, rx) = channel();
        let handle = RequestHandle {
            id: RequestId(id),
            class,
            rx,
            shared: shared.clone(),
            recovered_tokens: tokens.len(),
        };
        let prompt_tokens = session.prompt_tokens() as u32;
        let done = tokens.len() >= max_new_tokens;
        self.resident.push(Resident {
            id: RequestId(id),
            session,
            sampler,
            options: GenerationOptions {
                max_new_tokens,
                stop: StopCriteria { eos_id, stop_ids },
            },
            class,
            tokens,
            deficit: 0,
            prefill: None,
            shared,
            tx,
            submitted_at: Instant::now(),
            queue_wait_ns: 0,
            queue_wait_rounds: 0,
            first_token_ns: None,
            last_token_at: None,
            stopped_early: false,
            deadline: None,
            done,
            cancelled: false,
            timed_out: false,
        });
        self.next_id = self.next_id.max(id + 1);
        self.stats.submitted += 1;
        self.stats.admitted += 1;
        self.stats.max_resident_sessions =
            self.stats.max_resident_sessions.max(self.resident.len());
        self.telemetry.event(
            id,
            self.round,
            EventKind::Submit {
                class: class.name(),
                prompt_tokens,
            },
        );
        self.telemetry
            .event(id, self.round, EventKind::Admit { queue_wait_ns: 0 });
        Ok(handle)
    }

    /// Drops queued requests whose handle was cancelled — or whose deadline
    /// expired — before admission.
    fn reap_cancelled_pending(&mut self) {
        let round = self.round;
        let now = Instant::now();
        let mut kept = VecDeque::with_capacity(self.pending.len());
        while let Some(pending) = self.pending.pop_front() {
            let cancelled = pending.shared.cancel.load(Ordering::Relaxed);
            let timed_out = !cancelled && pending.deadline().is_some_and(|d| now >= d);
            if cancelled || timed_out {
                let report = Self::unadmitted_report(&pending, round, timed_out);
                *pending
                    .shared
                    .report
                    .lock()
                    .expect("request handle poisoned") = Some(report.clone());
                let (marker, outcome) = if timed_out {
                    self.stats.timed_out += 1;
                    (EventKind::TimedOut, RetireOutcome::TimedOut)
                } else {
                    self.stats.cancelled += 1;
                    (EventKind::Cancelled, RetireOutcome::Cancelled)
                };
                self.telemetry.event(pending.id.0, round, marker);
                self.telemetry.event(
                    pending.id.0,
                    round,
                    EventKind::Retired { outcome, tokens: 0 },
                );
                self.reports.push(report);
            } else {
                kept.push_back(pending);
            }
        }
        self.pending = kept;
    }

    /// Retires finished and cancelled resident requests, freeing their
    /// slots (no-op for finished requests in retained-cohort mode).
    fn retire_done(&mut self) {
        let now = Instant::now();
        let mut idx = 0;
        while idx < self.resident.len() {
            if !self.resident[idx].done {
                if self.resident[idx].shared.cancel.load(Ordering::Relaxed) {
                    self.resident[idx].done = true;
                    self.resident[idx].cancelled = true;
                    self.telemetry
                        .event(self.resident[idx].id.0, self.round, EventKind::Cancelled);
                } else if self.resident[idx].deadline.is_some_and(|d| now >= d) {
                    // The deadline is honoured at the round boundary, like
                    // cancellation — mid-round steps are never torn.
                    self.resident[idx].done = true;
                    self.resident[idx].timed_out = true;
                    self.telemetry
                        .event(self.resident[idx].id.0, self.round, EventKind::TimedOut);
                }
            }
            let cancelled = self.resident[idx].cancelled;
            let timed_out = self.resident[idx].timed_out;
            if self.resident[idx].done && !self.config.retain_finished {
                // One sync point per retirement: encode traffic still in
                // flight lands in its owning session (this one included)
                // before the departing session is flushed and dropped.
                Self::sync_worker(&mut self.worker, &mut self.resident);
                let mut slot = self.resident.remove(idx);
                Self::remove_checkpoint(&self.config, slot.id);
                let report = Self::build_report(&mut slot, cancelled, timed_out);
                *slot.shared.report.lock().expect("request handle poisoned") = Some(report.clone());
                let outcome = if timed_out {
                    self.stats.timed_out += 1;
                    RetireOutcome::TimedOut
                } else if cancelled {
                    self.stats.cancelled += 1;
                    RetireOutcome::Cancelled
                } else {
                    self.stats.completed += 1;
                    RetireOutcome::Completed
                };
                if self.telemetry.enabled() {
                    self.telemetry
                        .record_e2e(slot.submitted_at.elapsed().as_nanos() as u64);
                }
                self.telemetry.event(
                    slot.id.0,
                    self.round,
                    EventKind::Retired {
                        outcome,
                        tokens: report.tokens.len() as u32,
                    },
                );
                self.reports.push(report);
            } else {
                idx += 1;
            }
        }
    }

    /// Refills free slots from the pending queue: highest effective class
    /// first (FIFO within a class), each admission gated on the resident cap
    /// and the KV-byte budget. Exposed crate-internally so the static-cohort
    /// [`crate::BatchScheduler`] can admit eagerly at `add_session`.
    pub(crate) fn admit_ready(&mut self) {
        loop {
            if self.draining || self.pending.is_empty() {
                return;
            }
            let active = self.resident.iter().filter(|s| !s.done).count();
            if active >= self.config.max_resident {
                return;
            }
            let aging = self.config.admission_aging_rounds;
            let round = self.round;
            let best = (0..self.pending.len())
                .max_by_key(|&i| {
                    // Stable max: highest effective weight, earliest
                    // submission wins ties.
                    let w = self.pending[i].effective_weight(round, aging);
                    (w, std::cmp::Reverse(self.pending[i].id))
                })
                .expect("pending is non-empty");
            if let Some(budget) = self.config.kv_byte_budget {
                let estimate =
                    self.pending[best].request.prompt.len() * self.quantized_bytes_per_token();
                // Zero-ref blocks parked in a budgeted store's cached pool
                // are reclaimable on demand (the store sheds them under its
                // own pressure), so they must not consume admission
                // capacity: a cache full of departed sessions' prefixes
                // would otherwise block admission forever.
                let reclaimable = self
                    .engine
                    .store_stats()
                    .map_or(0, |stats| stats.cached_bytes);
                // The budget gates admission while anyone is resident; an
                // empty machine always admits the head request, so a single
                // over-budget prompt cannot deadlock the queue.
                if self.resident.iter().any(|s| !s.done)
                    && self.fleet_kv_bytes().saturating_sub(reclaimable) + estimate > budget
                {
                    return;
                }
            }
            let pending = self.pending.remove(best).expect("index in bounds");
            self.admit(pending);
        }
    }

    /// Admits one pending request into a resident slot. With chunking
    /// enabled the slot enters the *Prefilling* state — only the store
    /// prefix (if any) attaches here; the prompt itself is teacher-forced
    /// chunk by chunk in the decode pass, starting this same round. With
    /// `prefill_chunk_tokens == 0` the whole prompt prefills inside this
    /// admission turn, exactly the pre-chunking behaviour.
    fn admit(&mut self, pending: Pending) {
        if self.engine.config().async_quant && self.worker.is_none() {
            self.worker = Some(QuantWorker::spawn(
                self.engine.codebooks().key.clone(),
                self.engine.codebooks().value.clone(),
                self.engine.model().cache_layout(),
            ));
        }
        let queue_wait_ns = pending.queue_wait_ns();
        let Pending {
            id,
            request,
            shared,
            tx,
            submitted_at,
            submit_round,
        } = pending;
        let Request {
            prompt,
            options,
            sampler,
            class,
            deadline_ms,
        } = request;
        self.telemetry.record_queue_wait(queue_wait_ns);
        self.telemetry
            .event(id.0, self.round, EventKind::Admit { queue_wait_ns });
        let deadline = deadline_ms.map(|ms| submitted_at + Duration::from_millis(ms));
        let mut session = InferenceSession::new(self.engine, id.0 as usize, true);
        let prefill = if self.config.prefill_chunk_tokens == 0 {
            session.prefill(&prompt);
            self.stats.prefill_chunks += 1;
            self.stats.prefill_tokens_by_class[class.index()] +=
                (prompt.len() - session.prefix_tokens_reused()) as u64;
            self.telemetry.event(
                id.0,
                self.round,
                EventKind::PrefillChunk {
                    fed: prompt.len() as u32,
                    remaining: 0,
                },
            );
            None
        } else {
            // Store prefix attachment still short-circuits before chunking:
            // whatever another session already sealed is adopted for free,
            // and only the unmatched remainder is chunked. The first chunk
            // runs here, inside the admission turn, so its full blocks seal
            // immediately — a request admitted later in this same pass can
            // attach them, exactly as under monolithic admission.
            let fed = session.prefill_begin(&prompt);
            let take = self.config.prefill_chunk_tokens.min(prompt.len() - fed);
            session.prefill_chunk(&prompt[fed..fed + take]);
            self.stats.prefill_chunks += 1;
            self.stats.prefill_tokens_by_class[class.index()] += take as u64;
            let fed = fed + take;
            self.telemetry.event(
                id.0,
                self.round,
                EventKind::PrefillChunk {
                    fed: fed as u32,
                    remaining: (prompt.len() - fed) as u32,
                },
            );
            if fed == prompt.len() {
                None
            } else {
                Some(PrefillJob {
                    prompt,
                    fed,
                    chunked_round: self.round,
                })
            }
        };
        // A warm admission's unmatched suffix rides the decode path and may
        // stage encode batches: ship them through the shared worker now.
        let requests = session.take_encode_requests();
        if let Some(worker) = &mut self.worker {
            for encode in requests {
                worker.submit(encode);
            }
        }
        self.resident.push(Resident {
            id,
            session,
            sampler,
            options,
            class,
            tokens: Vec::new(),
            deficit: 0,
            prefill,
            shared,
            tx,
            submitted_at,
            queue_wait_ns,
            queue_wait_rounds: self.round.saturating_sub(submit_round + 1),
            first_token_ns: None,
            last_token_at: None,
            stopped_early: false,
            deadline,
            done: false,
            cancelled: false,
            timed_out: false,
        });
        self.stats.admitted += 1;
        self.stats.max_resident_sessions =
            self.stats.max_resident_sessions.max(self.resident.len());
    }

    /// Opens this round's DWRR pass: computes the quantum (the minimum
    /// class weight over residents still decoding) and accrues each active
    /// slot's class weight into its deficit. `None` when nothing is
    /// resident and active — the round has no prefill or decode work.
    fn accrue_deficits(&mut self) -> Option<u32> {
        let quantum = self
            .resident
            .iter()
            .filter(|s| !s.done)
            .map(|s| s.class.weight())
            .min()?;
        for slot in self.resident.iter_mut().filter(|s| !s.done) {
            slot.deficit += slot.class.weight();
        }
        Some(quantum)
    }

    /// One deficit-weighted round-robin decode pass over the resident
    /// batch, after [`ServingEngine::accrue_deficits`] and the round's
    /// prefill chunks.
    fn decode_pass(&mut self, quantum: u32) -> Vec<(RequestId, StepResult)> {
        let mut produced = Vec::new();
        loop {
            let mut progressed = false;
            for idx in 0..self.resident.len() {
                {
                    let slot = &self.resident[idx];
                    if slot.done || slot.prefill.is_some() || slot.deficit < quantum {
                        continue;
                    }
                    if slot.shared.cancel.load(Ordering::Relaxed) {
                        // Retired at the next round boundary; stop burning
                        // its remaining deficit now.
                        let slot = &mut self.resident[idx];
                        slot.deficit = 0;
                        continue;
                    }
                }
                // Absorb-before-attend, as in the single-session loop:
                // everything the shared worker finished lands before this
                // step's attention.
                Self::sync_worker_nonblocking(&mut self.worker, &mut self.resident);
                let slot = &mut self.resident[idx];
                slot.deficit -= quantum;
                // analyze: no-alloc(begin)
                let mut step = slot.session.step_with(&mut slot.sampler);
                slot.tokens.push(step.token);
                self.stats.tokens_by_class[slot.class.index()] += 1;
                if slot.tokens.len() == 1 {
                    // TTFT is part of the report contract
                    // ([`SessionReport::first_token_ns`]), so it is
                    // measured whether or not telemetry records it — one
                    // clock read per request lifetime, exactly like
                    // `queue_wait_ns`. The identical value feeds the
                    // histogram, so histogram sums reconcile with the
                    // per-request reports to the nanosecond.
                    let ttft_ns = slot.submitted_at.elapsed().as_nanos() as u64;
                    slot.first_token_ns = Some(ttft_ns);
                    self.telemetry.record_ttft(ttft_ns);
                    self.telemetry
                        .event(slot.id.0, self.round, EventKind::FirstToken { ttft_ns });
                }
                if let Some(now) = self.telemetry.clock() {
                    if let Some(prev) = slot.last_token_at {
                        self.telemetry
                            .record_inter_token(now.duration_since(prev).as_nanos() as u64);
                    }
                    slot.last_token_at = Some(now);
                }
                if slot.options.stop.matches(step.token) {
                    step.matched_stop = true;
                    slot.stopped_early = true;
                    slot.done = true;
                } else if slot.tokens.len() >= slot.options.max_new_tokens {
                    slot.done = true;
                }
                if slot.done {
                    slot.deficit = 0;
                }
                // The handle may be gone; serving continues regardless.
                // `StepResult` is `Copy`, so handing it to the channel
                // costs a memcpy, not a clone.
                let _ = slot.tx.send(step);
                // analyze: no-alloc(end)
                let requests = slot.session.take_encode_requests();
                let id = slot.id;
                if let Some(worker) = &mut self.worker {
                    for encode in requests {
                        worker.submit(encode);
                    }
                }
                produced.push((id, step));
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        produced
    }

    /// Executes one prefill chunk for every resident still in the
    /// *Prefilling* state. A non-final chunk consumes the slot's whole round
    /// allowance (its deficit is cleared — the chunk *was* this round's
    /// share of work for that class); the final chunk completes admission
    /// and keeps the round's accrued deficit, so the round that exhausts a
    /// prompt is scheduled exactly like a monolithic admission turn and the
    /// request decodes its first token in the same round. Chunk boundaries
    /// are the prefill preemption points: cancellation is checked here
    /// before each chunk, and deadlines/drains land at the surrounding round
    /// boundaries.
    fn prefill_round(&mut self) {
        let chunk_tokens = self.config.prefill_chunk_tokens;
        for idx in 0..self.resident.len() {
            {
                let slot = &self.resident[idx];
                if slot.done || slot.prefill.is_none() {
                    continue;
                }
                if slot.shared.cancel.load(Ordering::Relaxed) {
                    // Retired at the next round boundary; the rest of the
                    // prompt is never fed.
                    let slot = &mut self.resident[idx];
                    slot.deficit = 0;
                    continue;
                }
            }
            // Absorb-before-attend, exactly as the decode pass does.
            Self::sync_worker_nonblocking(&mut self.worker, &mut self.resident);
            let slot = &mut self.resident[idx];
            let job = slot.prefill.as_mut().expect("slot is prefilling");
            if job.chunked_round == self.round {
                // The admission chunk already ran this round and was this
                // slot's share of work; don't charge a second chunk.
                slot.deficit = 0;
                continue;
            }
            job.chunked_round = self.round;
            let take = chunk_tokens.min(job.remaining());
            slot.session
                .prefill_chunk(&job.prompt[job.fed..job.fed + take]);
            job.fed += take;
            let finished = job.remaining() == 0;
            self.stats.prefill_chunks += 1;
            self.stats.prefill_tokens_by_class[slot.class.index()] += take as u64;
            self.telemetry.event(
                slot.id.0,
                self.round,
                EventKind::PrefillChunk {
                    fed: job.fed as u32,
                    remaining: job.remaining() as u32,
                },
            );
            if finished {
                slot.prefill = None;
            } else {
                slot.deficit = 0;
            }
            let requests = slot.session.take_encode_requests();
            if let Some(worker) = &mut self.worker {
                for encode in requests {
                    worker.submit(encode);
                }
            }
        }
    }

    /// Blocks until the shared worker has drained, routing every result to
    /// its owning resident session.
    fn sync_worker(worker: &mut Option<QuantWorker>, resident: &mut [Resident<'e>]) {
        if let Some(worker) = worker {
            for result in worker.drain_all() {
                Self::route(resident, result);
            }
        }
    }

    /// Routes whatever the shared worker has finished so far, without
    /// waiting.
    fn sync_worker_nonblocking(worker: &mut Option<QuantWorker>, resident: &mut [Resident<'e>]) {
        if let Some(worker) = worker {
            for result in worker.try_drain() {
                Self::route(resident, result);
            }
        }
    }

    fn route(resident: &mut [Resident<'e>], result: crate::async_quant::EncodeResult) {
        let slot = resident
            .iter_mut()
            .find(|s| s.session.id() == result.session)
            .expect("encode result for a session no longer resident");
        slot.session.absorb(result);
    }

    /// Flushes a resident slot and snapshots its final report.
    fn build_report(slot: &mut Resident<'e>, cancelled: bool, timed_out: bool) -> SessionReport {
        slot.session.flush();
        SessionReport {
            session: slot.id.0 as usize,
            class: slot.class,
            tokens: std::mem::take(&mut slot.tokens),
            prompt_tokens: slot.session.prompt_tokens(),
            kv_bytes: slot.session.kv_bytes(),
            fp16_kv_bytes: slot.session.fp16_kv_bytes(),
            kv_shared_bytes: slot.session.kv_shared_bytes(),
            kv_owned_bytes: slot.session.kv_owned_bytes(),
            prefix_tokens_reused: slot.session.prefix_tokens_reused(),
            async_batches: slot.session.async_batches(),
            prefill_ns: slot.session.prefill_ns(),
            prefill_tokens_per_s: slot.session.prefill_tokens_per_s(),
            prefill_chunks: slot.session.prefill_chunks(),
            queue_wait_ns: slot.queue_wait_ns,
            queue_wait_rounds: slot.queue_wait_rounds,
            first_token_ns: slot.first_token_ns.unwrap_or(0),
            decode_ns: slot.session.decode_ns(),
            stopped_early: slot.stopped_early,
            cancelled,
            timed_out,
        }
    }

    /// The report of a request cancelled or timed out before admission: no
    /// prompt was consumed, no KV was held.
    fn unadmitted_report(pending: &Pending, round: u64, timed_out: bool) -> SessionReport {
        SessionReport {
            session: pending.id.0 as usize,
            class: pending.request.class,
            tokens: Vec::new(),
            prompt_tokens: 0,
            kv_bytes: 0,
            fp16_kv_bytes: 0,
            kv_shared_bytes: 0,
            kv_owned_bytes: 0,
            prefix_tokens_reused: 0,
            async_batches: 0,
            prefill_ns: 0,
            prefill_tokens_per_s: 0.0,
            prefill_chunks: 0,
            queue_wait_ns: pending.queue_wait_ns(),
            queue_wait_rounds: round.saturating_sub(pending.submit_round),
            first_token_ns: 0,
            decode_ns: 0,
            stopped_early: false,
            cancelled: !timed_out,
            timed_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_fixtures::engine;
    use crate::GenerationOptions;

    fn prompts() -> Vec<Vec<u32>> {
        vec![
            vec![3, 9, 27, 81, 11, 33],
            vec![5, 10, 20, 40, 80],
            vec![7, 14, 28, 56, 112, 97, 61],
            vec![2, 4, 8, 16, 32, 64],
        ]
    }

    #[test]
    fn submit_validates_prompts_and_queue_capacity() {
        let engine = engine(false, 0);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                queue_capacity: 2,
                ..ServingConfig::default()
            },
        );
        assert!(matches!(
            serving.submit(Request::new(vec![], GenerationOptions::max_tokens(4))),
            Err(SubmitError::EmptyPrompt)
        ));
        let max = engine.model().config().max_seq_len;
        let too_long = Request::new(vec![1; max], GenerationOptions::max_tokens(4));
        assert!(matches!(
            serving.submit(too_long),
            Err(SubmitError::PromptTooLong { .. })
        ));
        let ok = |p: &[u32]| Request::new(p.to_vec(), GenerationOptions::max_tokens(4));
        serving.submit(ok(&prompts()[0])).expect("first queued");
        serving.submit(ok(&prompts()[1])).expect("second queued");
        let err = serving.submit(ok(&prompts()[2])).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { capacity: 2 });
        assert_eq!(serving.stats().rejected, 1);
        assert!(err.to_string().contains("full"));
    }

    #[test]
    fn serving_engine_matches_serial_sessions() {
        let engine = engine(false, 1);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 2, // forces queueing + mid-flight refills
                ..ServingConfig::default()
            },
        );
        let handles: Vec<RequestHandle> = prompts()
            .iter()
            .map(|p| {
                serving
                    .submit(Request::new(p.clone(), GenerationOptions::max_tokens(10)))
                    .expect("queued")
            })
            .collect();
        serving.run_until_idle();
        for (p, handle) in prompts().iter().zip(&handles) {
            let report = handle.report().expect("request finished");
            let streamed: Vec<u32> = handle.drain_tokens().iter().map(|s| s.token).collect();
            assert_eq!(report.tokens, streamed, "stream/report agreement");
            let mut session = engine.session();
            session.prefill(p);
            let serial = session.generate(&GenerationOptions::max_tokens(10));
            assert_eq!(report.tokens, serial.tokens, "prompt {p:?}");
        }
        assert_eq!(serving.stats().completed, 4);
        assert_eq!(serving.stats().max_resident_sessions, 2);
        let reports = serving.shutdown();
        assert_eq!(reports.len(), 4);
    }

    #[test]
    fn dwrr_gives_classes_proportional_throughput() {
        let engine = engine(false, 2);
        let mut serving = ServingEngine::new(&engine, ServingConfig::default());
        let p = prompts();
        for (prompt, class) in p.iter().zip(QosClass::ALL) {
            serving
                .submit(
                    Request::new(prompt.clone(), GenerationOptions::max_tokens(200))
                        .with_class(class),
                )
                .expect("queued");
        }
        let mut produced_last_round = 0;
        for _ in 0..10 {
            produced_last_round = serving.serve_round().len();
        }
        // quantum = min weight = 1, so one round yields 4 + 2 + 1 tokens.
        assert_eq!(produced_last_round, 7);
        let tokens = serving.stats().tokens_by_class;
        assert_eq!(tokens, [40, 20, 10], "exact 4:2:1 proportional shares");
    }

    #[test]
    fn cancelling_a_resident_request_frees_its_slot_for_the_queue() {
        let engine = engine(false, 3);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let long = serving
            .submit(Request::new(
                p[0].clone(),
                GenerationOptions::max_tokens(64),
            ))
            .expect("queued");
        let next = serving
            .submit(Request::new(p[1].clone(), GenerationOptions::max_tokens(4)))
            .expect("queued");
        for _ in 0..3 {
            serving.serve_round();
        }
        assert!(!long.is_finished());
        assert_eq!(serving.queued_requests(), 1, "slot cap holds next back");
        long.cancel();
        serving.run_until_idle();
        let cancelled = long.report().expect("cancelled report");
        assert!(cancelled.cancelled);
        assert_eq!(cancelled.tokens.len(), 3, "tokens produced before cancel");
        let finished = next.report().expect("refilled request finished");
        assert!(!finished.cancelled);
        assert_eq!(finished.tokens.len(), 4);
        assert!(finished.queue_wait_rounds > 0, "waited for the slot");
        assert_eq!(serving.stats().cancelled, 1);
        assert_eq!(serving.stats().completed, 1);
    }

    #[test]
    fn cancelling_a_queued_request_skips_admission() {
        let engine = engine(false, 4);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let _running = serving
            .submit(Request::new(p[0].clone(), GenerationOptions::max_tokens(6)))
            .expect("queued");
        let doomed = serving
            .submit(Request::new(p[1].clone(), GenerationOptions::max_tokens(6)))
            .expect("queued");
        serving.serve_round();
        doomed.cancel();
        serving.run_until_idle();
        let report = doomed.report().expect("cancelled report");
        assert!(report.cancelled);
        assert!(report.tokens.is_empty());
        assert_eq!(report.prompt_tokens, 0, "never admitted, never prefilled");
        assert_eq!(serving.stats().admitted, 1);
    }

    #[test]
    fn async_serving_routes_shared_worker_traffic_across_refills() {
        let engine = engine(true, 5);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 2,
                ..ServingConfig::default()
            },
        );
        let handles: Vec<RequestHandle> = prompts()
            .iter()
            .map(|p| {
                serving
                    .submit(Request::new(p.clone(), GenerationOptions::max_tokens(16)))
                    .expect("queued")
            })
            .collect();
        serving.run_until_idle();
        let reports: Vec<SessionReport> =
            handles.iter().map(|h| h.report().expect("done")).collect();
        for report in &reports {
            assert_eq!(report.tokens.len(), 16);
            assert!(report.kv_bytes > 0);
            assert!(report.kv_bytes < report.fp16_kv_bytes);
        }
        assert!(reports.iter().map(|r| r.async_batches).sum::<usize>() > 0);
    }

    #[test]
    fn kv_byte_budget_serialises_admissions_but_serves_everyone() {
        let engine = engine(false, 6);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 4,
                // One byte: never satisfiable, so the no-resident escape
                // hatch turns serving into strictly serial admission.
                kv_byte_budget: Some(1),
                ..ServingConfig::default()
            },
        );
        let handles: Vec<RequestHandle> = prompts()
            .iter()
            .map(|p| {
                serving
                    .submit(Request::new(p.clone(), GenerationOptions::max_tokens(5)))
                    .expect("queued")
            })
            .collect();
        while !serving.is_idle() {
            serving.serve_round();
            assert!(
                serving.active_sessions() <= 1,
                "budget must serialise admission"
            );
        }
        for handle in &handles {
            assert_eq!(handle.report().expect("done").tokens.len(), 5);
        }
        assert_eq!(serving.stats().completed, 4);
    }

    #[test]
    fn shutdown_reports_unfinished_and_queued_requests() {
        let engine = engine(false, 7);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let running = serving
            .submit(Request::new(
                p[0].clone(),
                GenerationOptions::max_tokens(50),
            ))
            .expect("queued");
        let queued = serving
            .submit(Request::new(
                p[1].clone(),
                GenerationOptions::max_tokens(50),
            ))
            .expect("queued");
        for _ in 0..4 {
            serving.serve_round();
        }
        let reports = serving.shutdown();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].session, running.id().as_u64() as usize);
        assert_eq!(reports[0].tokens.len(), 4, "partial progress reported");
        assert!(!reports[0].cancelled);
        assert!(reports[1].cancelled, "queued request reported cancelled");
        assert!(queued.report().expect("has report").cancelled);
    }

    #[test]
    fn retained_cohort_reports_cancellation_at_shutdown() {
        let engine = engine(false, 9);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                retain_finished: true,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let doomed = serving
            .submit(Request::new(
                p[0].clone(),
                GenerationOptions::max_tokens(12),
            ))
            .expect("queued");
        let survivor = serving
            .submit(Request::new(
                p[1].clone(),
                GenerationOptions::max_tokens(12),
            ))
            .expect("queued");
        for _ in 0..2 {
            serving.serve_round();
        }
        doomed.cancel();
        for _ in 0..3 {
            serving.serve_round();
        }
        // Retained mode: the cancelled slot stopped decoding but was not
        // retired; its report must still say so at shutdown.
        let reports = serving.shutdown();
        assert!(reports[0].cancelled, "cancellation survives retention");
        assert_eq!(reports[0].tokens.len(), 2, "stopped at the cancel round");
        assert!(!reports[1].cancelled);
        assert_eq!(reports[1].tokens.len(), 5, "survivor kept decoding");
        assert!(doomed.report().expect("reported").cancelled);
        assert!(!survivor.report().expect("reported").cancelled);
    }

    /// Drives one slot with a running request, a queued `background`
    /// request, and an `interactive` request submitted just before the slot
    /// frees. Returns `true` if the background request was admitted first.
    fn background_wins_freed_slot(aging_rounds: u64) -> bool {
        let engine = engine(false, 8);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                admission_aging_rounds: aging_rounds,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let _running = serving
            .submit(Request::new(p[0].clone(), GenerationOptions::max_tokens(4)))
            .expect("queued");
        let background = serving
            .submit(
                Request::new(p[1].clone(), GenerationOptions::max_tokens(4))
                    .with_class(QosClass::Background),
            )
            .expect("queued");
        for _ in 0..3 {
            serving.serve_round();
        }
        let interactive = serving
            .submit(
                Request::new(p[2].clone(), GenerationOptions::max_tokens(4))
                    .with_class(QosClass::Interactive),
            )
            .expect("queued");
        // Drive until one of the two queued requests is admitted (produces
        // its first token) and note which.
        let winner = loop {
            let produced = serving.serve_round();
            if produced.iter().any(|(id, _)| *id == background.id()) {
                break true;
            }
            if produced.iter().any(|(id, _)| *id == interactive.id()) {
                break false;
            }
        };
        serving.run_until_idle();
        assert!(background.report().expect("background done").tokens.len() == 4);
        assert!(interactive.report().expect("interactive done").tokens.len() == 4);
        winner
    }

    #[test]
    fn drain_finish_mode_completes_residents_and_sheds_queue() {
        let engine = engine(false, 10);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let resident = serving
            .submit(Request::new(p[0].clone(), GenerationOptions::max_tokens(8)))
            .expect("queued");
        let queued = serving
            .submit(Request::new(p[1].clone(), GenerationOptions::max_tokens(8)))
            .expect("queued");
        for _ in 0..2 {
            serving.serve_round();
        }
        let report = serving.drain(None).expect("drain");
        assert_eq!(report.shed_queued, 1);
        assert_eq!(report.finished, 1);
        assert!(report.persisted.is_empty());
        assert!(report.rounds > 0);
        assert!(serving.is_draining());
        assert!(serving.is_idle());
        // The resident got its whole stream; the queued one was shed.
        assert_eq!(resident.report().expect("done").tokens.len(), 8);
        assert!(queued.report().expect("shed").cancelled);
        // Admission is closed for good.
        assert!(matches!(
            serving.submit(Request::new(p[2].clone(), GenerationOptions::max_tokens(2))),
            Err(SubmitError::Draining)
        ));
        // Idempotent: nothing left to do.
        let again = serving.drain(None).expect("drain twice");
        assert_eq!(again.shed_queued + again.finished, 0);
    }

    #[test]
    fn drain_persist_mode_snapshots_residents_that_restore_bit_identically() {
        let engine = engine(false, 11);
        let dir = std::env::temp_dir().join(format!("million_drain_{}", std::process::id()));
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 2,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        let handle = serving
            .submit(Request::new(
                p[0].clone(),
                GenerationOptions::max_tokens(12),
            ))
            .expect("queued");
        for _ in 0..4 {
            serving.serve_round();
        }
        let report = serving.drain(Some(&dir)).expect("drain persists");
        assert_eq!(report.persisted.len(), 1);
        assert_eq!(report.finished, 0);
        assert!(serving.is_idle(), "persisted resident retired immediately");
        let partial = handle.report().expect("retired");
        assert!(partial.cancelled, "stream ended early");
        assert_eq!(partial.tokens.len(), 4);
        // The snapshot resumes exactly where the drained engine stopped and
        // continues token-identically with an undisturbed serial run.
        let (id, path) = &report.persisted[0];
        assert_eq!(*id, handle.id());
        let mut restored = engine.restore_session(path).expect("snapshot loads");
        let tail = restored.generate(&GenerationOptions::max_tokens(8));
        let mut serial = engine.session();
        serial.prefill(&p[0]);
        let full = serial.generate(&GenerationOptions::max_tokens(12));
        assert_eq!(
            [partial.tokens.clone(), tail.tokens].concat(),
            full.tokens,
            "drain/restore splices into the serial stream"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_times_out_queued_and_resident_requests_distinctly() {
        let engine = engine(false, 12);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        // A deadline long enough to survive admission and the first decode
        // round, then expire while resident.
        let resident = serving
            .submit(
                Request::new(p[0].clone(), GenerationOptions::max_tokens(64)).with_deadline_ms(400),
            )
            .expect("queued");
        serving.serve_round(); // admits and decodes one token
        std::thread::sleep(Duration::from_millis(500));
        serving.serve_round(); // the next boundary retires it
        let report = resident.report().expect("timed out");
        assert!(report.timed_out, "resident deadline");
        assert!(!report.cancelled, "distinct from cancellation");
        assert_eq!(report.tokens.len(), 1, "kept what the round produced");
        // A queued request that expires before ever being admitted.
        let _hog = serving
            .submit(Request::new(
                p[1].clone(),
                GenerationOptions::max_tokens(64),
            ))
            .expect("queued");
        let starved = serving
            .submit(
                Request::new(p[2].clone(), GenerationOptions::max_tokens(4)).with_deadline_ms(0),
            )
            .expect("queued");
        serving.serve_round();
        let report = starved.report().expect("reaped in the queue");
        assert!(report.timed_out);
        assert!(!report.cancelled);
        assert!(report.tokens.is_empty());
        assert_eq!(report.prompt_tokens, 0, "never admitted");
        assert_eq!(serving.stats().timed_out, 2);
        assert_eq!(serving.stats().cancelled, 0);
    }

    #[test]
    fn serving_reports_and_stats_serialize_as_json() {
        let engine = engine(false, 13);
        let mut serving = ServingEngine::new(&engine, ServingConfig::default());
        let handle = serving
            .submit(Request::new(
                prompts()[0].clone(),
                GenerationOptions::max_tokens(3),
            ))
            .expect("queued");
        serving.run_until_idle();
        let report = handle.report().expect("done");
        let doc = serde_json::to_string(&report).expect("report serializes");
        let value = serde_json::from_str(&doc).expect("round-trips through the parser");
        assert_eq!(
            value
                .get("tokens")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            value.get("class").and_then(|v| v.as_str()),
            Some("Standard")
        );
        assert_eq!(
            value.get("timed_out"),
            Some(&serde_json::Value::Bool(false))
        );
        let doc = serde_json::to_string(&serving.stats()).expect("stats serialize");
        let value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(value.get("completed").and_then(|v| v.as_f64()), Some(1.0));
        assert_eq!(
            value
                .get("tokens_by_class")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn aging_promotes_starved_background_admissions() {
        // Without aging, the interactive class overtakes the earlier
        // background submission at the freed slot...
        assert!(!background_wins_freed_slot(u64::MAX));
        // ...but once the background request has aged past the threshold it
        // holds its place at the head of the queue.
        assert!(background_wins_freed_slot(3));
    }

    /// A 48-token prompt, far longer than the chunk size, admitted next to a
    /// short interactive request: the interactive stream must keep its full
    /// per-round share while the long prompt trickles in one chunk per
    /// round, and both streams must match a serial run bit for bit.
    #[test]
    fn chunked_prefill_overlaps_decode_and_matches_serial() {
        let engine = engine(false, 14);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 2,
                prefill_chunk_tokens: 8,
                ..ServingConfig::default()
            },
        );
        let long_prompt: Vec<u32> = (0..48u32).map(|i| (i * 7 + 3) % 128).collect();
        let short_prompt = prompts()[0].clone();
        let long = serving
            .submit(
                Request::new(long_prompt.clone(), GenerationOptions::max_tokens(4))
                    .with_class(QosClass::Background),
            )
            .expect("queued");
        let short = serving
            .submit(
                Request::new(short_prompt.clone(), GenerationOptions::max_tokens(20))
                    .with_class(QosClass::Interactive),
            )
            .expect("queued");

        // Round 1 admits both: the long prompt feeds its admission chunk
        // (8 of 48) and parks in the Prefilling state; the short prompt fits
        // in one chunk, so its admission round decodes immediately —
        // interactive weight 4 over background quantum 1 yields 4 tokens.
        serving.serve_round();
        assert_eq!(serving.prefilling_sessions(), 1);
        assert_eq!(serving.prefill_tokens_remaining(), 40);
        assert_eq!(short.drain_tokens().len(), 4);
        assert!(long.drain_tokens().is_empty(), "still prefilling");

        // Rounds 2–5: one 8-token chunk per round, and the interactive
        // stream never stalls for more than that chunk — it still gets its
        // full 4-token share every round.
        for fed in [16usize, 24, 32, 40] {
            serving.serve_round();
            assert_eq!(serving.prefill_tokens_remaining(), 48 - fed);
            assert_eq!(short.drain_tokens().len(), 4);
        }
        assert!(short.is_finished(), "20 interactive tokens streamed");

        // Round 6 feeds the final chunk and — scheduled exactly like a
        // monolithic admission turn — decodes the first token in the same
        // round.
        serving.serve_round();
        assert_eq!(serving.prefilling_sessions(), 0);
        assert_eq!(long.drain_tokens().len(), 1);

        serving.run_until_idle();
        // Serial twins replay each session's exact construction: the long
        // prompt's first chunk through the tiled prefill and the remainder
        // through the extend path; the short prompt fit one chunk, so its
        // twin is the plain one-shot run.
        let mut serial = engine.session();
        serial.prefill(&long_prompt[..8]);
        serial.append_prompt(&long_prompt[8..]);
        let expected = serial.generate(&GenerationOptions::max_tokens(4));
        assert_eq!(long.report().expect("finished").tokens, expected.tokens);
        let mut serial = engine.session();
        serial.prefill(&short_prompt);
        let expected = serial.generate(&GenerationOptions::max_tokens(20));
        assert_eq!(short.report().expect("finished").tokens, expected.tokens);
        // 6 chunks for the long prompt, 1 admission chunk for the short one.
        assert_eq!(serving.stats().prefill_chunks, 7);
        assert_eq!(long.report().expect("done").prefill_chunks, 6);
        assert_eq!(
            serving.stats().prefill_tokens_by_class,
            [short_prompt.len() as u64, 0, 48]
        );
    }

    /// Cancellation lands at a chunk boundary: the rest of the prompt is
    /// never fed, the slot frees, and the queued request behind it runs to
    /// completion untouched.
    #[test]
    fn cancel_mid_prefill_frees_the_slot_at_a_chunk_boundary() {
        let engine = engine(false, 15);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                prefill_chunk_tokens: 4,
                ..ServingConfig::default()
            },
        );
        let long_prompt: Vec<u32> = (0..40u32).map(|i| (i * 11 + 2) % 128).collect();
        let doomed = serving
            .submit(Request::new(long_prompt, GenerationOptions::max_tokens(8)))
            .expect("queued");
        let next_prompt = prompts()[1].clone();
        let next = serving
            .submit(Request::new(
                next_prompt.clone(),
                GenerationOptions::max_tokens(5),
            ))
            .expect("queued");
        // Admission chunk + two scheduled chunks: 12 of 40 tokens fed.
        for _ in 0..3 {
            serving.serve_round();
        }
        assert_eq!(serving.prefill_tokens_remaining(), 28);
        doomed.cancel();
        serving.run_until_idle();
        let report = doomed.report().expect("cancelled mid-prefill");
        assert!(report.cancelled);
        assert!(report.tokens.is_empty(), "never reached decoding");
        assert_eq!(report.prompt_tokens, 12, "stopped at the chunk boundary");
        assert_eq!(report.prefill_chunks, 3);
        assert_eq!(serving.prefilling_sessions(), 0);
        // The freed slot serves the queued request bit-identically (its
        // 5-token prompt chunks as 4 + 1, which the twin replays).
        let mut serial = engine.session();
        serial.prefill(&next_prompt[..4]);
        serial.append_prompt(&next_prompt[4..]);
        let expected = serial.generate(&GenerationOptions::max_tokens(5));
        assert_eq!(next.report().expect("done").tokens, expected.tokens);
        assert_eq!(serving.stats().cancelled, 1);
        assert_eq!(serving.stats().completed, 1);
    }

    /// The instruments reconcile *exactly* with the session reports: every
    /// retired request contributes one TTFT, one queue-wait, and one
    /// end-to-end sample; histogram sums equal the per-report nanosecond
    /// fields they mirror; every round times all four phases; and the
    /// journal tells each request's story in lifecycle order.
    #[test]
    fn telemetry_reconciles_exactly_with_session_reports() {
        let engine = engine(false, 16);
        let mut serving = ServingEngine::new(&engine, ServingConfig::default());
        let handles: Vec<RequestHandle> = prompts()
            .iter()
            .zip([
                QosClass::Interactive,
                QosClass::Standard,
                QosClass::Background,
                QosClass::Interactive,
            ])
            .map(|(p, class)| {
                serving
                    .submit(
                        Request::new(p.clone(), GenerationOptions::max_tokens(6)).with_class(class),
                    )
                    .expect("queued")
            })
            .collect();
        serving.run_until_idle();
        let snap = serving.telemetry();
        assert!(snap.enabled);

        let reports: Vec<SessionReport> = handles
            .iter()
            .map(|h| h.report().expect("finished"))
            .collect();
        assert_eq!(snap.ttft.count, 4, "one TTFT sample per retired request");
        assert_eq!(snap.queue_wait.count, 4);
        assert_eq!(snap.e2e.count, 4);
        let ttft_sum: u64 = reports.iter().map(|r| r.first_token_ns).sum();
        assert_eq!(snap.ttft.sum_ns, ttft_sum, "histogram mirrors the reports");
        let wait_sum: u64 = reports.iter().map(|r| r.queue_wait_ns).sum();
        assert_eq!(snap.queue_wait.sum_ns, wait_sum);
        let gaps: u64 = reports.iter().map(|r| r.tokens.len() as u64 - 1).sum();
        assert_eq!(snap.inter_token.count, gaps, "n tokens leave n-1 gaps");
        for r in &reports {
            assert!(r.first_token_ns > 0, "TTFT measured");
            assert!(r.decode_ns > 0, "decode time accumulated");
        }
        for phase in RoundPhase::ALL {
            assert_eq!(
                snap.phases[phase.index()].count,
                serving.rounds(),
                "{} timed once per round",
                phase.name()
            );
        }

        let events = serving.drain_trace_events();
        assert_eq!(snap.journal_total, events.len() as u64, "nothing evicted");
        for (handle, report) in handles.iter().zip(&reports) {
            let id = handle.id().as_u64();
            let story: Vec<&Event> = events.iter().filter(|e| e.request == id).collect();
            assert!(
                matches!(
                    story.first().map(|e| &e.kind),
                    Some(EventKind::Submit { .. })
                ),
                "story opens with Submit"
            );
            match story.last().map(|e| e.kind) {
                Some(EventKind::Retired { outcome, tokens }) => {
                    assert_eq!(outcome, RetireOutcome::Completed);
                    assert_eq!(tokens as usize, report.tokens.len());
                }
                other => panic!("story ends with Retired, got {other:?}"),
            }
            let ttft = story.iter().find_map(|e| match e.kind {
                EventKind::FirstToken { ttft_ns } => Some(ttft_ns),
                _ => None,
            });
            assert_eq!(ttft, Some(report.first_token_ns));
        }
        assert_eq!(serving.telemetry().journal_len, 0, "drain empties the ring");
        assert!(serving.request_table().is_empty(), "idle table has no rows");
    }

    /// With [`ServingConfig::telemetry`] off the instruments stay empty and
    /// the journal records nothing, but the per-request report timing
    /// (TTFT, decode, queue wait) is part of the report contract and keeps
    /// flowing.
    #[test]
    fn disabled_telemetry_keeps_report_timing_but_no_instruments() {
        let engine = engine(false, 16);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                telemetry: false,
                ..ServingConfig::default()
            },
        );
        let handle = serving
            .submit(Request::new(
                prompts()[0].clone(),
                GenerationOptions::max_tokens(5),
            ))
            .expect("queued");
        serving.run_until_idle();
        let snap = serving.telemetry();
        assert!(!snap.enabled);
        assert_eq!(snap.ttft.count, 0);
        assert_eq!(snap.inter_token.count, 0);
        assert_eq!(snap.queue_wait.count, 0);
        assert_eq!(snap.e2e.count, 0);
        assert!(snap.phases.iter().all(|p| p.count == 0));
        assert_eq!(snap.journal_total, 0);
        assert!(serving.drain_trace_events().is_empty());
        let report = handle.report().expect("finished");
        assert!(report.first_token_ns > 0, "report timing is unconditional");
        assert!(report.decode_ns > 0);
    }

    /// The `/debug/requests` live table follows a request through
    /// queued → prefilling → decoding and empties once the engine is idle.
    #[test]
    fn request_table_tracks_lifecycle_states() {
        let engine = engine(false, 17);
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                max_resident: 1,
                prefill_chunk_tokens: 4,
                ..ServingConfig::default()
            },
        );
        let long_prompt: Vec<u32> = (0..12u32).map(|i| (i * 13 + 3) % 128).collect();
        let long = serving
            .submit(Request::new(
                long_prompt.clone(),
                GenerationOptions::max_tokens(20),
            ))
            .expect("queued");
        let short = serving
            .submit(
                Request::new(prompts()[1].clone(), GenerationOptions::max_tokens(3))
                    .with_class(QosClass::Background),
            )
            .expect("queued");
        let table = serving.request_table();
        assert_eq!(table.len(), 2);
        assert!(table
            .iter()
            .all(|r| r.state == RequestState::Queued && r.tokens_fed == 0));
        assert_eq!(table[0].prompt_tokens, long_prompt.len());

        serving.serve_round();
        let table = serving.request_table();
        let row = table
            .iter()
            .find(|r| r.id == long.id().as_u64())
            .expect("resident row");
        assert_eq!(row.state, RequestState::Prefilling);
        assert!(row.tokens_fed >= 4 && row.tokens_fed < long_prompt.len());
        assert_eq!(row.generated, 0);
        let queued = table
            .iter()
            .find(|r| r.id == short.id().as_u64())
            .expect("queued row");
        assert_eq!(queued.state, RequestState::Queued);
        assert_eq!(queued.class, QosClass::Background);

        serving.serve_round();
        serving.serve_round();
        let table = serving.request_table();
        let row = table
            .iter()
            .find(|r| r.id == long.id().as_u64())
            .expect("resident row");
        assert_eq!(row.state, RequestState::Decoding);
        assert_eq!(row.tokens_fed, long_prompt.len());
        assert!(row.generated >= 1);

        serving.run_until_idle();
        assert!(serving.request_table().is_empty(), "idle table is empty");
        assert!(long.is_finished() && short.is_finished());
    }

    fn checkpoint_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("million_ckpt_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A shard crash between rounds loses the engine but not the
    /// checkpoints: a fresh engine recovers the residents and continues
    /// every stream — greedy and seeded top-k alike — bit-identically to an
    /// undisturbed run, with clean retirement removing the files.
    #[test]
    fn recovered_checkpoints_continue_every_stream_bit_identically() {
        let engine = engine(false, 21);
        let dir = checkpoint_dir("recover");
        let config = ServingConfig {
            max_resident: 4,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every_rounds: 1,
            ..ServingConfig::default()
        };
        let p = prompts();
        let submit_all = |serving: &mut ServingEngine| -> Vec<RequestHandle> {
            vec![
                serving
                    .submit(Request::new(
                        p[0].clone(),
                        GenerationOptions::max_tokens(12),
                    ))
                    .expect("queued"),
                serving
                    .submit(
                        Request::new(p[1].clone(), GenerationOptions::max_tokens(12))
                            .with_sampler(Sampler::top_k(0.8, 8, 77)),
                    )
                    .expect("queued"),
            ]
        };
        // The undisturbed baseline (no checkpointing).
        let mut baseline = ServingEngine::new(&engine, ServingConfig::default());
        let expected: Vec<Vec<u32>> = {
            let handles = submit_all(&mut baseline);
            baseline.run_until_idle();
            handles
                .iter()
                .map(|h| h.report().expect("done").tokens.clone())
                .collect()
        };
        // The crashing run: 4 rounds of service, then the engine is dropped
        // without shutdown — exactly what a panic unwinding the shard loop
        // leaves behind.
        let mut serving = ServingEngine::new(&engine, config.clone());
        let handles = submit_all(&mut serving);
        for _ in 0..4 {
            serving.serve_round();
        }
        let streamed: Vec<Vec<u32>> = handles
            .iter()
            .map(|h| h.drain_tokens().iter().map(|s| s.token).collect())
            .collect();
        assert!(serving.stats().snapshot_writes >= 2, "checkpoints written");
        drop(serving);
        drop(handles);

        let mut restarted = ServingEngine::new(&engine, config);
        let recovered = restarted.recover(&dir);
        assert!(recovered.failed.is_empty(), "{:?}", recovered.failed);
        assert_eq!(recovered.restored.len(), 2);
        restarted.run_until_idle();
        for (i, handle) in recovered.restored.iter().enumerate() {
            assert_eq!(handle.recovered_tokens(), streamed[i].len());
            let tail: Vec<u32> = handle.drain_tokens().iter().map(|s| s.token).collect();
            assert_eq!(
                [streamed[i].clone(), tail].concat(),
                expected[i],
                "request {i} continues bit-identically across the crash"
            );
            // The full-history report also matches the baseline.
            assert_eq!(handle.report().expect("done").tokens, expected[i]);
        }
        assert_eq!(restarted.stats().completed, 2);
        assert!(
            std::fs::read_dir(&dir)
                .map(|d| d.count() == 0)
                .unwrap_or(true),
            "clean retirement removes every checkpoint"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corrupt checkpoints — truncation, flipped bytes, garbage — are typed
    /// recovery failures, counted and reported, never panics; intact
    /// neighbours still restore.
    #[test]
    fn recover_rejects_corrupt_checkpoints_without_losing_good_ones() {
        let engine = engine(false, 22);
        let dir = checkpoint_dir("corrupt");
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every_rounds: 1,
                ..ServingConfig::default()
            },
        );
        let _handle = serving
            .submit(Request::new(
                prompts()[0].clone(),
                GenerationOptions::max_tokens(16),
            ))
            .expect("queued");
        for _ in 0..3 {
            serving.serve_round();
        }
        drop(serving);
        let good = dir.join("request-0.ckpt");
        let bytes = std::fs::read(&good).expect("checkpoint exists");
        // A truncated copy, a flipped byte in the metadata section, and
        // outright garbage, next to the intact original.
        std::fs::write(dir.join("request-7.ckpt"), &bytes[..bytes.len() / 2]).unwrap();
        let mut flipped = bytes.clone();
        flipped[21] ^= 0x40;
        std::fs::write(dir.join("request-8.ckpt"), &flipped).unwrap();
        std::fs::write(dir.join("request-9.ckpt"), b"not a checkpoint").unwrap();

        let mut restarted = ServingEngine::new(&engine, ServingConfig::default());
        let recovered = restarted.recover(&dir);
        assert_eq!(recovered.restored.len(), 1, "the intact file restores");
        assert_eq!(recovered.failed.len(), 3);
        assert_eq!(restarted.stats().snapshot_crc_failures, 3);
        assert!(
            recovered
                .failed
                .iter()
                .any(|(_, e)| e.contains("checksum mismatch")),
            "flipped byte is a checksum error: {:?}",
            recovered.failed
        );
        restarted.run_until_idle();
        assert_eq!(restarted.stats().completed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The fault plan's serving hooks: a scheduled queue-full burst rejects
    /// submissions on an empty queue, and the scheduled snapshot I/O error
    /// surfaces through `persist_request` while later writes succeed.
    #[test]
    fn fault_plan_injects_queue_full_and_snapshot_io_errors() {
        let engine = engine(false, 23);
        let plan = Arc::new(
            FaultPlan::parse("queue_full@submit=1,count=2 snapshot_io@write=1", 7).unwrap(),
        );
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                fault_plan: Some(plan),
                ..ServingConfig::default()
            },
        );
        let p = prompts();
        for _ in 0..2 {
            assert!(matches!(
                serving.submit(Request::new(p[0].clone(), GenerationOptions::max_tokens(4))),
                Err(SubmitError::QueueFull { .. })
            ));
        }
        assert_eq!(serving.stats().rejected, 2);
        let handle = serving
            .submit(Request::new(p[0].clone(), GenerationOptions::max_tokens(8)))
            .expect("burst over");
        serving.serve_round();
        let path = std::env::temp_dir().join(format!("million_fault_{}.kv", std::process::id()));
        let err = serving
            .persist_request(handle.id(), &path)
            .expect_err("first write is the scheduled failure");
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(serving.stats().snapshot_writes, 0);
        assert!(
            serving
                .persist_request(handle.id(), &path)
                .expect("written"),
            "the retry lands"
        );
        assert_eq!(serving.stats().snapshot_writes, 1);
        serving.run_until_idle();
        std::fs::remove_file(&path).ok();
    }

    /// A scheduled short read corrupts checkpoint recovery exactly once —
    /// the typed failure is counted, and the engine keeps serving.
    #[test]
    fn fault_plan_short_read_corrupts_exactly_one_recovery() {
        let engine = engine(false, 24);
        let dir = checkpoint_dir("short_read");
        let mut serving = ServingEngine::new(
            &engine,
            ServingConfig {
                checkpoint_dir: Some(dir.clone()),
                checkpoint_every_rounds: 1,
                ..ServingConfig::default()
            },
        );
        for prompt in &prompts()[..2] {
            serving
                .submit(Request::new(
                    prompt.clone(),
                    GenerationOptions::max_tokens(16),
                ))
                .expect("queued");
        }
        for _ in 0..3 {
            serving.serve_round();
        }
        drop(serving);
        let plan = Arc::new(FaultPlan::parse("short_read@read=1", 5).unwrap());
        let mut restarted = ServingEngine::new(
            &engine,
            ServingConfig {
                fault_plan: Some(plan),
                ..ServingConfig::default()
            },
        );
        let recovered = restarted.recover(&dir);
        assert_eq!(recovered.restored.len(), 1, "the unscheduled read is fine");
        assert_eq!(recovered.failed.len(), 1, "the short read is typed");
        assert_eq!(restarted.stats().snapshot_crc_failures, 1);
        restarted.run_until_idle();
        assert_eq!(restarted.stats().completed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
