//! Serving-side observability: the [`ServingTelemetry`] recorder a
//! [`crate::ServingEngine`] carries, and the serializable snapshot types
//! metrics endpoints export.
//!
//! The recorder is a thin aggregation layer over [`million_telemetry`]'s
//! primitives: four request-latency histograms (time to first token,
//! inter-token gap, queue wait, end-to-end), one histogram per
//! [`RoundPhase`] of `serve_round`, and the bounded request-lifecycle
//! [`EventJournal`]. Everything is gated on one `enabled` flag checked
//! before any clock is read: a disabled recorder takes **zero**
//! `Instant::now()` calls and touches no memory beyond the flag test, so
//! telemetry can stay compiled into the hot loop without costing the
//! pinned bench figures anything when switched off.

use std::time::Instant;

use million_telemetry::{
    Event, EventJournal, EventKind, HistogramSnapshot, LatencyHistogram, HIST_BUCKETS,
};
use serde::Serialize;

use crate::serving::QosClass;

/// The four phases one [`crate::ServingEngine::serve_round`] runs through,
/// each timed into its own histogram. `Retire` covers both boundary
/// retirement passes of a round (entry and exit) summed, so every phase
/// histogram's count equals the number of rounds served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RoundPhase {
    /// Reaping cancelled queued requests plus both resident-retirement
    /// passes (round entry and exit).
    Retire,
    /// Refilling freed slots from the pending queue (admission-chunk
    /// prefill included — admission owns the first chunk).
    Admit,
    /// The scheduled prefill chunks of residents still admitting their
    /// prompt.
    PrefillChunk,
    /// The deficit-weighted round-robin decode pass.
    Decode,
}

impl RoundPhase {
    /// Every phase, in round order.
    pub const ALL: [RoundPhase; 4] = [
        RoundPhase::Retire,
        RoundPhase::Admit,
        RoundPhase::PrefillChunk,
        RoundPhase::Decode,
    ];

    /// Dense index (position in [`RoundPhase::ALL`]).
    pub fn index(self) -> usize {
        match self {
            RoundPhase::Retire => 0,
            RoundPhase::Admit => 1,
            RoundPhase::PrefillChunk => 2,
            RoundPhase::Decode => 3,
        }
    }

    /// Stable lowercase name (the Prometheus `phase` label value).
    pub fn name(self) -> &'static str {
        match self {
            RoundPhase::Retire => "retire",
            RoundPhase::Admit => "admit",
            RoundPhase::PrefillChunk => "prefill_chunk",
            RoundPhase::Decode => "decode",
        }
    }
}

/// Live telemetry recorder owned by a [`crate::ServingEngine`].
#[derive(Debug)]
pub struct ServingTelemetry {
    enabled: bool,
    /// Journal timestamps are nanoseconds since this engine-construction
    /// instant, so per-shard traces share one monotonic axis.
    epoch: Instant,
    ttft: LatencyHistogram,
    inter_token: LatencyHistogram,
    queue_wait: LatencyHistogram,
    e2e: LatencyHistogram,
    phases: [LatencyHistogram; 4],
    journal: EventJournal,
}

impl ServingTelemetry {
    /// A recorder that records only when `enabled`, journalling at most
    /// `journal_events` lifecycle events.
    pub fn new(enabled: bool, journal_events: usize) -> Self {
        Self {
            enabled,
            epoch: Instant::now(),
            ttft: LatencyHistogram::new(),
            inter_token: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            e2e: LatencyHistogram::new(),
            phases: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            journal: EventJournal::new(if enabled { journal_events } else { 0 }),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Reads the clock iff recording is on — the single pattern that keeps
    /// the disabled path free of `Instant::now()` calls.
    pub fn clock(&self) -> Option<Instant> {
        self.enabled.then(Instant::now)
    }

    /// Records a time-to-first-token sample.
    pub fn record_ttft(&mut self, ns: u64) {
        if self.enabled {
            self.ttft.record(ns);
        }
    }

    /// Records the gap between two consecutive decode tokens of one
    /// request.
    pub fn record_inter_token(&mut self, ns: u64) {
        if self.enabled {
            self.inter_token.record(ns);
        }
    }

    /// Records the queue wait of an admitted request.
    pub fn record_queue_wait(&mut self, ns: u64) {
        if self.enabled {
            self.queue_wait.record(ns);
        }
    }

    /// Records the submission-to-retirement duration of a resident request.
    pub fn record_e2e(&mut self, ns: u64) {
        if self.enabled {
            self.e2e.record(ns);
        }
    }

    /// Records one phase duration of a serve round.
    pub fn record_phase(&mut self, phase: RoundPhase, ns: u64) {
        if self.enabled {
            self.phases[phase.index()].record(ns);
        }
    }

    /// Journals a lifecycle event, stamped with the current round and the
    /// nanoseconds since the recorder's epoch. No-op when disabled.
    pub fn event(&mut self, request: u64, round: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        self.journal.push(Event {
            t_ns: self.epoch.elapsed().as_nanos() as u64,
            request,
            round,
            kind,
        });
    }

    /// Takes every buffered lifecycle event, oldest first (the
    /// `/debug/trace` drain).
    pub fn drain_events(&mut self) -> Vec<Event> {
        self.journal.drain()
    }

    /// A serializable copy of every histogram and the journal counters.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled: self.enabled,
            ttft: HistogramReport::from_hist(&self.ttft),
            inter_token: HistogramReport::from_hist(&self.inter_token),
            queue_wait: HistogramReport::from_hist(&self.queue_wait),
            e2e: HistogramReport::from_hist(&self.e2e),
            phases: self.phases.iter().map(HistogramReport::from_hist).collect(),
            journal_len: self.journal.len(),
            journal_dropped: self.journal.dropped(),
            journal_total: self.journal.total(),
        }
    }
}

/// A serializable, mergeable copy of one latency histogram: the exact
/// count/sum/min/max, precomputed p50/p95/p99, and the raw log2 bucket
/// counts (index `i` holds samples of bit width `i`; see
/// [`million_telemetry::bucket_bound_ns`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramReport {
    /// Total samples.
    pub count: u64,
    /// Exact sum of every sample, in nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (0 when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
    /// Median (log2-bucket upper bound, clamped to the exact max).
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Samples beyond the last bucket's bound.
    pub overflow: u64,
    /// Per-bucket (non-cumulative) counts, [`HIST_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl HistogramReport {
    /// A report with no samples.
    pub fn empty() -> Self {
        Self::from_snapshot(&HistogramSnapshot::empty())
    }

    fn from_hist(hist: &LatencyHistogram) -> Self {
        Self::from_snapshot(&hist.snapshot())
    }

    /// Builds the report from a raw snapshot.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        Self {
            count: snap.count,
            sum_ns: snap.sum_ns,
            min_ns: snap.min_ns,
            max_ns: snap.max_ns,
            p50_ns: snap.p50_ns(),
            p95_ns: snap.p95_ns(),
            p99_ns: snap.p99_ns(),
            overflow: snap.overflow,
            buckets: snap.counts.to_vec(),
        }
    }

    /// Reconstructs the raw snapshot (for Prometheus rendering and
    /// fleet-total merging).
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HIST_BUCKETS];
        for (slot, &c) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = c;
        }
        HistogramSnapshot {
            counts,
            overflow: self.overflow,
            count: self.count,
            sum_ns: self.sum_ns,
            min_ns: self.min_ns,
            max_ns: self.max_ns,
        }
    }

    /// Adds another report's samples into this one (percentiles are
    /// recomputed over the merged buckets).
    pub fn merge(&mut self, other: &HistogramReport) {
        let mut snap = self.to_snapshot();
        snap.merge(&other.to_snapshot());
        *self = Self::from_snapshot(&snap);
    }
}

/// Serializable copy of a [`ServingTelemetry`] recorder — what
/// `GET /metrics` exports per shard and merges into fleet totals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TelemetrySnapshot {
    /// Whether the source recorder was recording.
    pub enabled: bool,
    /// Submission to first decode token.
    pub ttft: HistogramReport,
    /// Gap between consecutive decode tokens of one request.
    pub inter_token: HistogramReport,
    /// Submission to admission.
    pub queue_wait: HistogramReport,
    /// Submission to retirement (resident requests only).
    pub e2e: HistogramReport,
    /// Per-phase serve-round durations, indexed by [`RoundPhase::index`].
    pub phases: Vec<HistogramReport>,
    /// Lifecycle events currently buffered in the journal.
    pub journal_len: usize,
    /// Lifecycle events evicted from the full journal ring.
    pub journal_dropped: u64,
    /// Lifecycle events ever recorded.
    pub journal_total: u64,
}

impl TelemetrySnapshot {
    /// A snapshot with nothing recorded (the fleet-total identity).
    pub fn empty() -> Self {
        Self {
            enabled: false,
            ttft: HistogramReport::empty(),
            inter_token: HistogramReport::empty(),
            queue_wait: HistogramReport::empty(),
            e2e: HistogramReport::empty(),
            phases: RoundPhase::ALL
                .iter()
                .map(|_| HistogramReport::empty())
                .collect(),
            journal_len: 0,
            journal_dropped: 0,
            journal_total: 0,
        }
    }

    /// Adds another shard's snapshot into this one — the fleet-total
    /// reduction.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.enabled |= other.enabled;
        self.ttft.merge(&other.ttft);
        self.inter_token.merge(&other.inter_token);
        self.queue_wait.merge(&other.queue_wait);
        self.e2e.merge(&other.e2e);
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.merge(theirs);
        }
        self.journal_len += other.journal_len;
        self.journal_dropped += other.journal_dropped;
        self.journal_total += other.journal_total;
    }
}

/// Lifecycle state of a request in the `/debug/requests` live table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequestState {
    /// Submitted, waiting for a resident slot.
    Queued,
    /// Resident, still teacher-forcing its prompt in chunks.
    Prefilling,
    /// Resident, producing tokens.
    Decoding,
    /// Done (retained-cohort mode keeps finished slots resident until
    /// shutdown; retiring engines drop them at the next boundary).
    Finished,
}

impl RequestState {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            RequestState::Queued => "queued",
            RequestState::Prefilling => "prefilling",
            RequestState::Decoding => "decoding",
            RequestState::Finished => "finished",
        }
    }
}

/// One row of the `/debug/requests` live table: where a request currently
/// is in its lifecycle and how much work has been done for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RequestInfo {
    /// The request id.
    pub id: u64,
    /// Its QoS class.
    pub class: QosClass,
    /// Current lifecycle state.
    pub state: RequestState,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Prompt tokens already in the session's caches (store-attached
    /// prefix included); 0 while queued.
    pub tokens_fed: usize,
    /// Decode tokens produced so far.
    pub generated: usize,
    /// Milliseconds since submission.
    pub age_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use million_telemetry::RetireOutcome;

    #[test]
    fn disabled_recorder_reads_no_clock_and_records_nothing() {
        let mut t = ServingTelemetry::new(false, 128);
        assert!(t.clock().is_none(), "no Instant::now on the disabled path");
        t.record_ttft(99);
        t.record_phase(RoundPhase::Decode, 42);
        t.event(1, 1, EventKind::Cancelled);
        let snap = t.snapshot();
        assert_eq!(snap.ttft.count, 0);
        assert_eq!(snap.phases[RoundPhase::Decode.index()].count, 0);
        assert_eq!(snap.journal_total, 0);
        assert!(t.drain_events().is_empty());
    }

    #[test]
    fn snapshot_report_round_trips_and_merges() {
        let mut t = ServingTelemetry::new(true, 128);
        assert!(t.clock().is_some());
        for ns in [10u64, 1_000, 1_000_000] {
            t.record_ttft(ns);
        }
        t.record_queue_wait(77);
        t.event(
            4,
            2,
            EventKind::Retired {
                outcome: RetireOutcome::Completed,
                tokens: 3,
            },
        );
        let snap = t.snapshot();
        assert_eq!(snap.ttft.count, 3);
        assert_eq!(snap.ttft.sum_ns, 1_001_010);
        assert_eq!(snap.ttft.max_ns, 1_000_000);
        assert_eq!(snap.ttft.buckets.len(), HIST_BUCKETS);
        assert_eq!(snap.journal_len, 1);
        // Report -> raw snapshot -> report is lossless.
        let rebuilt = HistogramReport::from_snapshot(&snap.ttft.to_snapshot());
        assert_eq!(rebuilt, snap.ttft);
        // Fleet merge doubles every count and keeps exact sums.
        let mut fleet = TelemetrySnapshot::empty();
        fleet.merge(&snap);
        fleet.merge(&snap);
        assert!(fleet.enabled);
        assert_eq!(fleet.ttft.count, 6);
        assert_eq!(fleet.ttft.sum_ns, 2 * 1_001_010);
        assert_eq!(fleet.ttft.min_ns, 10);
        assert_eq!(fleet.queue_wait.count, 2);
        assert_eq!(fleet.journal_len, 2);
        let drained = t.drain_events();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].request, 4);
    }

    #[test]
    fn snapshot_and_request_info_serialize_as_json() {
        let mut t = ServingTelemetry::new(true, 8);
        t.record_e2e(123);
        t.record_phase(RoundPhase::Retire, 5);
        let doc = serde_json::to_string(&t.snapshot()).expect("snapshot serializes");
        let value: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(
            value
                .get("e2e")
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_f64()),
            Some(1.0)
        );
        assert_eq!(
            value
                .get("phases")
                .and_then(|v| v.as_array())
                .map(<[_]>::len),
            Some(4)
        );
        let row = RequestInfo {
            id: 7,
            class: QosClass::Interactive,
            state: RequestState::Prefilling,
            prompt_tokens: 48,
            tokens_fed: 16,
            generated: 0,
            age_ms: 12,
        };
        let doc = serde_json::to_string(&row).expect("row serializes");
        assert!(doc.contains("\"Prefilling\""), "{doc}");
        assert_eq!(RequestState::Prefilling.name(), "prefilling");
        assert_eq!(RoundPhase::PrefillChunk.name(), "prefill_chunk");
    }
}
