//! The end-to-end MILLION inference engine.
//!
//! The engine holds the immutable, shareable state — the transformer and the
//! trained PQ codebooks. All decoding goes through persistent
//! [`InferenceSession`]s ([`MillionEngine::session`]); the one-shot
//! [`MillionEngine::generate`] / [`MillionEngine::generate_reference`] calls
//! are thin compatibility wrappers that build a session, run it, and drop it.

use std::sync::{Arc, Mutex};

use million_model::{build_caches, CacheSpec, PrefillScratch, Sampler, StepScratch, Transformer};
use million_store::{BlockStore, StoreStats};

use crate::config::MillionConfig;
use crate::session::{GenerationOptions, InferenceSession};
use crate::trainer::{train_codebooks, TrainedCodebooks};
use crate::MillionError;

/// Outcome of one generation call.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationResult {
    /// The generated token ids (length = requested new tokens, or fewer if a
    /// stop token fired).
    pub tokens: Vec<u32>,
    /// Prompt tokens the session has consumed in total — the prompt length
    /// for a one-shot `generate`, the sum over turns for a multi-turn
    /// session.
    pub prefill_tokens: usize,
    /// KV-cache bytes across all layers at the end of generation.
    pub kv_bytes: usize,
    /// What an fp16 cache of the same length would have used.
    pub fp16_kv_bytes: usize,
    /// Encoded blocks received from the asynchronous quantization worker
    /// during this call (0 when running synchronously).
    pub async_batches: usize,
    /// Tokens still held densely (not yet quantized) at the end.
    pub residual_tokens: usize,
}

impl GenerationResult {
    /// Fraction of fp16 storage used by the quantized cache (lower is better).
    pub fn compression_ratio(&self) -> f64 {
        if self.fp16_kv_bytes == 0 {
            return 1.0;
        }
        self.kv_bytes as f64 / self.fp16_kv_bytes as f64
    }
}

/// MILLION engine: a transformer plus trained PQ codebooks. Decode state
/// (caches, positions, the asynchronous quantization stream) lives in
/// [`InferenceSession`]s, so one engine serves any number of concurrent
/// sequences.
#[derive(Debug)]
pub struct MillionEngine {
    model: Transformer,
    codebooks: TrainedCodebooks,
    config: MillionConfig,
    /// Copy-on-write code store shared by every session of this engine
    /// (`None` when `config.block_tokens == 0`). Token-content addressing is
    /// sound only within one engine, because codes are a deterministic
    /// function of the weights, the codebooks, and the token prefix.
    store: Option<Arc<BlockStore>>,
    /// Tiled-prefill working memory shared by every admission this engine
    /// serves: sessions prefill once each, so the scratch (staging buffer +
    /// per-worker tile arenas, multi-MB at long prompts) is reused across
    /// admissions instead of being grown and dropped per session. Admissions
    /// serialise on the lock — they are compute-bound and already run one at
    /// a time in the scheduler.
    prefill_scratch: Mutex<PrefillScratch>,
}

impl MillionEngine {
    /// Trains codebooks on `calibration` and builds the engine.
    ///
    /// # Errors
    ///
    /// Returns [`MillionError`] if codebook training fails (empty calibration
    /// stream, PQ geometry not dividing the head dimension, ...).
    pub fn new(
        model: Transformer,
        config: MillionConfig,
        calibration: &[u32],
    ) -> Result<Self, MillionError> {
        let codebooks = train_codebooks(&model, calibration, &config)?;
        let store = Self::build_store(&config);
        Ok(Self {
            model,
            codebooks,
            config,
            store,
            prefill_scratch: Mutex::new(PrefillScratch::new()),
        })
    }

    /// Builds an engine from already-trained codebooks.
    ///
    /// # Errors
    ///
    /// Returns [`MillionError::InvalidConfig`] if the codebook count does not
    /// match the model's layer count.
    pub fn from_parts(
        model: Transformer,
        codebooks: TrainedCodebooks,
        config: MillionConfig,
    ) -> Result<Self, MillionError> {
        if codebooks.n_layers() != model.config().n_layers {
            return Err(MillionError::InvalidConfig(format!(
                "{} codebook pairs for a {}-layer model",
                codebooks.n_layers(),
                model.config().n_layers
            )));
        }
        let store = Self::build_store(&config);
        Ok(Self {
            model,
            codebooks,
            config,
            store,
            prefill_scratch: Mutex::new(PrefillScratch::new()),
        })
    }

    fn build_store(config: &MillionConfig) -> Option<Arc<BlockStore>> {
        (config.block_tokens > 0).then(|| {
            Arc::new(BlockStore::with_byte_budget(
                config.block_tokens,
                config.store_byte_budget,
            ))
        })
    }

    /// The engine's copy-on-write code store, if enabled.
    pub fn store(&self) -> Option<&Arc<BlockStore>> {
        self.store.as_ref()
    }

    /// Aggregate block-store accounting (`None` when the store is disabled).
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// The underlying transformer.
    pub fn model(&self) -> &Transformer {
        &self.model
    }

    /// The engine configuration.
    pub fn config(&self) -> &MillionConfig {
        &self.config
    }

    /// The trained codebooks.
    pub fn codebooks(&self) -> &TrainedCodebooks {
        &self.codebooks
    }

    /// The engine-wide tiled-prefill scratch (see the field docs).
    pub(crate) fn prefill_scratch(&self) -> &Mutex<PrefillScratch> {
        &self.prefill_scratch
    }

    /// Opens a new standalone inference session. With
    /// [`MillionConfig::async_quant`] set, the session spawns its own
    /// quantization worker; use a [`crate::BatchScheduler`] to share one
    /// worker across many sessions.
    pub fn session(&self) -> InferenceSession<'_> {
        InferenceSession::new(self, 0, false)
    }

    /// Cache specification equivalent to this engine's decode pipeline, for
    /// use with the evaluation harnesses (perplexity, LongBench).
    pub fn cache_spec(&self) -> CacheSpec {
        CacheSpec::Pq(self.codebooks.to_pq_spec(self.config.residual_len, true))
    }

    /// Generates `max_new_tokens` tokens after `prompt`, using the configured
    /// decode pipeline (asynchronous or synchronous quantization).
    ///
    /// Compatibility wrapper: equivalent to opening a [`Self::session`],
    /// prefilling, and generating once.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or exceeds the model's context window.
    pub fn generate(
        &self,
        prompt: &[u32],
        max_new_tokens: usize,
        sampler: &mut Sampler,
    ) -> GenerationResult {
        let mut session = self.session();
        session.prefill(prompt);
        session.generate_with(&GenerationOptions::max_tokens(max_new_tokens), sampler)
    }

    /// Generates with a full-precision cache — the fp16 reference used by the
    /// fidelity metrics of Fig. 6.
    pub fn generate_reference(
        &self,
        prompt: &[u32],
        max_new_tokens: usize,
        sampler: &mut Sampler,
    ) -> Vec<u32> {
        let mut caches = build_caches(self.model.config(), &CacheSpec::Full);
        let logits = self.model.prefill(prompt, &mut caches, None);
        let mut tokens = Vec::with_capacity(max_new_tokens);
        let mut next = sampler.sample(logits.row(prompt.len() - 1));
        tokens.push(next);
        let mut scratch = StepScratch::new();
        for _ in 1..max_new_tokens {
            let logits = self.model.decode_step_into(next, &mut caches, &mut scratch);
            next = sampler.sample(logits);
            tokens.push(next);
        }
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use million_model::ModelConfig;

    use crate::test_fixtures::{engine, prompt};

    #[test]
    fn sync_generation_produces_requested_tokens_and_compresses() {
        let engine = engine(false, 0);
        let mut sampler = Sampler::greedy();
        let result = engine.generate(&prompt(), 16, &mut sampler);
        assert_eq!(result.tokens.len(), 16);
        assert_eq!(result.prefill_tokens, prompt().len());
        assert!(
            result.compression_ratio() < 0.35,
            "ratio {}",
            result.compression_ratio()
        );
        assert_eq!(result.async_batches, 0);
    }

    #[test]
    fn async_generation_matches_sync_generation() {
        // The asynchronous pipeline only changes *when* tokens are encoded,
        // never which tokens attention sees, so greedy outputs must agree.
        let sync_engine = engine(false, 1);
        let async_engine = engine(true, 1);
        let mut s1 = Sampler::greedy();
        let mut s2 = Sampler::greedy();
        let sync_out = sync_engine.generate(&prompt(), 12, &mut s1);
        let async_out = async_engine.generate(&prompt(), 12, &mut s2);
        // Note: sync quantizes each new token immediately (residual 0) while
        // async keeps it dense until the worker returns, so the *cache state*
        // differs transiently; outputs may differ only if that transient
        // difference changes an argmax. Require high agreement.
        let agree = sync_out
            .tokens
            .iter()
            .zip(async_out.tokens.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree >= 10,
            "sync {:?} vs async {:?}",
            sync_out.tokens,
            async_out.tokens
        );
        assert!(async_out.async_batches > 0);
    }

    #[test]
    fn async_pipeline_eventually_quantizes_everything() {
        let engine = engine(true, 2);
        let mut sampler = Sampler::greedy();
        let result = engine.generate(&prompt(), 24, &mut sampler);
        // After the final flush, at most the configured residual remains
        // dense (residual_len = 0 for this engine).
        assert_eq!(result.residual_tokens, 0);
        assert!(result.kv_bytes > 0);
    }

    #[test]
    fn reference_generation_uses_full_precision() {
        let engine = engine(false, 3);
        let mut sampler = Sampler::greedy();
        let reference = engine.generate_reference(&prompt(), 8, &mut sampler);
        assert_eq!(reference.len(), 8);
        assert!(reference
            .iter()
            .all(|&t| (t as usize) < engine.model().config().vocab_size));
    }

    #[test]
    fn quantized_generation_tracks_reference_closely() {
        let engine = engine(false, 4);
        let mut s1 = Sampler::greedy();
        let mut s2 = Sampler::greedy();
        let reference = engine.generate_reference(&prompt(), 16, &mut s1);
        let quantized = engine.generate(&prompt(), 16, &mut s2).tokens;
        let agree = reference
            .iter()
            .zip(quantized.iter())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree >= 12,
            "agreement {agree}/16: {reference:?} vs {quantized:?}"
        );
    }

    #[test]
    fn from_parts_validates_layer_count() {
        let config = ModelConfig::tiny_for_tests();
        let model = Transformer::new(config.clone(), 5);
        let calibration: Vec<u32> = (0..64).map(|i| (i % config.vocab_size) as u32).collect();
        let engine_cfg = MillionConfig::four_bit(config.head_dim());
        let mut codebooks = train_codebooks(&model, &calibration, &engine_cfg).unwrap();
        codebooks.key.pop();
        codebooks.value.pop();
        assert!(MillionEngine::from_parts(model, codebooks, engine_cfg).is_err());
    }

    #[test]
    fn cache_spec_matches_model_layers() {
        let engine = engine(false, 6);
        match engine.cache_spec() {
            CacheSpec::Pq(spec) => {
                assert_eq!(spec.key_codebooks.len(), engine.model().config().n_layers);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }
}
