//! Persistent streaming inference sessions.
//!
//! The seed engine exposed one-shot `generate(prompt, n, sampler)` calls that
//! rebuilt the quantized KV cache from scratch every time — exactly the wrong
//! shape for the long-context serving scenario the paper targets, where a
//! sequence's PQ-compressed cache is the asset being preserved. An
//! [`InferenceSession`] instead owns its per-layer
//! [`million_kvcache::PqKvCache`]s across calls:
//!
//! * [`InferenceSession::prefill`] processes the opening prompt and encodes
//!   its KV (synchronously, as in Fig. 4 steps ③/④);
//! * [`InferenceSession::step`] decodes one token, absorbing finished blocks
//!   from the asynchronous quantization stream before attention and shipping
//!   newly staged tokens after it, and reports per-step telemetry;
//! * [`InferenceSession::append_prompt`] continues a conversation: the new
//!   user turn is fed through the decode path, attending to the
//!   *already-quantized* history — nothing is re-prefetched or re-encoded;
//! * [`InferenceSession::stream`] yields tokens lazily until a
//!   [`StopCriteria`] fires.
//!
//! Sessions either own a private [`QuantWorker`] (standalone use) or
//! delegate encode traffic to a shared worker managed by
//! [`crate::BatchScheduler`].

use million_kvcache::{KvCache, PqCacheConfig, PqKvCache};
use million_model::{Sampler, StepScratch};
use million_store::{Block, ChainHandle};

use crate::async_quant::{EncodeRequest, EncodeResult, QuantWorker};
use crate::engine::{GenerationResult, MillionEngine};

/// Token-level termination conditions for a generation call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StopCriteria {
    /// Generation stops after emitting this token (the token itself is kept).
    pub eos_id: Option<u32>,
    /// Additional token ids that terminate generation, for stop-word style
    /// protocols.
    pub stop_ids: Vec<u32>,
}

impl StopCriteria {
    /// No termination tokens: generation runs to the requested length.
    pub fn none() -> Self {
        Self::default()
    }

    /// Stops on the given end-of-sequence token.
    pub fn eos(eos_id: u32) -> Self {
        Self {
            eos_id: Some(eos_id),
            stop_ids: Vec::new(),
        }
    }

    /// Adds extra stop tokens.
    #[must_use]
    pub fn with_stop_ids(mut self, stop_ids: Vec<u32>) -> Self {
        self.stop_ids = stop_ids;
        self
    }

    /// Returns `true` if `token` terminates generation.
    pub fn matches(&self, token: u32) -> bool {
        self.eos_id == Some(token) || self.stop_ids.contains(&token)
    }
}

/// Options for one generation call, replacing the positional
/// `(max_new_tokens, sampler)` arguments of the seed API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationOptions {
    /// Upper bound on the number of new tokens.
    pub max_new_tokens: usize,
    /// Early-termination tokens.
    pub stop: StopCriteria,
}

impl GenerationOptions {
    /// Generates exactly `max_new_tokens` tokens (no stop tokens).
    pub fn max_tokens(max_new_tokens: usize) -> Self {
        Self {
            max_new_tokens,
            stop: StopCriteria::none(),
        }
    }

    /// Sets the termination criteria.
    #[must_use]
    pub fn with_stop(mut self, stop: StopCriteria) -> Self {
        self.stop = stop;
        self
    }
}

/// One decoded token plus the telemetry of the step that produced it.
/// Serializable so streaming front-ends can ship it as an event payload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct StepResult {
    /// The sampled token id.
    pub token: u32,
    /// Absolute position of this token in the session's stream (prompt
    /// tokens included, 0-based).
    pub position: usize,
    /// KV-cache bytes across all layers after this step.
    pub kv_bytes: usize,
    /// What an fp16 cache of the same length would use.
    pub fp16_kv_bytes: usize,
    /// Tokens still held densely (not yet quantized) per layer.
    pub residual_tokens: usize,
    /// Encoded blocks absorbed from the asynchronous quantization stream
    /// during this step.
    pub async_batches: usize,
    /// Whether this token matched the session's stop criteria (set by the
    /// looping surfaces; a bare [`InferenceSession::step`] leaves it
    /// `false`).
    pub matched_stop: bool,
}

/// How a session talks to the asynchronous quantization stream.
#[derive(Debug)]
enum QuantStream {
    /// Synchronous engine configuration: caches auto-encode, no worker.
    Sync,
    /// The session owns a private worker.
    Owned(Box<QuantWorker>),
    /// A scheduler routes traffic through a shared worker; requests are
    /// parked here until [`InferenceSession::take_encode_requests`] collects
    /// them.
    External { outbox: Vec<EncodeRequest> },
}

/// A persistent inference session: per-layer PQ caches, the decode position,
/// and this sequence's share of the asynchronous quantization stream.
#[derive(Debug)]
pub struct InferenceSession<'e> {
    engine: &'e MillionEngine,
    pub(crate) id: usize,
    pub(crate) caches: Vec<PqKvCache>,
    /// Whole-step scratch (attention pool plus every per-layer projection,
    /// embedding and logits buffer), reused across every decode step (and
    /// every turn) of this session — the steady-state decode step never
    /// allocates. Scratch carries no results between calls, so N sessions
    /// interleaved by a scheduler stay token-for-token identical to serial
    /// execution.
    scratch: StepScratch,
    stream: QuantStream,
    /// Per-layer tokens currently in flight to the worker (one batch per
    /// layer keeps ordering trivial, as in the paper's single stream).
    sent: Vec<usize>,
    /// Logits predicting the next position, refreshed by every feed.
    pub(crate) cur_logits: Option<Vec<f32>>,
    /// Sampled but not yet fed back through the model.
    pub(crate) pending: Option<u32>,
    /// Default sampler used by [`InferenceSession::step`].
    sampler: Sampler,
    pub(crate) prompt_tokens: usize,
    pub(crate) generated: Vec<u32>,
    async_batches_total: usize,
    /// Blocks absorbed since the last step, consumed into that step's
    /// telemetry.
    absorbed_since_step: usize,
    /// This session's retained view of its sealed block chain in the
    /// engine's store (`None` when the store is disabled). Dropping the
    /// session releases the references, evicting blocks no other session
    /// shares.
    pub(crate) chain: Option<ChainHandle>,
    /// Every token whose KV currently lives in the caches, in cache order —
    /// the content stream that names sealed blocks in the store's prefix
    /// index (and the replay source for persistence).
    pub(crate) history: Vec<u32>,
    /// Prompt tokens satisfied from resident shared blocks at admission
    /// instead of being prefilled.
    pub(crate) prefix_reused: usize,
    /// Wall-clock nanoseconds spent in [`InferenceSession::prefill`]
    /// admissions (tiled prefill attention, synchronous prompt encoding and
    /// — on warm admissions — the unmatched-suffix decode).
    prefill_ns: u64,
    /// Prompt tokens admitted through [`InferenceSession::prefill`]
    /// (including prefix tokens satisfied from the store).
    prefill_admitted: usize,
    /// Number of [`InferenceSession::prefill_chunk`] executions (a monolithic
    /// [`InferenceSession::prefill`] counts as one chunk).
    prefill_chunks: usize,
    /// Wall-clock nanoseconds spent in [`InferenceSession::step_with`]
    /// (decode forward passes plus sampling), accumulated across steps.
    decode_ns: u64,
    /// Set when sealing found a resident block with this session's token
    /// chain but *different* codes (same tokens admitted through a different
    /// prefill/turn segmentation). The session then keeps its tail private
    /// forever rather than adopting codes it did not compute — correctness
    /// over sharing.
    seal_stalled: bool,
}

impl<'e> InferenceSession<'e> {
    pub(crate) fn new(engine: &'e MillionEngine, id: usize, shared_worker: bool) -> Self {
        let n_layers = engine.model().config().n_layers;
        let async_quant = engine.config().async_quant;
        let caches = build_session_caches(engine, !async_quant);
        let stream = if !async_quant {
            QuantStream::Sync
        } else if shared_worker {
            QuantStream::External { outbox: Vec::new() }
        } else {
            QuantStream::Owned(Box::new(QuantWorker::spawn(
                engine.codebooks().key.clone(),
                engine.codebooks().value.clone(),
                engine.model().cache_layout(),
            )))
        };
        let chain = engine.store().map(|store| ChainHandle::new(store.clone()));
        Self {
            engine,
            id,
            caches,
            scratch: StepScratch::new(),
            stream,
            sent: vec![0; n_layers],
            cur_logits: None,
            pending: None,
            sampler: Sampler::greedy(),
            prompt_tokens: 0,
            generated: Vec::new(),
            async_batches_total: 0,
            absorbed_since_step: 0,
            chain,
            history: Vec::new(),
            prefix_reused: 0,
            prefill_ns: 0,
            prefill_admitted: 0,
            prefill_chunks: 0,
            decode_ns: 0,
            seal_stalled: false,
        }
    }

    /// The engine this session runs on.
    pub fn engine(&self) -> &'e MillionEngine {
        self.engine
    }

    /// The scheduler-assigned session id (0 for standalone sessions).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Replaces the session's default sampler (used by [`Self::step`] and
    /// [`Self::stream`]).
    pub fn set_sampler(&mut self, sampler: Sampler) {
        self.sampler = sampler;
    }

    /// Number of tokens whose KV currently lives in the caches.
    pub fn cached_tokens(&self) -> usize {
        self.caches.first().map_or(0, |c| c.len())
    }

    /// Absolute position the next sampled token will occupy.
    pub fn position(&self) -> usize {
        self.cached_tokens() + usize::from(self.pending.is_some())
    }

    /// Prompt tokens consumed so far (across all turns).
    pub fn prompt_tokens(&self) -> usize {
        self.prompt_tokens
    }

    /// All tokens generated by this session, across turns.
    pub fn generated_tokens(&self) -> &[u32] {
        &self.generated
    }

    /// KV-cache bytes across all layers.
    pub fn kv_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.memory_bytes()).sum()
    }

    /// Bytes an fp16 cache of the same length would use.
    pub fn fp16_kv_bytes(&self) -> usize {
        let layout = self.engine.model().cache_layout();
        self.cached_tokens() * layout.fp16_bytes_per_token() * self.caches.len()
    }

    /// Tokens still held densely (not yet quantized) in each layer.
    pub fn residual_tokens(&self) -> usize {
        self.caches.first().map_or(0, |c| c.recent_len())
    }

    /// Encoded blocks absorbed from the quantization stream so far.
    pub fn async_batches(&self) -> usize {
        self.async_batches_total
    }

    /// Fraction of fp16 storage used by the quantized cache.
    pub fn compression_ratio(&self) -> f64 {
        let fp16 = self.fp16_kv_bytes();
        if fp16 == 0 {
            return 1.0;
        }
        self.kv_bytes() as f64 / fp16 as f64
    }

    /// Prompt tokens satisfied from resident shared blocks at admission
    /// (never prefilled or re-encoded by this session).
    pub fn prefix_tokens_reused(&self) -> usize {
        self.prefix_reused
    }

    /// Tokens of this session's history sealed into store blocks (the
    /// shareable part of the cache).
    pub fn sealed_tokens(&self) -> usize {
        self.chain.as_ref().map_or(0, |c| c.sealed_tokens())
    }

    /// Bytes of this session's KV currently held in blocks co-referenced by
    /// at least one other session — memory the session would otherwise have
    /// duplicated privately.
    pub fn kv_shared_bytes(&self) -> usize {
        self.chain.as_ref().map_or(0, |c| c.shared_bytes())
    }

    /// Bytes of this session's KV it holds exclusively (private tails, dense
    /// residual, and blocks no other session references).
    /// `kv_shared_bytes + kv_owned_bytes == kv_bytes`.
    pub fn kv_owned_bytes(&self) -> usize {
        self.kv_bytes() - self.kv_shared_bytes()
    }

    /// Bytes of this session's KV held *outside* the engine's block store:
    /// private code tails plus the dense residual window. The store-resident
    /// part is accounted once, fleet-wide, by
    /// [`million_store::StoreStats::resident_bytes`] — summing
    /// `kv_private_bytes` over sessions and adding the store's resident
    /// bytes yields the physical footprint with no double counting, which is
    /// what the serving engine's admission budget meters.
    pub fn kv_private_bytes(&self) -> usize {
        let chain_bytes: usize = self.chain.as_ref().map_or(0, |c| {
            c.blocks().iter().map(|(_, b)| b.memory_bytes()).sum()
        });
        self.kv_bytes() - chain_bytes
    }

    /// Wall-clock nanoseconds this session has spent admitting prompts
    /// through [`Self::prefill`] (tiled prefill attention, synchronous
    /// prompt encoding, and — on warm admissions — the unmatched-suffix
    /// decode). Later [`Self::append_prompt`] turns ride the decode path and
    /// are not counted.
    pub fn prefill_ns(&self) -> u64 {
        self.prefill_ns
    }

    /// Number of prefill chunks executed during admission. A monolithic
    /// [`Self::prefill`] counts as one; a chunked admission driven through
    /// [`Self::prefill_begin`]/[`Self::prefill_chunk`] counts each chunk.
    pub fn prefill_chunks(&self) -> usize {
        self.prefill_chunks
    }

    /// Wall-clock nanoseconds this session has spent generating tokens in
    /// [`Self::step_with`] (decode forward passes plus sampling),
    /// accumulated across every step since construction or [`Self::reset`].
    pub fn decode_ns(&self) -> u64 {
        self.decode_ns
    }

    /// Prompt tokens per second achieved during admission, or `0.0` before
    /// the first [`Self::prefill`].
    pub fn prefill_tokens_per_s(&self) -> f64 {
        if self.prefill_ns == 0 {
            return 0.0;
        }
        self.prefill_admitted as f64 * 1e9 / self.prefill_ns as f64
    }

    /// Processes the opening prompt: full-precision prefill attention, then
    /// synchronous PQ encoding of the prompt KV (Fig. 4 steps ③/④).
    ///
    /// With [`crate::MillionConfig::prefix_sharing`] enabled, the prompt is
    /// first looked up in the engine's block store: any whole-block prefix
    /// another session already sealed is **attached** instead of prefilled —
    /// no prefill compute, no code memory, copy-on-write from the first
    /// divergent token — and only the unmatched suffix is fed through the
    /// decode path (exactly as a [`Self::append_prompt`] continuation
    /// would be).
    ///
    /// # Panics
    ///
    /// Panics if the session already holds tokens (use
    /// [`Self::append_prompt`] for later turns), if the prompt is empty, or
    /// if it exceeds the model's context window.
    pub fn prefill(&mut self, prompt: &[u32]) {
        let reused = self.prefill_begin(prompt);
        self.prefill_chunk(&prompt[reused..]);
    }

    /// Opens a (possibly chunked) admission: validates the fresh-session
    /// invariants and, with [`crate::MillionConfig::prefix_sharing`] enabled,
    /// attaches any whole-block prompt prefix another session already sealed.
    /// Returns the number of prompt tokens satisfied from the store; the
    /// caller then feeds `prompt[reused..]` through one or more
    /// [`Self::prefill_chunk`] calls. `prefill_begin` + a single chunk over
    /// the whole remainder is exactly [`Self::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if the session already holds tokens (use
    /// [`Self::append_prompt`] for later turns) or if the prompt is empty.
    pub fn prefill_begin(&mut self, prompt: &[u32]) -> usize {
        assert_eq!(
            self.cached_tokens(),
            0,
            "session already prefilled; use append_prompt for later turns"
        );
        assert!(!prompt.is_empty(), "prefill requires at least one token");
        let admission_start = std::time::Instant::now();
        let mut reused = 0;
        if self.engine.config().prefix_sharing {
            // Keep at least the final token for the decode path: its logits
            // seed generation, so it can never be satisfied from the store.
            let limit = prompt.len() - 1;
            let attached = match &self.chain {
                Some(chain) => chain.store().attach_prefix(&prompt[..limit]),
                None => Vec::new(),
            };
            if !attached.is_empty() {
                reused = attached.iter().map(|(_, b)| b.len()).sum();
                for cache in &mut self.caches {
                    for (_, block) in &attached {
                        cache.attach_shared_block(block.clone());
                    }
                }
                self.chain
                    .as_mut()
                    .expect("attached blocks imply a chain")
                    .adopt(attached);
                self.history.extend_from_slice(&prompt[..reused]);
                self.prefix_reused = reused;
            }
        }
        self.prompt_tokens += reused;
        self.prefill_admitted += reused;
        self.prefill_ns += admission_start.elapsed().as_nanos() as u64;
        reused
    }

    /// Feeds one chunk of the opening prompt after [`Self::prefill_begin`].
    /// The first chunk of a cold admission runs the tiled prefill kernel and
    /// encodes the chunk's KV synchronously; every later chunk (and the
    /// unmatched suffix of a warm admission) is teacher-forced through
    /// [`Self::extend_prompt`], which is pinned bit-identical to having
    /// prefilled the whole prompt in one shot. Chunk boundaries are therefore
    /// scheduling artefacts only — the token stream a session produces does
    /// not depend on them.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn prefill_chunk(&mut self, tokens: &[u32]) {
        assert!(
            !tokens.is_empty(),
            "prefill_chunk requires at least one token"
        );
        let chunk_start = std::time::Instant::now();
        if self.cached_tokens() == 0 {
            let logits = {
                // Admissions across all of this engine's sessions share one
                // tiled-prefill scratch, so the staging buffers are grown once
                // and reused instead of being rebuilt per admission.
                let mut scratch = self
                    .engine
                    .prefill_scratch()
                    .lock()
                    .expect("prefill scratch lock poisoned");
                self.engine.model().prefill_with_scratch(
                    tokens,
                    &mut self.caches,
                    None,
                    &mut scratch,
                )
            };
            // In the asynchronous configuration the caches do not auto-encode,
            // so the chunk's KV is encoded here, on the spot — prompt encoding
            // is part of prefill in the paper, only *decode-time* encoding is
            // off the critical path.
            self.encode_dense_now();
            self.history.extend_from_slice(tokens);
            self.cur_logits = Some(logits.row(tokens.len() - 1).to_vec());
            self.maybe_seal();
        } else {
            let logits = self.extend_prompt(tokens);
            self.cur_logits = Some(logits);
        }
        self.prompt_tokens += tokens.len();
        self.prefill_admitted += tokens.len();
        self.prefill_chunks += 1;
        self.prefill_ns += chunk_start.elapsed().as_nanos() as u64;
    }

    /// Continues a multi-turn conversation: feeds `tokens` through the
    /// decode path so they attend to the already-quantized history. The
    /// session's cache is reused as-is — no token is re-prefetched and no
    /// code is re-encoded.
    ///
    /// On a fresh session this is equivalent to [`Self::prefill`].
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn append_prompt(&mut self, tokens: &[u32]) {
        assert!(
            !tokens.is_empty(),
            "append_prompt requires at least one token"
        );
        if self.cached_tokens() == 0 {
            self.prefill(tokens);
            return;
        }
        // The previously sampled token is part of the history the new turn
        // attends to; its KV enters the cache here.
        if let Some(tok) = self.pending.take() {
            self.feed(tok);
        }
        self.feed_chunk(tokens);
        self.prompt_tokens += tokens.len();
    }

    /// Decodes one token with the session's default sampler.
    ///
    /// # Panics
    ///
    /// Panics if the session has not been prefilled.
    pub fn step(&mut self) -> StepResult {
        let mut sampler = std::mem::replace(&mut self.sampler, Sampler::greedy());
        let result = self.step_with(&mut sampler);
        self.sampler = sampler;
        result
    }

    /// Decodes one token with an explicit sampler.
    ///
    /// The step order mirrors the paper's decode loop exactly: finished
    /// encode blocks are absorbed *before* attention, the newly staged tokens
    /// are shipped *after* it.
    ///
    /// # Panics
    ///
    /// Panics if the session has not been prefilled.
    pub fn step_with(&mut self, sampler: &mut Sampler) -> StepResult {
        let step_start = std::time::Instant::now();
        if let Some(tok) = self.pending.take() {
            self.feed(tok);
        }
        let logits = self
            .cur_logits
            .as_deref()
            .expect("session must be prefilled before stepping");
        let token = sampler.sample(logits);
        let position = self.cached_tokens();
        self.pending = Some(token);
        self.generated.push(token);
        let result = StepResult {
            token,
            position,
            kv_bytes: self.kv_bytes(),
            fp16_kv_bytes: self.fp16_kv_bytes(),
            residual_tokens: self.residual_tokens(),
            async_batches: std::mem::take(&mut self.absorbed_since_step),
            matched_stop: false,
        };
        self.decode_ns += step_start.elapsed().as_nanos() as u64;
        result
    }

    /// Runs a whole generation call and returns the seed-compatible
    /// [`GenerationResult`]; telemetry reflects the cache state after a
    /// final [`Self::flush`].
    pub fn generate(&mut self, options: &GenerationOptions) -> GenerationResult {
        let mut sampler = std::mem::replace(&mut self.sampler, Sampler::greedy());
        let result = self.generate_with(options, &mut sampler);
        self.sampler = sampler;
        result
    }

    /// [`Self::generate`] with an explicit sampler.
    pub fn generate_with(
        &mut self,
        options: &GenerationOptions,
        sampler: &mut Sampler,
    ) -> GenerationResult {
        // `async_batches` reports this call only; cache/prompt fields are
        // session-state snapshots (see the GenerationResult field docs).
        let batches_before = self.async_batches_total;
        let mut tokens = Vec::with_capacity(options.max_new_tokens);
        for _ in 0..options.max_new_tokens {
            let step = self.step_with(sampler);
            tokens.push(step.token);
            if options.stop.matches(step.token) {
                break;
            }
        }
        self.flush();
        GenerationResult {
            tokens,
            prefill_tokens: self.prompt_tokens,
            kv_bytes: self.kv_bytes(),
            fp16_kv_bytes: self.fp16_kv_bytes(),
            async_batches: self.async_batches_total - batches_before,
            residual_tokens: self.residual_tokens(),
        }
    }

    /// Returns a streaming iterator over decode steps, ending after
    /// `options.max_new_tokens` tokens or on a stop token (whose step is
    /// yielded with [`StepResult::matched_stop`] set).
    pub fn stream(&mut self, options: GenerationOptions) -> SessionStream<'_, 'e> {
        SessionStream {
            session: self,
            options,
            emitted: 0,
            stopped: false,
        }
    }

    /// Synchronisation point: blocks until the quantization stream has
    /// caught up, then encodes any tokens that were never shipped, so the
    /// cache reflects the steady state. The session remains usable.
    ///
    /// Standalone sessions call this from [`Self::generate`]; scheduler-run
    /// sessions are flushed by the scheduler, which owns the shared worker.
    pub fn flush(&mut self) {
        let results = match &mut self.stream {
            QuantStream::Owned(worker) => worker.drain_all(),
            _ => Vec::new(),
        };
        for result in results {
            self.absorb(result);
        }
        self.encode_dense_now();
        self.maybe_seal();
    }

    /// Routes one finished encode block into this session's caches.
    ///
    /// # Panics
    ///
    /// Panics if the result belongs to a different session.
    pub(crate) fn absorb(&mut self, result: EncodeResult) {
        assert_eq!(
            result.session, self.id,
            "encode result routed to wrong session"
        );
        self.sent[result.layer] -= result.tokens;
        self.caches[result.layer].absorb_encoded(result.encoded);
        self.async_batches_total += 1;
        self.absorbed_since_step += 1;
    }

    /// Collects encode requests for layers with staged dense tokens and no
    /// batch currently in flight. Used by the scheduler to feed the shared
    /// worker; standalone sessions ship through their own worker.
    pub(crate) fn take_encode_requests(&mut self) -> Vec<EncodeRequest> {
        match &mut self.stream {
            QuantStream::External { outbox } => std::mem::take(outbox),
            _ => Vec::new(),
        }
    }

    /// Feeds one token through the model: absorb finished blocks, decode
    /// (through the session's whole-step scratch, so the steady state
    /// allocates nothing), ship newly staged tokens, seal any newly
    /// completed block into the store. The logits for the next position land
    /// in `cur_logits`, whose buffer is reused across steps.
    fn feed(&mut self, token: u32) {
        let results = match &mut self.stream {
            QuantStream::Owned(worker) => worker.try_drain(),
            _ => Vec::new(), // analyze: allow(no-alloc) — empty Vec::new never touches the allocator
        };
        for result in results {
            self.absorb(result);
        }
        let logits =
            self.engine
                .model()
                .decode_step_into(token, &mut self.caches, &mut self.scratch);
        let cur = self.cur_logits.get_or_insert_with(Vec::new);
        cur.clear();
        cur.extend_from_slice(logits);
        self.history.push(token);
        self.ship_staged();
        self.maybe_seal();
    }

    /// Feeds a chunk of known tokens (a later conversation turn) through the
    /// decode path, leaving the last position's logits in `cur_logits`.
    fn feed_chunk(&mut self, tokens: &[u32]) {
        if matches!(self.stream, QuantStream::Sync) {
            // No worker traffic to interleave: extend the caches in one call.
            let logits = self.extend_prompt(tokens);
            self.cur_logits = Some(logits);
            return;
        }
        for &tok in tokens {
            self.feed(tok);
        }
    }

    /// Teacher-forces a chunk of known prompt tokens through the decode path
    /// in one pass, then ships everything it staged to the quantization
    /// stream at once. Used when nothing is in flight (synchronous
    /// configurations, and the unmatched suffix at warm admission — where
    /// the per-token absorb/ship interleaving of [`Self::feed`] would only
    /// add channel traffic).
    fn extend_prompt(&mut self, tokens: &[u32]) -> Vec<f32> {
        let logits = self
            .engine
            .model()
            .extend_into(tokens, &mut self.caches, &mut self.scratch);
        self.history.extend_from_slice(tokens);
        self.ship_staged();
        self.maybe_seal();
        logits.row(tokens.len() - 1).to_vec()
    }

    /// Seals every completed block of quantized history into the engine's
    /// store: once *all* layers have quantized `block_tokens` tokens beyond
    /// the sealed frontier, their codes move out of the private tails into
    /// one immutable multi-layer [`Block`]. If another session already
    /// published the identical block (same token chain), this session's
    /// copy is dropped and the resident block adopted — publish-time
    /// copy-on-write convergence.
    fn maybe_seal(&mut self) {
        if self.seal_stalled {
            return;
        }
        let Some(chain) = self.chain.as_mut() else {
            return;
        };
        let store = chain.store().clone(); // analyze: allow(no-alloc) — Arc clone: refcount bump, no heap allocation
        let bt = store.block_tokens();
        loop {
            let sealable = self
                .caches
                .iter()
                .map(|c| c.private_quantized_len())
                .min()
                .unwrap_or(0);
            if sealable < bt {
                return;
            }
            let sealed = chain.sealed_tokens();
            let tokens: Vec<u32> = self.history[sealed..sealed + bt].to_vec(); // analyze: allow(no-alloc) — block seal: once per block_tokens steps, amortized O(1/bt) per token
            if let Some((id, block)) = store.lookup_child(chain.last_id(), &tokens) {
                // Token-chain identity is necessary but not sufficient: the
                // same tokens admitted through a different prefill/turn
                // segmentation yield (slightly) different KV and hence
                // different codes. Adopt the resident block only when its
                // codes are bit-identical to what this session computed;
                // otherwise keep the tail private and stop sealing — sharing
                // must never change a session's arithmetic.
                let matches = self.caches.iter().enumerate().all(|(layer, cache)| {
                    (0..cache.layout().n_kv_heads).all(|h| {
                        let k = cache.private_key_codes()[h].clone_rows(0, bt);
                        let v = cache.private_value_codes()[h].clone_rows(0, bt);
                        k.packed_bytes() == block.key_codes(layer, h).packed_bytes()
                            && v.packed_bytes() == block.value_codes(layer, h).packed_bytes()
                    })
                });
                if !matches {
                    store.release(id);
                    self.seal_stalled = true;
                    return;
                }
                for cache in &mut self.caches {
                    cache.replace_private_front_with_block(block.clone()); // analyze: allow(no-alloc) — Arc clone: refcount bump, no heap allocation
                }
                chain.push(id, block);
            } else {
                let heads = self.engine.model().cache_layout().n_kv_heads;
                let n_layers = self.caches.len();
                let mut key_codes = Vec::with_capacity(n_layers * heads); // analyze: allow(no-alloc) — block seal: once per block_tokens steps
                let mut value_codes = Vec::with_capacity(n_layers * heads); // analyze: allow(no-alloc) — block seal: once per block_tokens steps
                for cache in &mut self.caches {
                    let (keys, values) = cache.take_private_front(bt);
                    key_codes.extend(keys);
                    value_codes.extend(values);
                }
                let block = Block::new(n_layers, heads, key_codes, value_codes);
                let (id, arc) = store.insert_child(chain.last_id(), &tokens, block);
                for cache in &mut self.caches {
                    cache.attach_shared_block(arc.clone()); // analyze: allow(no-alloc) — Arc clone: refcount bump, no heap allocation
                }
                chain.push(id, arc);
            }
        }
    }

    /// Ships every layer's encodable dense block to the quantization stream,
    /// one batch in flight per layer.
    fn ship_staged(&mut self) {
        let n_layers = self.caches.len();
        for layer in 0..n_layers {
            if self.sent[layer] != 0 {
                continue;
            }
            if let Some((keys, values)) = self.caches[layer].encodable_dense() {
                self.sent[layer] = keys.rows();
                let request = EncodeRequest {
                    session: self.id,
                    layer,
                    keys,
                    values,
                };
                match &mut self.stream {
                    QuantStream::Owned(worker) => worker.submit(request),
                    QuantStream::External { outbox } => outbox.push(request),
                    QuantStream::Sync => unreachable!("sync caches auto-encode"),
                }
            }
        }
    }

    /// Synchronously encodes all dense tokens beyond the residual window
    /// (skipping layers with a batch in flight, whose results are owed to
    /// the worker).
    fn encode_dense_now(&mut self) {
        let layout = self.engine.model().cache_layout();
        for (layer, cache) in self.caches.iter_mut().enumerate() {
            if self.sent[layer] != 0 {
                continue;
            }
            if let Some((keys, values)) = cache.encodable_dense() {
                let encoded = PqKvCache::encode_tokens(
                    &self.engine.codebooks().key[layer],
                    &self.engine.codebooks().value[layer],
                    &layout,
                    &keys,
                    &values,
                );
                cache.absorb_encoded(encoded);
            }
        }
    }

    /// Clears the caches and counters so the session can serve a new
    /// conversation without re-allocating or re-training anything. Shared
    /// block references are released (evicting blocks no other session
    /// holds).
    pub fn reset(&mut self) {
        self.flush();
        for cache in &mut self.caches {
            cache.reset();
        }
        if let Some(chain) = self.chain.as_mut() {
            chain.release_all();
        }
        self.history.clear();
        self.prefix_reused = 0;
        self.prefill_ns = 0;
        self.prefill_admitted = 0;
        self.prefill_chunks = 0;
        self.decode_ns = 0;
        self.seal_stalled = false;
        self.sent.iter_mut().for_each(|s| *s = 0);
        self.cur_logits = None;
        self.pending = None;
        self.prompt_tokens = 0;
        self.generated.clear();
        self.async_batches_total = 0;
        self.absorbed_since_step = 0;
    }
}

fn build_session_caches(engine: &MillionEngine, auto_encode: bool) -> Vec<PqKvCache> {
    let layout = engine.model().cache_layout();
    (0..engine.model().config().n_layers)
        .map(|l| {
            let mut cfg = PqCacheConfig::new(
                engine.codebooks().key[l].clone(),
                engine.codebooks().value[l].clone(),
                engine.config().residual_len,
            )
            .with_layer(l);
            cfg.auto_encode = auto_encode;
            PqKvCache::new(layout, cfg)
        })
        .collect()
}

/// Streaming iterator returned by [`InferenceSession::stream`].
pub struct SessionStream<'s, 'e> {
    session: &'s mut InferenceSession<'e>,
    options: GenerationOptions,
    emitted: usize,
    stopped: bool,
}

impl Iterator for SessionStream<'_, '_> {
    type Item = StepResult;

    fn next(&mut self) -> Option<StepResult> {
        if self.stopped || self.emitted >= self.options.max_new_tokens {
            return None;
        }
        let mut step = self.session.step();
        self.emitted += 1;
        if self.options.stop.matches(step.token) {
            step.matched_stop = true;
            self.stopped = true;
        }
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::test_fixtures::{engine, prompt};

    #[test]
    fn step_produces_positions_and_telemetry() {
        let engine = engine(false, 0);
        let mut session = engine.session();
        session.prefill(&prompt());
        let first = session.step();
        assert_eq!(first.position, prompt().len());
        assert!(first.kv_bytes > 0);
        assert!(first.fp16_kv_bytes > first.kv_bytes);
        let second = session.step();
        assert_eq!(second.position, prompt().len() + 1);
        assert_eq!(session.generated_tokens().len(), 2);
    }

    #[test]
    fn stream_respects_stop_criteria() {
        let engine = engine(false, 1);
        let mut probe = engine.session();
        probe.prefill(&prompt());
        let probed: Vec<u32> = probe
            .stream(GenerationOptions::max_tokens(3))
            .map(|s| s.token)
            .collect();
        let target = probed[2];
        let expected_len = probed.iter().position(|&t| t == target).unwrap() + 1;

        let mut session = engine.session();
        session.prefill(&prompt());
        let options = GenerationOptions::max_tokens(16).with_stop(StopCriteria::eos(target));
        let steps: Vec<StepResult> = session.stream(options).collect();
        assert_eq!(
            steps.len(),
            expected_len,
            "stream should stop at the known token"
        );
        assert!(steps.last().unwrap().matched_stop);
    }

    #[test]
    fn append_prompt_extends_without_reencoding_history() {
        let engine = engine(false, 2);
        let mut session = engine.session();
        session.prefill(&prompt());
        let quantized_before = session.cached_tokens() - session.residual_tokens();
        for _ in 0..4 {
            session.step();
        }
        session.append_prompt(&[7, 21, 63]);
        // History grew monotonically: prompt + 4 generated + 3 appended.
        assert_eq!(session.cached_tokens(), prompt().len() + 4 + 3);
        assert!(session.cached_tokens() - session.residual_tokens() >= quantized_before);
        let step = session.step();
        assert_eq!(step.position, session.cached_tokens());
    }

    #[test]
    fn append_prompt_on_fresh_session_prefills() {
        let engine = engine(false, 3);
        let mut session = engine.session();
        session.append_prompt(&prompt());
        assert_eq!(session.cached_tokens(), prompt().len());
        assert_eq!(session.prompt_tokens(), prompt().len());
    }

    #[test]
    fn generate_stops_on_eos() {
        let engine = engine(false, 4);
        let mut probe = engine.session();
        probe.prefill(&prompt());
        let probed: Vec<u32> = probe
            .stream(GenerationOptions::max_tokens(2))
            .map(|s| s.token)
            .collect();
        let target = probed[1];
        let expected_len = probed.iter().position(|&t| t == target).unwrap() + 1;

        let mut session = engine.session();
        session.prefill(&prompt());
        let result = session
            .generate(&GenerationOptions::max_tokens(24).with_stop(StopCriteria::eos(target)));
        assert_eq!(result.tokens.len(), expected_len);
        assert_eq!(*result.tokens.last().unwrap(), target);
    }

    #[test]
    fn async_session_absorbs_worker_batches() {
        let engine = engine(true, 5);
        let mut session = engine.session();
        session.prefill(&prompt());
        for _ in 0..24 {
            session.step();
        }
        session.flush();
        assert!(session.async_batches() > 0);
        assert_eq!(session.residual_tokens(), 0);
    }

    #[test]
    fn prefill_telemetry_reports_admission_throughput() {
        let engine = engine(false, 9);
        let mut session = engine.session();
        assert_eq!(session.prefill_ns(), 0);
        assert_eq!(session.prefill_tokens_per_s(), 0.0);
        session.prefill(&prompt());
        assert!(session.prefill_ns() > 0);
        assert!(session.prefill_tokens_per_s() > 0.0);
        let after_prefill = session.prefill_ns();
        // Decode steps and later turns ride the decode path: not counted.
        session.step();
        session.append_prompt(&[3, 5]);
        assert_eq!(session.prefill_ns(), after_prefill);
        session.reset();
        assert_eq!(session.prefill_ns(), 0);
    }

    #[test]
    fn reset_allows_session_reuse() {
        let engine = engine(true, 6);
        let mut session = engine.session();
        session.prefill(&prompt());
        for _ in 0..6 {
            session.step();
        }
        session.reset();
        assert_eq!(session.cached_tokens(), 0);
        assert_eq!(session.generated_tokens().len(), 0);
        session.prefill(&prompt());
        let step = session.step();
        assert_eq!(step.position, prompt().len());
    }

    #[test]
    #[should_panic(expected = "session must be prefilled")]
    fn stepping_before_prefill_panics() {
        let engine = engine(false, 7);
        let mut session = engine.session();
        let _ = session.step();
    }

    #[test]
    #[should_panic(expected = "already prefilled")]
    fn double_prefill_panics() {
        let engine = engine(false, 8);
        let mut session = engine.session();
        session.prefill(&prompt());
        session.prefill(&prompt());
    }
}
