//! Offline PQ codebook training (step ①/② of Fig. 4 in the paper).

use std::sync::Arc;

use million_model::{build_caches, CacheSpec, KvCapture, PqSpec, Transformer};
use million_quant::pq::PqCodebook;
use million_quant::QuantError;

use crate::config::MillionConfig;

/// Per-layer key and value codebooks produced by calibration.
#[derive(Debug, Clone)]
pub struct TrainedCodebooks {
    /// One key codebook per layer (dimension = `head_dim`).
    pub key: Vec<Arc<PqCodebook>>,
    /// One value codebook per layer (dimension = `head_dim`).
    pub value: Vec<Arc<PqCodebook>>,
}

impl TrainedCodebooks {
    /// Number of layers covered.
    pub fn n_layers(&self) -> usize {
        self.key.len()
    }

    /// Bytes occupied by all codebooks (the GPU-resident state of Fig. 4).
    pub fn total_bytes(&self) -> usize {
        self.key
            .iter()
            .chain(self.value.iter())
            .map(|cb| cb.codebook_bytes())
            .sum()
    }

    /// Builds the cache specification used by the transformer substrate.
    pub fn to_pq_spec(&self, residual_len: usize, auto_encode: bool) -> PqSpec {
        PqSpec {
            key_codebooks: self.key.clone(),
            value_codebooks: self.value.clone(),
            residual_len,
            auto_encode,
        }
    }
}

/// Runs the model over a calibration stream with a full-precision cache,
/// samples the produced keys/values, and trains per-layer PQ codebooks.
///
/// # Errors
///
/// Returns the underlying [`QuantError`] if the calibration stream is too
/// short or the PQ geometry does not divide the head dimension.
pub fn train_codebooks(
    model: &Transformer,
    calibration: &[u32],
    config: &MillionConfig,
) -> Result<TrainedCodebooks, QuantError> {
    if calibration.is_empty() {
        return Err(QuantError::InsufficientData(
            "calibration stream is empty".into(),
        ));
    }
    let model_config = model.config();
    let head_dim = model_config.head_dim();
    if !head_dim.is_multiple_of(config.pq.m) {
        return Err(QuantError::ShapeMismatch(format!(
            "head_dim {head_dim} is not divisible by M = {}",
            config.pq.m
        )));
    }

    // Capture KV during a full-precision prefill of the calibration prompt.
    let sample_len = calibration
        .len()
        .min(model_config.max_seq_len)
        .min(config.calibration_tokens.max(2));
    let mut caches = build_caches(model_config, &CacheSpec::Full);
    let mut capture = KvCapture::new(
        model_config.n_layers,
        head_dim,
        config.calibration_tokens.max(sample_len),
    );
    let _ = model.prefill(&calibration[..sample_len], &mut caches, Some(&mut capture));

    let mut key = Vec::with_capacity(model_config.n_layers);
    let mut value = Vec::with_capacity(model_config.n_layers);
    for layer in 0..model_config.n_layers {
        let key_samples = capture.key_head_vectors(layer);
        let value_samples = capture.value_head_vectors(layer);
        key.push(Arc::new(PqCodebook::train(
            &config.pq,
            &key_samples,
            &config.train_options,
            config.seed ^ (layer as u64) << 1,
        )?));
        value.push(Arc::new(PqCodebook::train(
            &config.pq,
            &value_samples,
            &config.train_options,
            config.seed ^ ((layer as u64) << 1 | 1),
        )?));
    }
    Ok(TrainedCodebooks { key, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use million_model::ModelConfig;
    use million_quant::pq::PqConfig;

    fn calibration(vocab: usize, len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 31 + 7) % vocab) as u32).collect()
    }

    #[test]
    fn trains_one_codebook_pair_per_layer() {
        let config = ModelConfig::tiny_for_tests();
        let model = Transformer::new(config.clone(), 0);
        let engine_cfg = MillionConfig::four_bit(config.head_dim());
        let cbs = train_codebooks(&model, &calibration(config.vocab_size, 80), &engine_cfg)
            .expect("training succeeds");
        assert_eq!(cbs.n_layers(), config.n_layers);
        assert_eq!(cbs.key[0].dim(), config.head_dim());
        assert!(cbs.total_bytes() > 0);
    }

    #[test]
    fn codebooks_reconstruct_calibration_kv_well() {
        let config = ModelConfig::tiny_for_tests();
        let model = Transformer::new(config.clone(), 1);
        let engine_cfg = MillionConfig::four_bit(config.head_dim());
        let tokens = calibration(config.vocab_size, 80);
        let cbs = train_codebooks(&model, &tokens, &engine_cfg).unwrap();

        // Re-capture KV and check reconstruction error is small relative to
        // the data scale.
        let mut caches = build_caches(&config, &CacheSpec::Full);
        let mut capture = KvCapture::new(config.n_layers, config.head_dim(), 256);
        let _ = model.prefill(&tokens[..64], &mut caches, Some(&mut capture));
        for layer in 0..config.n_layers {
            let samples = capture.key_head_vectors(layer);
            let mse = cbs.key[layer].reconstruction_mse(&samples);
            let scale = samples.frobenius_norm().powi(2) / samples.len() as f64;
            assert!(
                mse < scale * 0.2,
                "layer {layer}: mse {mse} vs scale {scale}"
            );
        }
    }

    #[test]
    fn rejects_empty_calibration() {
        let config = ModelConfig::tiny_for_tests();
        let model = Transformer::new(config.clone(), 2);
        let engine_cfg = MillionConfig::four_bit(config.head_dim());
        assert!(train_codebooks(&model, &[], &engine_cfg).is_err());
    }

    #[test]
    fn rejects_indivisible_pq_geometry() {
        let config = ModelConfig::tiny_for_tests(); // head_dim = 16
        let model = Transformer::new(config.clone(), 3);
        let engine_cfg = MillionConfig::new(PqConfig::new(5, 8).unwrap());
        assert!(matches!(
            train_codebooks(&model, &calibration(config.vocab_size, 40), &engine_cfg),
            Err(QuantError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn to_pq_spec_propagates_options() {
        let config = ModelConfig::tiny_for_tests();
        let model = Transformer::new(config.clone(), 4);
        let engine_cfg = MillionConfig::four_bit(config.head_dim());
        let cbs =
            train_codebooks(&model, &calibration(config.vocab_size, 60), &engine_cfg).unwrap();
        let spec = cbs.to_pq_spec(7, false);
        assert_eq!(spec.residual_len, 7);
        assert!(!spec.auto_encode);
        assert_eq!(spec.key_codebooks.len(), config.n_layers);
    }
}
