//! `million-analyze`: the in-repo invariant lint engine.
//!
//! The serving engine carries invariants the type system cannot express —
//! the fused decode kernel must not allocate, the shard supervision loop
//! must not panic, quantized kernels must stay bit-deterministic, and
//! nothing may block while the block-store mutex is held. Each was
//! proven once (counting allocators, equivalence suites, chaos tests) and
//! each silently rots under ordinary refactoring. This crate turns those
//! proofs into a lexical analysis that runs on every commit:
//!
//! - [`lexer`] — a hand-rolled, dependency-free Rust lexer (the build
//!   environment cannot reach crates.io, so `syn` is unavailable);
//! - [`scope`] — a brace-matched scope tree with test-code and
//!   annotation tracking;
//! - [`policy`] — the `analysis.toml` coverage policy;
//! - [`rules`] — the four rule families;
//! - [`report`] — findings, suppressions, and rendering.
//!
//! The engine entry points are [`collect_workspace`] (filesystem walk)
//! and [`analyze_sources`] (pure: `Vec<SourceFile>` in, [`Report`] out),
//! so tests can drive the whole pipeline on in-memory fixtures.

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;
pub mod scope;

use policy::Policy;
use report::{AllowDirective, Report, Suppressed};
use std::collections::BTreeMap;
use std::path::Path;

/// One Rust source file to analyze.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// The crate this file belongs to (directory name under the scan
    /// root, e.g. `serverd`).
    pub crate_name: String,
    /// The module path, e.g. `serverd::shard` (crate root == crate name).
    pub module: String,
    /// Full source text.
    pub text: String,
    /// True for files that are test-only in their entirety (under
    /// `tests/`, `benches/`, or `examples/`).
    pub is_test: bool,
}

/// A lexed + scoped file, ready for the rules.
pub struct Unit {
    /// The source file.
    pub file: SourceFile,
    /// Its token and comment streams.
    pub lexed: lexer::Lexed,
    /// Its scope tree.
    pub tree: scope::ScopeTree,
    /// Its source split into lines (for snippets).
    pub lines: Vec<String>,
}

impl Unit {
    /// Lexes and scopes one source file.
    pub fn build(file: SourceFile) -> Unit {
        let lexed = lexer::lex(&file.text);
        let tree = scope::ScopeTree::build(&lexed, file.is_test);
        let lines = file.text.lines().map(|l| l.to_string()).collect();
        Unit {
            file,
            lexed,
            tree,
            lines,
        }
    }
}

/// Runs every rule over `files` under `policy` and returns the finished
/// report (sorted, suppressions applied).
pub fn analyze_sources(files: Vec<SourceFile>, policy: &Policy) -> Report {
    let units: Vec<Unit> = files.into_iter().map(Unit::build).collect();
    let mut report = Report {
        files: units.len(),
        ..Report::default()
    };

    // Group units by crate for the transitive no-alloc traversal.
    let mut crates: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, unit) in units.iter().enumerate() {
        crates.entry(&unit.file.crate_name).or_default().push(i);
    }

    let mut raw = Vec::new();
    for crate_units in crates.values() {
        report.no_alloc_regions += rules::no_alloc::check(&units, crate_units, policy, &mut raw);
    }
    for unit in &units {
        rules::no_panic::check(unit, policy, &mut raw);
        rules::determinism::check(unit, policy, &mut raw);
        rules::lock_discipline::check(unit, policy, &mut raw);
    }

    apply_suppressions(&units, raw, &mut report);
    report.finalize();
    report
}

/// Splits raw findings into live and suppressed using the `allow`
/// comments in each file; unused allows become stale.
fn apply_suppressions(units: &[Unit], raw: Vec<report::Finding>, report: &mut Report) {
    // Collect every allow directive, keyed by file path. A trailing
    // allow (code before it on the line) covers only its own line; a
    // standalone allow covers the line below it.
    let mut allows: BTreeMap<&str, Vec<(AllowDirective, bool, bool)>> = BTreeMap::new();
    for unit in units {
        for c in &unit.lexed.comments {
            if let Some((rule, reason)) = report::parse_allow(&c.text) {
                allows.entry(&unit.file.path).or_default().push((
                    AllowDirective {
                        rule,
                        file: unit.file.path.clone(),
                        line: c.line,
                        reason,
                    },
                    c.trailing,
                    false,
                ));
            }
        }
    }
    for finding in raw {
        let waiver = allows.get_mut(finding.file.as_str()).and_then(|list| {
            list.iter_mut().find(|(a, trailing, _)| {
                a.rule == finding.rule
                    && if *trailing {
                        a.line == finding.line
                    } else {
                        a.line == finding.line || a.line + 1 == finding.line
                    }
            })
        });
        match waiver {
            Some((a, _, used)) => {
                *used = true;
                report.suppressed.push(Suppressed {
                    finding,
                    reason: a.reason.clone(),
                });
            }
            None => report.findings.push(finding),
        }
    }
    for (_, list) in allows {
        for (a, _, used) in list {
            if !used {
                report.stale_allows.push(a);
            }
        }
    }
}

/// Walks the scan roots under `root` and loads every `.rs` file into a
/// [`SourceFile`], honoring the policy's `exclude` prefixes and skipping
/// `target/` and hidden directories. Files are returned in sorted path
/// order so the whole run is deterministic.
pub fn collect_workspace(root: &Path, policy: &Policy) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for scan in &policy.scan {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(&dir, root, policy, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for rel in paths {
        let text = std::fs::read_to_string(root.join(&rel))?;
        files.push(source_file(&rel, text));
    }
    Ok(files)
}

fn walk(dir: &Path, root: &Path, policy: &Policy, out: &mut Vec<String>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if Policy::path_covered(&policy.exclude, &rel) {
            continue;
        }
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, root, policy, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Derives crate and module identity from a workspace-relative path like
/// `crates/serverd/src/shard.rs` -> crate `serverd`, module
/// `serverd::shard`.
pub fn source_file(rel: &str, text: String) -> SourceFile {
    let parts: Vec<&str> = rel.split('/').collect();
    // parts = [scan_root, crate_dir, ...rest]
    let crate_name = parts.get(1).copied().unwrap_or("unknown").to_string();
    let rest = parts.get(2..).unwrap_or(&[]);
    let is_test = rest
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    let mut module = vec![crate_name.clone()];
    // Module path: components after `src` (or after the crate dir for
    // tests/benches), with `lib.rs` and `mod.rs` collapsing into their
    // parent and `main.rs` keeping its name.
    let after_src: &[&str] = match rest.first() {
        Some(&"src") => &rest[1..],
        _ => rest,
    };
    for (i, part) in after_src.iter().enumerate() {
        let last = i + 1 == after_src.len();
        if last {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "mod" {
                module.push(stem.to_string());
            }
        } else {
            module.push(part.to_string());
        }
    }
    SourceFile {
        path: rel.to_string(),
        crate_name,
        module: module.join("::"),
        text,
        is_test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::Rule;

    #[test]
    fn module_derivation_handles_lib_mod_and_nested_files() {
        let f = source_file("crates/serverd/src/shard.rs", String::new());
        assert_eq!(f.crate_name, "serverd");
        assert_eq!(f.module, "serverd::shard");
        assert!(!f.is_test);

        let f = source_file("crates/million/src/lib.rs", String::new());
        assert_eq!(f.module, "million");

        let f = source_file("crates/million/src/cache/mod.rs", String::new());
        assert_eq!(f.module, "million::cache");

        let f = source_file("crates/serverd/src/bin/bench.rs", String::new());
        assert_eq!(f.module, "serverd::bin::bench");

        let f = source_file("crates/serverd/tests/chaos.rs", String::new());
        assert_eq!(f.module, "serverd::tests::chaos");
        assert!(f.is_test);
    }

    fn run(files: Vec<(&str, &str)>, policy_text: &str) -> Report {
        let policy = Policy::parse(policy_text).expect("test policy parses");
        analyze_sources(
            files
                .into_iter()
                .map(|(p, t)| source_file(p, t.to_string()))
                .collect(),
            &policy,
        )
    }

    #[test]
    fn suppression_covers_own_line_and_next_line() {
        let src = "\
fn hot() {
    // analyze: allow(no-panic) — startup only, cannot race
    cfg.get(0).unwrap();
    other.unwrap(); // analyze: allow(no-panic) — checked above
    third.unwrap();
}
";
        let report = run(
            vec![("crates/x/src/lib.rs", src)],
            "[no_panic]\nmodules = [\"x\"]\n",
        );
        assert_eq!(report.findings.len(), 1, "{}", report.render());
        assert_eq!(report.findings[0].line, 5);
        assert_eq!(report.suppressed.len(), 2);
        assert!(report.stale_allows.is_empty());
    }

    #[test]
    fn stale_allows_are_reported_not_hidden() {
        let src = "// analyze: allow(no-alloc) — nothing here\nfn f() {}\n";
        let report = run(vec![("crates/x/src/lib.rs", src)], "");
        assert!(report.findings.is_empty());
        assert_eq!(report.stale_allows.len(), 1);
        assert_eq!(report.stale_allows[0].rule, Rule::NoAlloc);
    }

    #[test]
    fn transitive_no_alloc_reaches_same_crate_helpers() {
        let kernel = "\
// analyze: no-alloc
pub fn kernel(x: &[f32]) -> f32 {
    helper(x)
}
";
        let helper = "\
pub fn helper(x: &[f32]) -> f32 {
    let v: Vec<f32> = x.to_vec();
    v[0]
}
";
        let report = run(
            vec![
                ("crates/k/src/kernel.rs", kernel),
                ("crates/k/src/helper.rs", helper),
            ],
            "",
        );
        assert_eq!(report.count(Rule::NoAlloc), 1, "{}", report.render());
        let f = &report.findings[0];
        assert_eq!(f.file, "crates/k/src/helper.rs");
        assert!(f.message.contains("reached via helper"), "{}", f.message);
        assert_eq!(report.no_alloc_regions, 1);
    }

    #[test]
    fn cross_crate_calls_stop_traversal() {
        let kernel = "\
// analyze: no-alloc
pub fn kernel(x: &[f32]) -> f32 {
    other_crate::alloc_heavy(x)
}
";
        let other = "pub fn alloc_heavy(x: &[f32]) -> f32 { x.to_vec()[0] }\n";
        let report = run(
            vec![
                ("crates/k/src/lib.rs", kernel),
                ("crates/other_crate/src/lib.rs", other),
            ],
            "",
        );
        assert_eq!(report.count(Rule::NoAlloc), 0, "{}", report.render());
    }

    #[test]
    fn region_markers_cover_only_the_marked_lines() {
        let src = "\
pub fn serve(n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    // analyze: no-alloc(begin)
    for i in 0..n {
        let x = format!(\"{i}\");
        drop(x);
    }
    // analyze: no-alloc(end)
    out.push(1);
    out
}
";
        let report = run(vec![("crates/x/src/lib.rs", src)], "");
        assert_eq!(report.count(Rule::NoAlloc), 1, "{}", report.render());
        assert_eq!(report.findings[0].line, 5);
        assert!(report.findings[0].message.contains("region at line 3"));
    }

    #[test]
    fn test_code_is_exempt_everywhere() {
        let src = "\
pub fn live(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
#[cfg(test)]
mod tests {
    #[test]
    fn check() {
        super::live(Some(1));
        let v = vec![1];
        v[0];
        std::panic::catch_unwind(|| ()).unwrap();
    }
}
";
        let report = run(
            vec![("crates/x/src/lib.rs", src)],
            "[no_panic]\nmodules = [\"x\"]\nindex_modules = [\"x\"]\n",
        );
        assert!(report.findings.is_empty(), "{}", report.render());
    }

    #[test]
    fn lock_discipline_window_ends_at_drop() {
        let src = "\
impl Store {
    fn lock(&self) -> Guard {
        self.inner.lock()
    }
    fn ok(&self, tx: &Sender<u32>) {
        let inner = self.lock();
        let n = inner.free;
        drop(inner);
        tx.send(n);
    }
    fn bad(&self, tx: &Sender<u32>) {
        let inner = self.lock();
        tx.send(inner.free);
    }
}
";
        let report = run(
            vec![("crates/store/src/store.rs", src)],
            "[lock_discipline]\npaths = [\"crates/store/src/store.rs\"]\n",
        );
        assert_eq!(report.count(Rule::LockDiscipline), 1, "{}", report.render());
        assert!(report.findings[0].message.contains("channel send"));
    }
}
