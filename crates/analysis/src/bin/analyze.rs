//! `analyze` — run the invariant lint engine over the workspace.
//!
//! ```text
//! analyze [--root DIR] [--policy FILE] [--deny] [--summary FILE] [--quiet]
//! ```
//!
//! - `--root DIR`      workspace root (default: current directory)
//! - `--policy FILE`   policy path (default: `<root>/analysis.toml`)
//! - `--deny`          exit 1 when any finding survives suppression
//! - `--summary FILE`  also write a markdown job summary (for CI)
//! - `--quiet`         print only the summary line
//!
//! Exit codes: 0 clean (or warn-only without `--deny`), 1 findings under
//! `--deny`, 2 usage/policy/IO error — a broken policy must fail CI, not
//! lint nothing.

use million_analysis::policy::Policy;
use million_analysis::{analyze_sources, collect_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    policy: Option<PathBuf>,
    deny: bool,
    summary: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        policy: None,
        deny: false,
        summary: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = next_path(&mut it, "--root")?,
            "--policy" => args.policy = Some(next_path(&mut it, "--policy")?),
            "--summary" => args.summary = Some(next_path(&mut it, "--summary")?),
            "--deny" => args.deny = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err("usage: analyze [--root DIR] [--policy FILE] [--deny] \
                     [--summary FILE] [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn next_path(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} needs a value"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("analyze: {msg}");
            return ExitCode::from(2);
        }
    };
    let policy_path = args
        .policy
        .clone()
        .unwrap_or_else(|| args.root.join("analysis.toml"));
    let policy_text = match std::fs::read_to_string(&policy_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("analyze: cannot read {}: {e}", policy_path.display());
            return ExitCode::from(2);
        }
    };
    let policy = match Policy::parse(&policy_text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let files = match collect_workspace(&args.root, &policy) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("analyze: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = analyze_sources(files, &policy);
    if args.quiet {
        println!("{}", report.summary_line());
    } else {
        print!("{}", report.render());
    }
    if let Some(summary) = &args.summary {
        if let Err(e) = std::fs::write(summary, report.render_markdown()) {
            eprintln!("analyze: cannot write {}: {e}", summary.display());
            return ExitCode::from(2);
        }
    }
    if args.deny && !report.findings.is_empty() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
