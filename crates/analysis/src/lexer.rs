//! A hand-rolled Rust lexer: line/column-tracked tokens plus a parallel
//! comment stream.
//!
//! The build environment cannot reach crates.io, so `syn`/`proc-macro2`
//! are off the table; this lexer implements exactly the token distinctions
//! the rule engine needs and nothing more:
//!
//! - **Comments** (line and *nested* block) are lexed into their own
//!   stream, because `// analyze: ...` annotations and suppressions live
//!   there.
//! - **Strings** — plain, byte, and raw (`r"…"`, `r#"…"#`, any hash
//!   depth) — are opaque single tokens, so a `"unwrap()"` inside a log
//!   message can never trip a rule.
//! - **Char literals vs lifetimes**: `'a'` is a literal, `'a` is a
//!   lifetime; getting this wrong would desynchronize every downstream
//!   brace count inside generic code.
//! - **Raw identifiers** (`r#type`) lex as identifiers with the `r#`
//!   stripped.
//!
//! Everything else (numbers, identifiers, single-character punctuation) is
//! deliberately simple: the rule engine works on identifier/punctuation
//! patterns, never on full expression structure.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` or `'static` (leading quote included).
    Lifetime,
    /// A character or byte literal, quotes included.
    CharLit,
    /// Any string literal (plain, byte, raw), quotes/hashes included.
    Str,
    /// A numeric literal, suffix included (`0x1f`, `1_000u64`, `1.5e-3`).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is exactly the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// One comment, kept out of the token stream so rules never scan it.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/* */` framing, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when code precedes the comment on its own line (a trailing
    /// comment), false for a comment alone on its line.
    pub trailing: bool,
}

/// The output of [`lex`]: tokens and comments, each in source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments (doc comments included).
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Never fails: unterminated constructs are closed at end of
/// input — a lint must degrade gracefully on code mid-edit, not abort.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
    /// Whether a token has been produced on the current line (marks
    /// subsequent comments on the line as trailing).
    code_on_line: bool,
}

impl Lexer {
    fn new(src: &str) -> Lexer {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
            code_on_line: false,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.code_on_line = false;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
        self.code_on_line = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col),
                '\'' => self.char_or_lifetime(line, col),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line, col),
                c if is_ident_start(c) => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    let c = self.bump().unwrap_or(' ');
                    self.push_token(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let trailing = self.code_on_line;
        self.bump();
        self.bump();
        // Strip doc-comment markers: `///` and `//!` carry no directives.
        while self.peek(0) == Some('/') || self.peek(0) == Some('!') {
            self.bump();
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            line,
            trailing,
        });
    }

    /// Block comments nest, per the Rust grammar: `/* /* */ */` is one
    /// comment.
    fn block_comment(&mut self, line: u32) {
        let trailing = self.code_on_line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(_), _) => {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                (None, _) => break, // unterminated: close at EOF
            }
        }
        self.out.comments.push(Comment {
            text: text.trim().to_string(),
            line,
            trailing,
        });
    }

    /// A plain (escaped) string body, after the opening quote was seen at
    /// `self.pos`. Consumes through the closing quote.
    fn string(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"')); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump().unwrap_or('\\'));
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
                continue;
            }
            text.push(c);
            self.bump();
            if c == '"' {
                break;
            }
        }
        self.push_token(TokenKind::Str, text, line, col);
    }

    /// Distinguishes `'a'` (char literal) from `'a` (lifetime): a literal
    /// is one character (or one escape) followed by a closing quote; a
    /// lifetime is a quote followed by identifier characters with no
    /// closing quote.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        if self.peek(1) == Some('\\') {
            // Escaped char literal: '\n', '\'', '\u{1F600}'.
            let mut text = String::new();
            text.push(self.bump().unwrap_or('\'')); // '
            text.push(self.bump().unwrap_or('\\')); // backslash
            while let Some(c) = self.bump() {
                text.push(c);
                if c == '\'' {
                    break;
                }
            }
            self.push_token(TokenKind::CharLit, text, line, col);
            return;
        }
        if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') {
            // One character between quotes: a char literal ('a', '日').
            let mut text = String::new();
            for _ in 0..3 {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            self.push_token(TokenKind::CharLit, text, line, col);
            return;
        }
        // Lifetime: consume the quote and the identifier.
        let mut text = String::new();
        text.push(self.bump().unwrap_or('\''));
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokenKind::Lifetime, text, line, col);
    }

    /// True when the `r`/`b` at the cursor starts a raw/byte literal
    /// rather than an ordinary identifier.
    fn raw_or_byte_prefix(&self) -> bool {
        match (self.peek(0), self.peek(1)) {
            (Some('r'), Some('"')) => true,
            (Some('r'), Some('#')) => {
                // r#"…"# raw string vs r#ident raw identifier: a raw
                // string has only hashes between `r` and the quote.
                let mut i = 1;
                while self.peek(i) == Some('#') {
                    i += 1;
                }
                self.peek(i) == Some('"')
            }
            (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('b'), Some('r')) => {
                matches!(self.peek(2), Some('"') | Some('#'))
            }
            _ => false,
        }
    }

    /// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'`.
    fn prefixed_literal(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut raw = false;
        // Consume the prefix letters.
        while let Some(c) = self.peek(0) {
            if c == 'r' {
                raw = true;
            }
            if c == 'r' || c == 'b' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if !raw && self.peek(0) == Some('\'') {
            // Byte char literal b'x' / b'\n'.
            let mut rest = String::new();
            rest.push(self.bump().unwrap_or('\''));
            if self.peek(0) == Some('\\') {
                rest.push(self.bump().unwrap_or('\\'));
                if let Some(esc) = self.bump() {
                    rest.push(esc);
                }
            } else if let Some(c) = self.bump() {
                rest.push(c);
            }
            if self.peek(0) == Some('\'') {
                rest.push(self.bump().unwrap_or('\''));
            }
            text.push_str(&rest);
            self.push_token(TokenKind::CharLit, text, line, col);
            return;
        }
        if !raw {
            // b"…": ordinary escape rules.
            let start = self.out.tokens.len();
            self.string(line, col);
            // Merge the prefix into the string token just produced.
            if let Some(tok) = self.out.tokens.get_mut(start) {
                tok.text = format!("{text}{}", tok.text);
            }
            return;
        }
        // Raw string: count hashes, then scan for `"` followed by that
        // many hashes. No escapes apply.
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            text.push('#');
            hashes += 1;
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
        }
        'body: while let Some(c) = self.peek(0) {
            if c == '"' {
                let mut all = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != Some('#') {
                        all = false;
                        break;
                    }
                }
                if all {
                    text.push('"');
                    self.bump();
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break 'body;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokenKind::Str, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Raw identifier prefix r#type: strip the r# so rules compare
        // against the bare name.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push_token(TokenKind::Ident, text, line, col);
    }

    /// Numbers, suffixes included. Stops before `..` so ranges like
    /// `0..n` keep their punctuation, and consumes `e+3`/`e-3` exponents
    /// in decimal literals only.
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let radix_prefix = self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('o'));
        if radix_prefix {
            text.push(self.bump().unwrap_or('0'));
            if let Some(c) = self.bump() {
                text.push(c);
            }
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Num, text, line, col);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1..n` is a range; `1.max(2)` is a method call; only
                // `1.5` continues the literal.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        text.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else if c == 'e' || c == 'E' {
                // Exponent: `1e9`, `1.5e-3`. Only followed by a digit or
                // a signed digit; otherwise it's a suffix/ident boundary.
                match (self.peek(1), self.peek(2)) {
                    (Some(d), _) if d.is_ascii_digit() => {
                        text.push(c);
                        self.bump();
                    }
                    (Some('+'), Some(d)) | (Some('-'), Some(d)) if d.is_ascii_digit() => {
                        text.push(c);
                        self.bump();
                        if let Some(s) = self.bump() {
                            text.push(s);
                        }
                    }
                    _ => break,
                }
            } else if c.is_ascii_alphabetic() {
                // Type suffix: u32, f64, usize.
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                break;
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Num, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn tracks_lines_and_columns() {
        let lexed = lex("fn main() {\n    let x = 1;\n}\n");
        let f = &lexed.tokens[0];
        assert_eq!((f.text.as_str(), f.line, f.col), ("fn", 1, 1));
        let x = lexed.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!((x.line, x.col), (2, 9));
    }

    #[test]
    fn raw_strings_are_opaque() {
        // The banned name inside a raw string must not surface as a token.
        let lexed = lex(r##"let s = r#"calls unwrap() and panic!"#;"##);
        assert!(!idents(r##"let s = r#"calls unwrap() and panic!"#;"##).contains(&"unwrap".into()));
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert!(s.text.starts_with("r#\""));
        assert!(s.text.ends_with("\"#"));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("/* outer /* inner */ still outer */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        assert_eq!(lexed.tokens[0].text, "fn");
    }

    #[test]
    fn char_literals_are_not_lifetimes() {
        let lexed = lex("let c = 'a'; fn f<'a>(x: &'a str) -> char { '\\n' }");
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 2, "{chars:?}");
        assert_eq!(chars[0].text, "'a'");
        assert_eq!(chars[1].text, "'\\n'");
        assert_eq!(lifetimes.len(), 2, "{lifetimes:?}");
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn raw_identifiers_lex_as_bare_names() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let lexed = lex(r##"let a = b"bytes"; let b = br#"raw"#; let c = b'\n';"##);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec!["b\"bytes\"", "br#\"raw\"#"]);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::CharLit && t.text == "b'\\n'"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let lexed = lex("for i in 0..10 { let x = 1.5e-3; let y = 0xff_u32; 1.max(2); }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3", "0xff_u32", "1", "2"]);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn trailing_comments_are_marked() {
        let lexed = lex("let x = 1; // trailing\n// standalone\n");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[0].text, "trailing");
    }

    #[test]
    fn strings_with_escapes_stay_single_tokens() {
        let lexed = lex(r#"let s = "quote \" and \\ backslash"; next"#);
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert!(s.text.contains("backslash"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("next")));
    }
}
