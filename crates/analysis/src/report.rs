//! Findings, suppressions, and rendering.
//!
//! Every finding carries `file:line:col`, the rule that fired, a message,
//! and the rendered source line with a caret — the analyzer's output must
//! be actionable from the terminal without opening the file. Inline
//! `// analyze: allow(<rule>) — <reason>` comments suppress a finding on
//! their own line or the line below, and every suppression that fires is
//! *reported*, not hidden: waivers stay visible so they can be reviewed
//! away.

use std::fmt;

/// The four rule families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Annotated regions may not allocate.
    NoAlloc,
    /// Policy modules may not panic.
    NoPanic,
    /// Pinned kernel files may not read wall clocks or iterate hashed
    /// collections.
    Determinism,
    /// No channel/file/lock operations while a store guard is live.
    LockDiscipline,
}

impl Rule {
    /// The rule's stable name — what annotations and suppressions use.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoAlloc => "no-alloc",
            Rule::NoPanic => "no-panic",
            Rule::Determinism => "determinism",
            Rule::LockDiscipline => "lock-discipline",
        }
    }

    /// Parses a rule name as written in a suppression.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-alloc" => Some(Rule::NoAlloc),
            "no-panic" => Some(Rule::NoPanic),
            "determinism" => Some(Rule::Determinism),
            "lock-discipline" => Some(Rule::LockDiscipline),
            _ => None,
        }
    }

    /// Every rule family.
    pub const ALL: [Rule; 4] = [
        Rule::NoAlloc,
        Rule::NoPanic,
        Rule::Determinism,
        Rule::LockDiscipline,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What went wrong, e.g. "`Vec::new` allocates in a no-alloc region".
    pub message: String,
    /// The source line the finding points at (for the snippet).
    pub snippet: String,
}

impl Finding {
    /// Renders the finding as a compiler-style block.
    pub fn render(&self) -> String {
        let line_no = self.line.to_string();
        let pad = " ".repeat(line_no.len());
        let caret_pad: String = self
            .snippet
            .chars()
            .take(self.col.saturating_sub(1) as usize)
            .map(|c| if c == '\t' { '\t' } else { ' ' })
            .collect();
        format!(
            "error[{rule}]: {msg}\n {pad}--> {file}:{line}:{col}\n \
             {pad} |\n {line_no} | {snippet}\n {pad} | {caret_pad}^\n",
            rule = self.rule,
            msg = self.message,
            file = self.file,
            line = self.line,
            col = self.col,
            snippet = self.snippet,
        )
    }
}

/// A finding that an inline `allow` waived, with the waiver's reason.
#[derive(Debug, Clone)]
pub struct Suppressed {
    /// The finding that would have fired.
    pub finding: Finding,
    /// The reason text from the `allow` comment.
    pub reason: String,
}

/// An `allow` comment parsed from a file (fired or not).
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// The rule it waives.
    pub rule: Rule,
    /// Workspace-relative path of the file holding the comment.
    pub file: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// The stated reason (empty string when none was given).
    pub reason: String,
}

/// Parses `allow(<rule>) — <reason>` from the text after `analyze:`.
/// Accepts `—`, `--`, `-`, or `:` before the reason.
pub fn parse_allow(text: &str) -> Option<(Rule, String)> {
    let rest = text.strip_prefix("analyze:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = Rule::from_name(rest[..close].trim())?;
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':'])
        .trim()
        .to_string();
    Some((rule, reason))
}

/// The full analysis outcome for a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Findings waived by inline `allow` comments.
    pub suppressed: Vec<Suppressed>,
    /// `allow` comments that waived nothing — stale waivers are findings
    /// in their own right (reported, but do not fail `--deny`).
    pub stale_allows: Vec<AllowDirective>,
    /// Files scanned.
    pub files: usize,
    /// Functions and regions annotated `no-alloc`.
    pub no_alloc_regions: usize,
}

impl Report {
    /// Sorts findings and suppressions into a stable order.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        self.suppressed.sort_by(|a, b| {
            (&a.finding.file, a.finding.line).cmp(&(&b.finding.file, b.finding.line))
        });
    }

    /// Count of findings for one rule.
    pub fn count(&self, rule: Rule) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Renders the human-readable report (findings, then the suppression
    /// table, then a summary line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for finding in &self.findings {
            out.push_str(&finding.render());
            out.push('\n');
        }
        if !self.suppressed.is_empty() {
            out.push_str("active suppressions (review these — waivers are not free):\n");
            for s in &self.suppressed {
                out.push_str(&format!(
                    "  {}:{} allow({}) — {}\n",
                    s.finding.file,
                    s.finding.line,
                    s.finding.rule,
                    if s.reason.is_empty() {
                        "(no reason given)"
                    } else {
                        &s.reason
                    },
                ));
            }
            out.push('\n');
        }
        if !self.stale_allows.is_empty() {
            out.push_str("stale allows (waiving nothing — delete them):\n");
            for a in &self.stale_allows {
                out.push_str(&format!(
                    "  {}:{} allow({})\n",
                    a.file,
                    a.line,
                    a.rule.name()
                ));
            }
            out.push('\n');
        }
        out.push_str(&self.summary_line());
        out.push('\n');
        out
    }

    /// One-line machine-grepable summary.
    pub fn summary_line(&self) -> String {
        let per_rule: Vec<String> = Rule::ALL
            .iter()
            .map(|r| format!("{}={}", r.name(), self.count(*r)))
            .collect();
        format!(
            "analyze: {} finding(s) [{}], {} suppressed, {} stale allow(s), \
             {} file(s), {} no-alloc region(s)",
            self.findings.len(),
            per_rule.join(" "),
            self.suppressed.len(),
            self.stale_allows.len(),
            self.files,
            self.no_alloc_regions,
        )
    }

    /// Renders a GitHub-flavored markdown job summary: the verdict plus
    /// the live suppression table, so waiver creep is visible in every CI
    /// run.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("## `million-analyze` invariant report\n\n");
        out.push_str(&format!("`{}`\n\n", self.summary_line()));
        if !self.findings.is_empty() {
            out.push_str("### Findings\n\n| rule | location | message |\n|---|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| `{}` | `{}:{}` | {} |\n",
                    f.rule, f.file, f.line, f.message
                ));
            }
            out.push('\n');
        }
        out.push_str("### Active suppressions\n\n");
        if self.suppressed.is_empty() {
            out.push_str("None.\n");
        } else {
            out.push_str("| rule | location | reason |\n|---|---|---|\n");
            for s in &self.suppressed {
                out.push_str(&format!(
                    "| `{}` | `{}:{}` | {} |\n",
                    s.finding.rule,
                    s.finding.file,
                    s.finding.line,
                    if s.reason.is_empty() {
                        "(no reason given)"
                    } else {
                        &s.reason
                    },
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_accepts_the_documented_grammar() {
        let (rule, reason) =
            parse_allow("analyze: allow(no-panic) — injected chaos fault").unwrap();
        assert_eq!(rule, Rule::NoPanic);
        assert_eq!(reason, "injected chaos fault");
        let (rule, reason) = parse_allow("analyze: allow(determinism): partition only").unwrap();
        assert_eq!(rule, Rule::Determinism);
        assert_eq!(reason, "partition only");
        let (_, reason) = parse_allow("analyze: allow(no-alloc)").unwrap();
        assert_eq!(reason, "");
        assert!(parse_allow("analyze: allow(not-a-rule) — x").is_none());
        assert!(parse_allow("allow(no-panic)").is_none(), "needs analyze:");
    }

    #[test]
    fn render_points_a_caret_at_the_column() {
        let f = Finding {
            rule: Rule::NoPanic,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "`.unwrap()` in panic-safe module".into(),
            snippet: "    foo.unwrap();".into(),
        };
        let rendered = f.render();
        assert!(rendered.contains("error[no-panic]"));
        assert!(rendered.contains("crates/x/src/lib.rs:3:9"));
        let caret_line = rendered.lines().last().unwrap();
        let snippet_line = rendered.lines().find(|l| l.contains("foo.unwrap")).unwrap();
        // The caret sits under column 9 of the snippet: both lines share
        // the same gutter, so '^' aligns with the snippet's 9th column.
        let gutter = snippet_line.find("    foo").unwrap();
        assert_eq!(caret_line.find('^'), Some(gutter + 8), "{rendered}");
    }
}
