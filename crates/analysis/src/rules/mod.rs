//! The four rule families.
//!
//! Each rule walks the token stream of one file (or, for the transitive
//! no-alloc rule, every file of one crate) and appends [`Finding`]s. Rules
//! never see comments — suppressions are applied centrally by the engine
//! after all rules have run, so a waiver can never make a rule skip work
//! and silently widen its blind spot.

pub mod determinism;
pub mod lock_discipline;
pub mod no_alloc;
pub mod no_panic;

use crate::lexer::Token;
use crate::report::{Finding, Rule};
use crate::Unit;

/// Keywords that can legitimately precede `[` without it being an index
/// expression, and that never name a callable.
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// Builds a finding pointing at `tok` inside `unit`.
pub(crate) fn finding(unit: &Unit, rule: Rule, tok: &Token, message: String) -> Finding {
    Finding {
        rule,
        file: unit.file.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
        snippet: unit
            .lines
            .get(tok.line as usize - 1)
            .cloned()
            .unwrap_or_default(),
    }
}

/// True when token `i` is an identifier called as a method: `.name(` or
/// `.name::<…>(`.
pub(crate) fn is_method_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name)
        && i > 0
        && tokens[i - 1].is_punct('.')
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct('(') || t.is_punct(':'))
}

/// True when tokens at `i` spell `Type::method` with `Type == ty` and
/// `method ∈ methods`, followed by `(`.
pub(crate) fn is_assoc_call(tokens: &[Token], i: usize, ty: &str, methods: &[&str]) -> bool {
    tokens[i].is_ident(ty)
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct(':'))
        && matches!(tokens.get(i + 2), Some(t) if t.is_punct(':'))
        && matches!(
            tokens.get(i + 3),
            Some(t) if t.kind == crate::lexer::TokenKind::Ident
                && methods.contains(&t.text.as_str())
        )
        && matches!(tokens.get(i + 4), Some(t) if t.is_punct('(') || t.is_punct(':') || t.is_punct('<'))
}

/// True when tokens at `i` spell `name!` (a macro invocation).
pub(crate) fn is_macro_call(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens[i].is_ident(name) && matches!(tokens.get(i + 1), Some(t) if t.is_punct('!'))
}

/// True when tokens at `i` spell `a::b` with `a == first`, `b == second`.
pub(crate) fn is_path_pair(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    tokens[i].is_ident(first)
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct(':'))
        && matches!(tokens.get(i + 2), Some(t) if t.is_punct(':'))
        && matches!(tokens.get(i + 3), Some(t) if t.is_ident(second))
}
