//! Rule `lock-discipline`: no blocking or re-entrant operations while a
//! store mutex guard is live.
//!
//! The block store serializes all allocation under one mutex; every PR
//! that held that guard across a channel send, a file write, or a second
//! `lock()` call has produced either a deadlock or a tail-latency cliff.
//! This rule makes the discipline mechanical for every file under a
//! `[lock_discipline] paths` prefix:
//!
//! A **critical section** opens at `let [mut] NAME = …guard_method(…)…;`
//! (where `guard_method` comes from the policy, `lock` by default) and
//! closes at the end of the enclosing block or at an explicit
//! `drop(NAME)`. Inside it, the rule bans:
//!
//! - channel operations: `.send(…)`, `.recv(…)`, `.recv_timeout(…)`,
//!   `.try_recv(…)`, `.try_send(…)`;
//! - taking another guard: `.lock(…)`, `.try_lock(…)`, plus every
//!   configured `guard_method`;
//! - file I/O: `File::…`, `OpenOptions::…`, `fs::…`;
//! - anything in `extra_banned` called as a function or method.

use crate::lexer::{Token, TokenKind};
use crate::policy::Policy;
use crate::report::{Finding, Rule};
use crate::rules::finding;
use crate::Unit;

/// Built-in banned method names inside a critical section.
const BANNED_METHODS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "try_recv",
    "try_send",
    "lock",
    "try_lock",
];

/// Built-in banned path heads (`Head::…`) inside a critical section.
const BANNED_PATH_HEADS: &[&str] = &["File", "OpenOptions", "fs"];

/// Runs the rule over one unit.
pub fn check(unit: &Unit, policy: &Policy, out: &mut Vec<Finding>) {
    if !Policy::path_covered(&policy.lock_paths, &unit.file.path) {
        return;
    }
    let tokens = &unit.lexed.tokens;
    let mut i = 0usize;
    while i < tokens.len() {
        if unit.tree.in_test_code(i) || !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        if let Some(section) = guard_binding(unit, policy, i) {
            scan_section(unit, policy, &section, out);
        }
        i += 1;
    }
}

/// A detected critical section.
struct Section {
    /// The guard variable's name.
    name: String,
    /// Line of the `let` that created the guard.
    line: u32,
    /// Token range of the live window (after the binding's `;`, up to the
    /// end of the enclosing block).
    window: (usize, usize),
}

/// If the `let` at token `i` binds a guard (`let [mut] NAME = …guard(…)`),
/// returns its critical section.
fn guard_binding(unit: &Unit, policy: &Policy, i: usize) -> Option<Section> {
    let tokens = &unit.lexed.tokens;
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = tokens.get(j)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    if !tokens.get(j + 1).is_some_and(|t| t.is_punct('=')) {
        return None;
    }
    // Scan the initializer for a guard-producing call, stopping at the
    // `;` that ends the statement. Depth tracking matters twice over: a
    // `;` inside a nested block belongs to that block, and a `.lock()`
    // inside nested braces/parens produces a guard that dies *there*
    // (`let free = { let g = self.lock(); g.free };` binds a plain
    // usize, not a guard).
    let mut k = j + 2;
    let mut produces_guard = false;
    let mut depth = 0usize;
    while let Some(tok) = tokens.get(k) {
        match tok.text.as_str() {
            "{" | "(" | "[" if tok.kind == TokenKind::Punct => depth += 1,
            "}" | ")" | "]" if tok.kind == TokenKind::Punct => depth = depth.saturating_sub(1),
            ";" if tok.kind == TokenKind::Punct && depth == 0 => break,
            _ => {}
        }
        if depth == 0
            && tok.kind == TokenKind::Ident
            && policy.lock_guard_methods.iter().any(|m| m == &tok.text)
            && k > 0
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            produces_guard = true;
        }
        k += 1;
    }
    if !produces_guard {
        return None;
    }
    // Window: from past the `;` to the end of the enclosing block.
    let block_end = unit
        .tree
        .at(i)
        .map(|s| unit.tree.scopes[s].end)
        .unwrap_or(tokens.len());
    Some(Section {
        name: name_tok.text.clone(),
        line: tokens[i].line,
        window: (k + 1, block_end),
    })
}

/// Emits findings for banned operations inside `section`.
fn scan_section(unit: &Unit, policy: &Policy, section: &Section, out: &mut Vec<Finding>) {
    let tokens = &unit.lexed.tokens;
    let (start, end) = section.window;
    let mut i = start;
    while i < end.min(tokens.len()) {
        let tok = &tokens[i];
        if tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // `drop(NAME)` ends the critical section early.
        if tok.is_ident("drop")
            && matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
            && matches!(tokens.get(i + 2), Some(t) if t.is_ident(&section.name))
            && matches!(tokens.get(i + 3), Some(t) if t.is_punct(')'))
        {
            return;
        }
        if let Some(message) = banned(unit, policy, i) {
            out.push(finding(
                unit,
                Rule::LockDiscipline,
                tok,
                format!(
                    "{message} while guard `{}` (taken at line {}) is live — move it \
                     outside the critical section or `drop({})` first",
                    section.name, section.line, section.name
                ),
            ));
        }
        i += 1;
    }
}

/// Describes the banned operation at token `i`, if any.
fn banned(unit: &Unit, policy: &Policy, i: usize) -> Option<String> {
    let tokens = &unit.lexed.tokens;
    let tok: &Token = &tokens[i];
    let name = tok.text.as_str();
    let is_method =
        i > 0 && tokens[i - 1].is_punct('.') && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
    if is_method
        && (BANNED_METHODS.contains(&name)
            || policy.lock_guard_methods.iter().any(|m| m == name)
            || policy.lock_extra_banned.iter().any(|m| m == name))
    {
        let kind = match name {
            "send" | "try_send" => "channel send",
            "recv" | "recv_timeout" | "try_recv" => "channel receive",
            "lock" | "try_lock" => "second lock acquisition",
            _ => "banned call",
        };
        return Some(format!("{kind} `.{name}()`"));
    }
    if BANNED_PATH_HEADS.contains(&name)
        && matches!(tokens.get(i + 1), Some(t) if t.is_punct(':'))
        && matches!(tokens.get(i + 2), Some(t) if t.is_punct(':'))
    {
        return Some(format!("file I/O `{name}::…`"));
    }
    if policy.lock_extra_banned.iter().any(|m| m == name)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
    {
        return Some(format!("banned call `{name}(…)`"));
    }
    None
}
