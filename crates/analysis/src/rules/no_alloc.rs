//! Rule `no-alloc`: annotated functions and regions may not allocate.
//!
//! Coverage comes from two annotation forms:
//!
//! - `// analyze: no-alloc` immediately before a `fn` covers that
//!   function's body;
//! - `// analyze: no-alloc(begin)` … `// analyze: no-alloc(end)` cover
//!   the lines between the markers (for a hot section inside a larger
//!   function, e.g. the per-token decode loop).
//!
//! Inside covered code the rule bans the allocating constructors, macros,
//! and adapter methods below, and it follows *same-crate* function calls
//! transitively: a covered region that calls `helper()` is held to the
//! same standard inside `helper`. Traversal stops at crate boundaries —
//! cross-crate kernels carry their own annotations — and only follows
//! call targets whose name maps to exactly one function in the crate
//! (ambiguous names such as a ubiquitous `new` would otherwise smear
//! findings from unrelated impls into the region).

use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::report::{Finding, Rule};
use crate::rules::{finding, is_assoc_call, is_macro_call, is_method_call, KEYWORDS};
use crate::Unit;
use std::collections::{BTreeMap, BTreeSet};

/// Types whose allocating constructors are banned.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "String",
    "Box",
    "Rc",
    "Arc",
    "VecDeque",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "CString",
    "PathBuf",
    "BinaryHeap",
];

/// The banned constructor names on those types.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter", "from_vec"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that allocate on (practically) any receiver.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "into_vec",
    "into_boxed_slice",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
];

/// A covered region inside one unit: a token range plus how it was
/// declared (for messages).
struct Region {
    unit: usize,
    /// Token index range, inclusive start, exclusive end.
    tokens: (usize, usize),
    /// Human description, e.g. "fn `attend`" or "region at line 120".
    label: String,
}

/// Runs the rule over one crate's units. `crate_units` indexes into
/// `units`. Returns the number of covered regions seen.
pub fn check(
    units: &[Unit],
    crate_units: &[usize],
    policy: &Policy,
    out: &mut Vec<Finding>,
) -> usize {
    // Map fn name -> unique (unit, scope) definition for the crate.
    let mut defs: BTreeMap<&str, Option<(usize, usize)>> = BTreeMap::new();
    for &u in crate_units {
        for (scope_idx, name) in units[u].tree.functions() {
            if units[u].tree.scopes[scope_idx].is_test {
                continue;
            }
            defs.entry(name)
                .and_modify(|slot| *slot = None) // ambiguous: never traversed
                .or_insert(Some((u, scope_idx)));
        }
    }

    let regions = collect_regions(units, crate_units);
    let count = regions.len();
    for region in &regions {
        let mut visited: BTreeSet<(usize, usize)> = BTreeSet::new();
        scan(
            units,
            region.unit,
            region.tokens,
            &region.label,
            &[],
            policy,
            &defs,
            &mut visited,
            out,
        );
    }
    count
}

/// Collects annotated-fn bodies and begin/end marker line ranges.
fn collect_regions(units: &[Unit], crate_units: &[usize]) -> Vec<Region> {
    let mut regions = Vec::new();
    for &u in crate_units {
        let unit = &units[u];
        for (idx, scope) in unit.tree.scopes.iter().enumerate() {
            if scope.is_test || !scope.annotations.iter().any(|a| a == "no-alloc") {
                continue;
            }
            let name = match &scope.kind {
                crate::scope::ScopeKind::Fn { name } => name.clone(),
                _ => continue,
            };
            let _ = idx;
            regions.push(Region {
                unit: u,
                tokens: (scope.start + 1, scope.end),
                label: format!("fn `{name}`"),
            });
        }
        // Marker pairs: begin opens a line range, the next end closes it.
        let mut begin: Option<u32> = None;
        for c in &unit.lexed.comments {
            let Some(marker) = parse_marker(&c.text) else {
                continue;
            };
            match (marker, begin) {
                (Marker::Begin, None) => begin = Some(c.line),
                (Marker::End, Some(start)) => {
                    regions.push(line_region(unit, u, start, c.line));
                    begin = None;
                }
                // A second begin restarts; a stray end is ignored — the
                // fixture corpus pins this behavior.
                (Marker::Begin, Some(_)) => begin = Some(c.line),
                (Marker::End, None) => {}
            }
        }
        if let Some(start) = begin {
            regions.push(line_region(unit, u, start, u32::MAX));
        }
    }
    regions
}

enum Marker {
    Begin,
    End,
}

fn parse_marker(text: &str) -> Option<Marker> {
    let rest = text.strip_prefix("analyze:")?.trim();
    let rest = rest.strip_prefix("no-alloc")?.trim_start();
    match rest.strip_prefix('(') {
        Some(r) if r.trim_start().starts_with("begin") => Some(Marker::Begin),
        Some(r) if r.trim_start().starts_with("end") => Some(Marker::End),
        _ => None,
    }
}

/// Converts a line span into a token-range region.
fn line_region(unit: &Unit, u: usize, start_line: u32, end_line: u32) -> Region {
    let tokens = &unit.lexed.tokens;
    let first = tokens.partition_point(|t| t.line < start_line);
    let last = tokens.partition_point(|t| t.line <= end_line);
    Region {
        unit: u,
        tokens: (first, last),
        label: format!("region at line {start_line}"),
    }
}

/// Scans one token range for allocations and traverses same-crate calls.
/// `chain` is the call path from the original region (empty at the root).
#[allow(clippy::too_many_arguments)]
fn scan(
    units: &[Unit],
    u: usize,
    (start, end): (usize, usize),
    label: &str,
    chain: &[String],
    policy: &Policy,
    defs: &BTreeMap<&str, Option<(usize, usize)>>,
    visited: &mut BTreeSet<(usize, usize)>,
    out: &mut Vec<Finding>,
) {
    let unit = &units[u];
    let tokens = &unit.lexed.tokens;
    let via = if chain.is_empty() {
        String::new()
    } else {
        format!(" (reached via {})", chain.join(" -> "))
    };
    let mut i = start;
    while i < end.min(tokens.len()) {
        let tok = &tokens[i];
        if unit.tree.in_test_code(i) || tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let mut hit: Option<String> = None;
        if ALLOC_MACROS.contains(&tok.text.as_str()) && is_macro_call(tokens, i, &tok.text) {
            hit = Some(format!("`{}!` allocates", tok.text));
        } else if ALLOC_TYPES.contains(&tok.text.as_str())
            && is_assoc_call(tokens, i, &tok.text, ALLOC_CTORS)
        {
            hit = Some(format!("`{}::{}` allocates", tok.text, tokens[i + 3].text));
        } else if ALLOC_METHODS.contains(&tok.text.as_str()) && is_method_call(tokens, i, &tok.text)
        {
            hit = Some(format!("`.{}()` allocates", tok.text));
        } else if policy.no_alloc_ban_clone && is_method_call(tokens, i, "clone") {
            hit = Some("`.clone()` may allocate (heap-owning receiver)".to_string());
        }
        if let Some(what) = hit {
            out.push(finding(
                unit,
                Rule::NoAlloc,
                tok,
                format!("{what} in no-alloc {label}{via}"),
            ));
            i += 1;
            continue;
        }
        // Same-crate call traversal: `name(`, `.name(`, `Type::name(`.
        if matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
            && !KEYWORDS.contains(&tok.text.as_str())
            && !matches!(tokens.get(i.wrapping_sub(1)), Some(t) if t.is_ident("fn"))
        {
            if let Some(Some((du, ds))) = defs.get(tok.text.as_str()) {
                if visited.insert((*du, *ds)) {
                    let scope = &units[*du].tree.scopes[*ds];
                    let mut next_chain = chain.to_vec();
                    next_chain.push(tok.text.clone());
                    scan(
                        units,
                        *du,
                        (scope.start + 1, scope.end),
                        label,
                        &next_chain,
                        policy,
                        defs,
                        visited,
                        out,
                    );
                }
            }
        }
        i += 1;
    }
}
