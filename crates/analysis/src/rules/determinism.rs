//! Rule `determinism`: pinned kernel files must be bit-reproducible.
//!
//! The serving engine's equivalence suites pin kernels to produce
//! bit-identical output across worker counts and across runs. This rule
//! bans the constructs that historically break that pin, in every file
//! under a `[determinism] paths` prefix:
//!
//! - `HashMap` / `HashSet` (any appearance): iteration order is
//!   randomized per process, so even a "read-only" map invites
//!   order-dependent accumulation. Pinned files use `BTreeMap`/`Vec`.
//! - `Instant::now` / `SystemTime::now`: wall-clock reads make control
//!   flow time-dependent.
//! - `thread::current`: thread identity must not leak into kernel math.
//! - `current_num_threads`: pool-width-dependent branches change float
//!   accumulation order between machines.

use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::report::{Finding, Rule};
use crate::rules::{finding, is_path_pair};
use crate::Unit;

/// Runs the rule over one unit.
pub fn check(unit: &Unit, policy: &Policy, out: &mut Vec<Finding>) {
    if !Policy::path_covered(&policy.determinism_paths, &unit.file.path) {
        return;
    }
    let tokens = &unit.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if unit.tree.in_test_code(i) || tok.kind != TokenKind::Ident {
            continue;
        }
        let message = match tok.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{}` in pinned-deterministic file — iteration order is randomized; \
                 use `BTreeMap`/`BTreeSet` or a `Vec`",
                tok.text
            )),
            "Instant" | "SystemTime" if is_path_pair(tokens, i, &tok.text, "now") => Some(format!(
                "`{}::now()` reads the wall clock in a pinned-deterministic file",
                tok.text
            )),
            "thread" if is_path_pair(tokens, i, "thread", "current") => Some(
                "`thread::current()` leaks thread identity into a pinned-deterministic file"
                    .to_string(),
            ),
            "current_num_threads" => Some(
                "`current_num_threads()` makes behavior depend on pool width — float \
                 accumulation order must not vary with worker count"
                    .to_string(),
            ),
            _ => None,
        };
        if let Some(message) = message {
            out.push(finding(unit, Rule::Determinism, tok, message));
        }
    }
}
