//! Rule `no-panic`: modules declared panic-safe may not contain code that
//! can panic by construction.
//!
//! Coverage: every module listed in `[no_panic] modules` in
//! `analysis.toml` (including submodules), plus any function annotated
//! `// analyze: no-panic`. Test code is exempt — `#[test]` functions,
//! `#[cfg(test)]` modules, and files under `tests/` may unwrap freely.
//!
//! Banned in covered non-test code:
//!
//! - `.unwrap()` / `.expect(…)` — note `unwrap_or`, `unwrap_or_else`,
//!   `unwrap_or_default`, and `expect_err`-style names are *not* banned;
//!   matching is exact-identifier, which is precisely what makes the
//!   poison-tolerant `lock().unwrap_or_else(|p| p.into_inner())` pattern
//!   the sanctioned replacement.
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`,
//!   `assert_eq!`, `assert_ne!`.
//! - Slice/array indexing (`x[i]`, `x[a..b]`), only for modules also
//!   listed in `index_modules`; the full-range reborrow `[..]` cannot
//!   panic and is exempt.

use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::report::{Finding, Rule};
use crate::rules::{finding, KEYWORDS};
use crate::Unit;

/// Macros that abort the thread.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Method names that panic on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Runs the rule over one unit.
pub fn check(unit: &Unit, policy: &Policy, out: &mut Vec<Finding>) {
    let module_covered = Policy::module_covered(&policy.no_panic_modules, &unit.file.module);
    let index_covered = Policy::module_covered(&policy.no_panic_index_modules, &unit.file.module);
    let tokens = &unit.lexed.tokens;
    for (i, tok) in tokens.iter().enumerate() {
        if unit.tree.in_test_code(i) {
            continue;
        }
        let covered = module_covered || fn_annotated(unit, i);
        if !covered {
            continue;
        }
        match tok.kind {
            TokenKind::Ident => {
                if PANIC_METHODS.contains(&tok.text.as_str())
                    && i > 0
                    && tokens[i - 1].is_punct('.')
                    && matches!(tokens.get(i + 1), Some(t) if t.is_punct('('))
                {
                    out.push(finding(
                        unit,
                        Rule::NoPanic,
                        tok,
                        format!(
                            "`.{}()` can panic in panic-safe module `{}` — return a typed \
                             error or use a `*_or_else` fallback",
                            tok.text, unit.file.module
                        ),
                    ));
                } else if PANIC_MACROS.contains(&tok.text.as_str())
                    && matches!(tokens.get(i + 1), Some(t) if t.is_punct('!'))
                {
                    out.push(finding(
                        unit,
                        Rule::NoPanic,
                        tok,
                        format!(
                            "`{}!` aborts the thread in panic-safe module `{}`",
                            tok.text, unit.file.module
                        ),
                    ));
                }
            }
            TokenKind::Punct if tok.is_punct('[') && index_covered && is_index_expr(unit, i) => {
                out.push(finding(
                    unit,
                    Rule::NoPanic,
                    tok,
                    format!(
                        "slice indexing can panic in panic-safe module `{}` — use `.get()` \
                         or bounds-checked splits",
                        unit.file.module
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// True when the function enclosing token `i` carries an explicit
/// `// analyze: no-panic` annotation.
fn fn_annotated(unit: &Unit, i: usize) -> bool {
    unit.tree.enclosing_fn(i).is_some_and(|s| {
        unit.tree.scopes[s]
            .annotations
            .iter()
            .any(|a| a == "no-panic")
    })
}

/// True when the `[` at token `i` begins an index expression rather than
/// an array literal, attribute, pattern, or type.
fn is_index_expr(unit: &Unit, i: usize) -> bool {
    let tokens = &unit.lexed.tokens;
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return false;
    };
    let indexable = match prev.kind {
        TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `buf[..]` reborrows the whole slice; it cannot be out of bounds.
    matches!(
        (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3)),
        (Some(a), Some(b), Some(c)) if !(a.is_punct('.') && b.is_punct('.') && c.is_punct(']'))
    ) || tokens.get(i + 1).is_none()
}
