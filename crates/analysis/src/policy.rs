//! The `analysis.toml` policy file: which modules and files each rule
//! family covers.
//!
//! The analyzer is dependency-free, so this module carries its own parser
//! for the small TOML subset the policy needs: `[section]` headers,
//! `key = "string"`, `key = true/false`, `key = 123`, and
//! `key = ["a", "b"]` arrays (single- or multi-line). Anything outside
//! that subset is a hard error — a policy file that cannot be read must
//! fail the build, not silently lint nothing.

use std::fmt;

/// Parsed policy: one section per rule family plus the scan roots.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Directories (relative to the workspace root) to scan for crates.
    pub scan: Vec<String>,
    /// Path prefixes to skip entirely (fixture corpora, generated code).
    pub exclude: Vec<String>,
    /// Whether `.clone()` is banned inside no-alloc regions.
    pub no_alloc_ban_clone: bool,
    /// Modules (e.g. `serverd::shard`) whose non-test code may not
    /// panic. A policy entry covers the module and all its submodules.
    pub no_panic_modules: Vec<String>,
    /// The subset of [`Policy::no_panic_modules`] where slice/array
    /// indexing is banned too.
    pub no_panic_index_modules: Vec<String>,
    /// Path prefixes (files or directories) pinned deterministic.
    pub determinism_paths: Vec<String>,
    /// Path prefixes where the lock-discipline rule applies.
    pub lock_paths: Vec<String>,
    /// Method names whose call produces a live lock guard (`lock` by
    /// default; wrappers like a crate-private `fn lock()` match too).
    pub lock_guard_methods: Vec<String>,
    /// Extra banned callee names while a guard is live, on top of the
    /// built-in channel/file/lock set.
    pub lock_extra_banned: Vec<String>,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            scan: vec!["crates".to_string()],
            exclude: Vec::new(),
            no_alloc_ban_clone: true,
            no_panic_modules: Vec::new(),
            no_panic_index_modules: Vec::new(),
            determinism_paths: Vec::new(),
            lock_paths: Vec::new(),
            lock_guard_methods: vec!["lock".to_string()],
            lock_extra_banned: Vec::new(),
        }
    }
}

/// Why a policy file failed to parse.
#[derive(Debug)]
pub struct PolicyError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyError {}

impl Policy {
    /// Parses the policy from TOML text.
    pub fn parse(text: &str) -> Result<Policy, PolicyError> {
        let mut policy = Policy::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| PolicyError {
                line: line_no,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim();
            let mut value = value.trim().to_string();
            // Multi-line arrays: keep consuming lines until brackets
            // balance.
            while value.starts_with('[') && !value.ends_with(']') {
                let (_, next) = lines.next().ok_or_else(|| PolicyError {
                    line: line_no,
                    message: format!("unterminated array for `{key}`"),
                })?;
                value.push_str(strip_comment(next).trim());
            }
            let err = |message: String| PolicyError {
                line: line_no,
                message,
            };
            match (section.as_str(), key) {
                ("", "version") => {} // accepted for forward evolution
                ("", "scan") => policy.scan = parse_array(&value).map_err(err)?,
                ("", "exclude") => policy.exclude = parse_array(&value).map_err(err)?,
                ("no_alloc", "ban_clone") => {
                    policy.no_alloc_ban_clone = parse_bool(&value).map_err(err)?
                }
                ("no_panic", "modules") => {
                    policy.no_panic_modules = parse_array(&value).map_err(err)?
                }
                ("no_panic", "index_modules") => {
                    policy.no_panic_index_modules = parse_array(&value).map_err(err)?
                }
                ("determinism", "paths") => {
                    policy.determinism_paths = parse_array(&value).map_err(err)?
                }
                ("lock_discipline", "paths") => {
                    policy.lock_paths = parse_array(&value).map_err(err)?
                }
                ("lock_discipline", "guard_methods") => {
                    policy.lock_guard_methods = parse_array(&value).map_err(err)?
                }
                ("lock_discipline", "extra_banned") => {
                    policy.lock_extra_banned = parse_array(&value).map_err(err)?
                }
                _ => {
                    return Err(err(format!(
                        "unknown key `{key}` in section `[{section}]` — \
                         the analyzer rejects unrecognized policy so typos cannot silently \
                         disable a rule"
                    )));
                }
            }
        }
        Ok(policy)
    }

    /// True when `module` is covered by an entry in `list` (exact match
    /// or submodule: `serverd::shard` covers `serverd::shard::inner`).
    pub fn module_covered(list: &[String], module: &str) -> bool {
        list.iter().any(|m| {
            module == m
                || (module.len() > m.len()
                    && module.starts_with(m.as_str())
                    && module[m.len()..].starts_with("::"))
        })
    }

    /// True when `path` (workspace-relative, `/`-separated) falls under a
    /// prefix in `list`.
    pub fn path_covered(list: &[String], path: &str) -> bool {
        list.iter().any(|p| {
            path == p
                || (path.len() > p.len()
                    && path.starts_with(p.as_str())
                    && path[p.len()..].starts_with('/'))
        })
    }
}

/// Removes a `#` comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_bool(value: &str) -> Result<bool, String> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("expected true/false, got `{other}`")),
    }
}

fn parse_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{value}`"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("array elements must be quoted strings, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

/// Splits on commas outside of quotes.
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_policy_shape() {
        let policy = Policy::parse(
            r#"
version = 1
scan = ["crates"]
exclude = ["crates/analysis/tests/fixtures"]  # fixture corpus

[no_alloc]
ban_clone = true

[no_panic]
modules = [
    "serverd::shard",  # supervision loop
    "million::persist",
]
index_modules = ["million::persist"]

[determinism]
paths = ["crates/quant/src", "crates/tensor/src/ops.rs"]

[lock_discipline]
paths = ["crates/store/src/store.rs"]
guard_methods = ["lock"]
extra_banned = ["atomic_write"]
"#,
        )
        .unwrap();
        assert_eq!(policy.scan, vec!["crates"]);
        assert_eq!(
            policy.no_panic_modules,
            vec!["serverd::shard", "million::persist"]
        );
        assert_eq!(policy.no_panic_index_modules, vec!["million::persist"]);
        assert_eq!(policy.determinism_paths.len(), 2);
        assert_eq!(policy.lock_extra_banned, vec!["atomic_write"]);
        assert!(policy.no_alloc_ban_clone);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = Policy::parse("[no_panic]\nmodlues = [\"x\"]\n").unwrap_err();
        assert!(err.message.contains("modlues"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn module_coverage_is_exact_or_submodule() {
        let list = vec!["serverd::shard".to_string()];
        assert!(Policy::module_covered(&list, "serverd::shard"));
        assert!(Policy::module_covered(&list, "serverd::shard::inner"));
        assert!(!Policy::module_covered(&list, "serverd::shard_pool"));
        assert!(!Policy::module_covered(&list, "serverd"));
    }

    #[test]
    fn path_coverage_is_prefix_by_component() {
        let list = vec!["crates/quant/src".to_string()];
        assert!(Policy::path_covered(&list, "crates/quant/src/pq.rs"));
        assert!(!Policy::path_covered(&list, "crates/quant/src2/pq.rs"));
        assert!(Policy::path_covered(&list, "crates/quant/src"));
    }
}
