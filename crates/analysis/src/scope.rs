//! Brace-matched scope tree over the token stream.
//!
//! The tree records exactly what the rules need: where every `fn` and
//! `mod` body begins and ends (token indices of the braces), which scopes
//! are test code (`#[test]` functions, `#[cfg(test)]` modules, and
//! everything nested inside them), and which `// analyze: <rule>`
//! annotations precede each function. All other braces — `impl` bodies,
//! `match` arms, closures, plain blocks — become anonymous scopes that
//! exist only so brace matching and test inheritance stay correct.
//!
//! This is not a parser. It is a bracket matcher with just enough item
//! recognition to answer three questions per token: *which function am I
//! in*, *am I test code*, and *is this function annotated*.

use crate::lexer::{Lexed, Token, TokenKind};

/// What opened a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeKind {
    /// A function body; `name` is the identifier after `fn`.
    Fn {
        /// The function's name.
        name: String,
    },
    /// An inline module body; `name` is the identifier after `mod`.
    Mod {
        /// The module's name.
        name: String,
    },
    /// Any other braced region (impl, struct, match, closure, block…).
    Block,
}

/// One braced scope.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What opened this scope.
    pub kind: ScopeKind,
    /// True when this scope is (or is nested inside) test code.
    pub is_test: bool,
    /// Token index of the opening `{`.
    pub start: usize,
    /// Token index of the matching `}` (or one past the last token when
    /// the brace never closed).
    pub end: usize,
    /// Index of the enclosing scope, if any.
    pub parent: Option<usize>,
    /// `analyze:` annotations attached to this function (empty for
    /// non-`fn` scopes), e.g. `"no-alloc"`.
    pub annotations: Vec<String>,
    /// Line of the item header (the `fn`/`mod` keyword), for reporting.
    pub header_line: u32,
}

/// The scope tree plus a per-token innermost-scope index.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// All scopes in opening order.
    pub scopes: Vec<Scope>,
    /// For each token index, the innermost scope containing it (`None`
    /// at file top level).
    scope_of: Vec<Option<usize>>,
}

impl ScopeTree {
    /// Innermost scope containing token `i`.
    pub fn at(&self, i: usize) -> Option<usize> {
        self.scope_of.get(i).copied().flatten()
    }

    /// True when token `i` sits inside test code.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.at(i).map(|s| self.scopes[s].is_test).unwrap_or(false)
    }

    /// The innermost *function* scope containing token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut cur = self.at(i);
        while let Some(s) = cur {
            if matches!(self.scopes[s].kind, ScopeKind::Fn { .. }) {
                return Some(s);
            }
            cur = self.scopes[s].parent;
        }
        None
    }

    /// All function scopes, with their names.
    pub fn functions(&self) -> impl Iterator<Item = (usize, &str)> {
        self.scopes.iter().enumerate().filter_map(|(i, s)| {
            if let ScopeKind::Fn { name } = &s.kind {
                Some((i, name.as_str()))
            } else {
                None
            }
        })
    }

    /// Builds the tree. `file_is_test` pre-marks every scope as test code
    /// (used for files under a `tests/` directory).
    pub fn build(lexed: &Lexed, file_is_test: bool) -> ScopeTree {
        Builder::new(lexed, file_is_test).run()
    }
}

/// A pending `fn`/`mod` item seen but not yet opened with `{`.
struct Pending {
    is_fn: bool,
    name: Option<String>,
    is_test: bool,
    annotations: Vec<String>,
    header_line: u32,
}

struct Builder<'a> {
    tokens: &'a [Token],
    lexed: &'a Lexed,
    file_is_test: bool,
    /// Next comment to merge into the token walk.
    comment_cursor: usize,
    /// Attribute texts seen since the last item/statement boundary.
    pending_attrs: Vec<String>,
    /// `analyze:` rule annotations seen since the last boundary.
    pending_annos: Vec<String>,
    pending_item: Option<Pending>,
    /// Nesting depth of `(` and `[` — a `;` or `,` only ends an item at
    /// depth 0 (so `fn f(a: u32, b: [u8; 4])` keeps its pending item).
    depth: usize,
    stack: Vec<usize>,
    tree: ScopeTree,
}

impl<'a> Builder<'a> {
    fn new(lexed: &'a Lexed, file_is_test: bool) -> Builder<'a> {
        Builder {
            tokens: &lexed.tokens,
            lexed,
            file_is_test,
            comment_cursor: 0,
            pending_attrs: Vec::new(),
            pending_annos: Vec::new(),
            pending_item: None,
            depth: 0,
            stack: Vec::new(),
            tree: ScopeTree {
                scopes: Vec::new(),
                scope_of: vec![None; lexed.tokens.len()],
            },
        }
    }

    /// Absorbs annotation comments that appear before line `line`: a
    /// standalone `// analyze: no-alloc` comment attaches to the next
    /// function the same way an attribute would.
    fn absorb_comments_before(&mut self, line: u32) {
        while let Some(c) = self.lexed.comments.get(self.comment_cursor) {
            if c.line > line {
                break;
            }
            if !c.trailing {
                if let Some(rule) = parse_fn_annotation(&c.text) {
                    self.pending_annos.push(rule);
                }
            }
            self.comment_cursor += 1;
        }
    }

    fn run(mut self) -> ScopeTree {
        let mut i = 0usize;
        while i < self.tokens.len() {
            let tok = &self.tokens[i];
            self.absorb_comments_before(tok.line);
            // Record the innermost scope for this token before any
            // open/close below, so braces belong to the *outer* scope.
            self.tree.scope_of[i] = self.stack.last().copied();

            if tok.is_punct('#')
                && matches!(self.tokens.get(i + 1), Some(t) if t.is_punct('[') || t.is_punct('!'))
            {
                i = self.attribute(i);
                continue;
            }
            match tok.kind {
                TokenKind::Ident if tok.text == "fn" => {
                    self.pending_item = Some(Pending {
                        is_fn: true,
                        name: None,
                        is_test: attrs_mark_test(&self.pending_attrs),
                        annotations: std::mem::take(&mut self.pending_annos),
                        header_line: tok.line,
                    });
                    self.pending_attrs.clear();
                }
                TokenKind::Ident if tok.text == "mod" => {
                    self.pending_item = Some(Pending {
                        is_fn: false,
                        name: None,
                        is_test: attrs_mark_test(&self.pending_attrs),
                        annotations: Vec::new(),
                        header_line: tok.line,
                    });
                    self.pending_attrs.clear();
                }
                TokenKind::Ident => {
                    if let Some(p) = &mut self.pending_item {
                        if p.name.is_none() {
                            p.name = Some(tok.text.clone());
                        }
                    }
                }
                TokenKind::Punct => match tok.text.as_str() {
                    "{" => self.open(i, tok.line),
                    "}" => self.close(i),
                    "(" => {
                        // `fn(u32) -> u32` in type position: `(` arrives
                        // before any name, so this is a fn-pointer type,
                        // not an item header.
                        if matches!(&self.pending_item, Some(p) if p.is_fn && p.name.is_none()) {
                            self.pending_item = None;
                        }
                        self.depth += 1;
                    }
                    "[" => self.depth += 1,
                    ")" | "]" => self.depth = self.depth.saturating_sub(1),
                    // `fn f();` (trait decl) and `mod m;` (file module)
                    // never open a body: the pending item is stale. Only
                    // a top-level `;` ends an item — one inside `(…)` or
                    // `[…]` belongs to a parameter's type.
                    ";" if self.depth == 0 => {
                        self.pending_item = None;
                        self.pending_attrs.clear();
                        self.pending_annos.clear();
                    }
                    "," if self.depth == 0 => {
                        self.pending_attrs.clear();
                        self.pending_annos.clear();
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
        // Close unterminated scopes at EOF.
        while let Some(s) = self.stack.pop() {
            self.tree.scopes[s].end = self.tokens.len();
        }
        self.tree
    }

    /// Skips over `#[...]` / `#![...]`, collecting the bracketed text of
    /// outer attributes. Returns the index after the closing bracket.
    fn attribute(&mut self, hash: usize) -> usize {
        let mut i = hash + 1;
        let inner = self.tokens.get(i).is_some_and(|t| t.is_punct('!'));
        if inner {
            i += 1;
        }
        if !self.tokens.get(i).is_some_and(|t| t.is_punct('[')) {
            return hash + 1;
        }
        let mut depth = 0usize;
        let mut text = String::new();
        while let Some(tok) = self.tokens.get(i) {
            self.tree.scope_of[i] = self.stack.last().copied();
            if tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            } else {
                text.push_str(&tok.text);
                text.push(' ');
            }
            i += 1;
        }
        if !inner {
            self.pending_attrs.push(text);
        }
        i
    }

    fn open(&mut self, i: usize, _line: u32) {
        let parent = self.stack.last().copied();
        let parent_test = parent.map(|p| self.tree.scopes[p].is_test).unwrap_or(false);
        let (kind, own_test, annotations, header_line) = match self.pending_item.take() {
            Some(p) => {
                let name = p.name.unwrap_or_default();
                let kind = if p.is_fn {
                    ScopeKind::Fn { name }
                } else {
                    ScopeKind::Mod { name }
                };
                (kind, p.is_test, p.annotations, p.header_line)
            }
            None => (ScopeKind::Block, false, Vec::new(), self.tokens[i].line),
        };
        self.pending_attrs.clear();
        self.pending_annos.clear();
        let idx = self.tree.scopes.len();
        self.tree.scopes.push(Scope {
            kind,
            is_test: self.file_is_test || parent_test || own_test,
            start: i,
            end: self.tokens.len(),
            parent,
            annotations,
            header_line,
        });
        self.stack.push(idx);
    }

    fn close(&mut self, i: usize) {
        if let Some(s) = self.stack.pop() {
            self.tree.scopes[s].end = i;
        }
    }
}

/// True when an attribute list marks the item as test-only: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[tokio::test]`-style.
fn attrs_mark_test(attrs: &[String]) -> bool {
    attrs.iter().any(|a| {
        let mut words = a.split_whitespace();
        words.any(|w| w == "test")
    })
}

/// Parses a standalone `analyze: <rule>` comment that annotates the next
/// function (e.g. `analyze: no-alloc` or `analyze: no-alloc — reason`).
/// Region markers (`no-alloc(begin)`) and suppressions (`allow(...)`) are
/// handled by the rule engine, not here.
fn parse_fn_annotation(text: &str) -> Option<String> {
    let rest = text.strip_prefix("analyze:")?.trim();
    let rule: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
        .collect();
    if rule.is_empty() || rest[rule.len()..].trim_start().starts_with('(') {
        return None; // region marker or malformed
    }
    if rule == "allow" {
        return None; // suppression, not an annotation
    }
    Some(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> ScopeTree {
        ScopeTree::build(&lex(src), false)
    }

    #[test]
    fn matches_fn_and_mod_scopes() {
        let t = tree("mod m { pub fn f(x: u32) -> u32 { x + 1 } fn g() {} }");
        let kinds: Vec<_> = t.scopes.iter().map(|s| s.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                ScopeKind::Mod { name: "m".into() },
                ScopeKind::Fn { name: "f".into() },
                ScopeKind::Fn { name: "g".into() },
            ]
        );
        assert_eq!(t.scopes[1].parent, Some(0));
        assert_eq!(t.scopes[2].parent, Some(0));
    }

    #[test]
    fn cfg_test_marks_nested_scopes() {
        let t = tree(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() { helper(); }\n    fn helper() {}\n}\n",
        );
        assert!(!t.scopes[0].is_test, "live fn is not test code");
        assert!(t.scopes[1].is_test, "tests mod is test code");
        assert!(t.scopes[2].is_test, "#[test] fn");
        assert!(t.scopes[3].is_test, "helper inherits from the mod");
    }

    #[test]
    fn annotations_attach_to_the_next_fn() {
        let t =
            tree("// analyze: no-alloc — hot kernel\npub fn kernel() { work(); }\nfn other() {}\n");
        assert_eq!(t.scopes[0].annotations, vec!["no-alloc"]);
        assert!(t.scopes[1].annotations.is_empty());
    }

    #[test]
    fn annotations_survive_doc_comments_and_attributes() {
        let t =
            tree("// analyze: no-alloc\n/// Docs for the kernel.\n#[inline]\npub fn kernel() {}\n");
        assert_eq!(t.scopes[0].annotations, vec!["no-alloc"]);
    }

    #[test]
    fn trait_decls_and_fn_pointer_fields_do_not_open_fn_scopes() {
        let t = tree(
            "trait T { fn decl(&self); }\nstruct S { callback: fn(u32) -> u32 }\nfn real() {}\n",
        );
        let fns: Vec<_> = t.functions().map(|(_, n)| n.to_string()).collect();
        assert_eq!(fns, vec!["real"]);
    }

    #[test]
    fn multi_argument_signatures_keep_their_pending_item() {
        // Commas and `;` inside the parameter list (or `where` clauses)
        // must not cancel the item: this is the shape of every real
        // annotated kernel (`fn attend(&self, params: …, out: &mut …)`).
        let t = tree(
            "// analyze: no-alloc\nfn attend(&self, x: [u8; 4], out: &mut [f32]) -> u32 where Self: Sized, u32: Copy { 0 }\n",
        );
        let fns: Vec<_> = t.functions().map(|(i, n)| (i, n.to_string())).collect();
        assert_eq!(fns.len(), 1, "{:?}", t.scopes);
        assert_eq!(fns[0].1, "attend");
        assert_eq!(t.scopes[fns[0].0].annotations, vec!["no-alloc"]);
    }

    #[test]
    fn enclosing_fn_resolves_through_inner_blocks() {
        let src = "fn outer() { if true { let x = 1; } }";
        let t = tree(src);
        let lexed = lex(src);
        let x = lexed
            .tokens
            .iter()
            .position(|tok| tok.is_ident("x"))
            .unwrap();
        let f = t.enclosing_fn(x).unwrap();
        assert_eq!(
            t.scopes[f].kind,
            ScopeKind::Fn {
                name: "outer".into()
            }
        );
    }

    #[test]
    fn match_arms_and_closures_stay_anonymous() {
        let t = tree("fn f(x: u32) { match x { 0 => {} _ => {} } let c = |y: u32| { y }; }");
        let fn_count = t.functions().count();
        assert_eq!(fn_count, 1);
        assert!(t.scopes.len() >= 4, "anonymous scopes recorded");
    }
}
