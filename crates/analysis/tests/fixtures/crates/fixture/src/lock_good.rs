//! The disciplined twin of `lock_bad.rs`: copy out under the guard,
//! communicate after it. Pinned at exactly 0 findings.

pub struct Store {
    inner: std::sync::Mutex<Inner>,
    aux: std::sync::Mutex<u32>,
}

pub struct Inner {
    free: usize,
}

impl Store {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn send_after_drop(&self, tx: &std::sync::mpsc::Sender<usize>) {
        let inner = self.lock();
        let free = inner.free;
        drop(inner);
        // The guard is dead: channel traffic is fine here.
        let _ = tx.send(free);
    }

    pub fn send_after_block(&self, tx: &std::sync::mpsc::Sender<usize>) {
        let free = {
            let inner = self.lock();
            inner.free
        };
        let _ = tx.send(free);
    }

    pub fn locks_in_sequence(&self) -> usize {
        let free = {
            let inner = self.lock();
            inner.free
        };
        let aux = {
            let g = self.aux.lock().unwrap_or_else(|p| p.into_inner());
            *g
        };
        free + aux as usize
    }

    pub fn io_before_lock(&self, path: &str) {
        let payload = std::fs::read(path).unwrap_or_default();
        let mut inner = self.lock();
        inner.free += payload.len();
    }
}
