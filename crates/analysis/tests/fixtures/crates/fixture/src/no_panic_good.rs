//! The panic-free twin of `no_panic_bad.rs`: typed errors and checked
//! access only. Pinned at exactly 0 findings.

/// Why parsing failed.
pub enum ParseFail {
    /// Input shorter than the header.
    Short,
    /// First byte must be non-zero.
    ZeroByte,
    /// Code point outside the table.
    BadCode,
}

pub fn parse(input: &[u8], table: &[u32]) -> Result<u32, ParseFail> {
    let first = input.first().ok_or(ParseFail::Short)?;
    let second = input.get(1).ok_or(ParseFail::Short)?;
    if *first == 0 {
        return Err(ParseFail::ZeroByte);
    }
    if *second == 0 || *second == 1 {
        return Err(ParseFail::BadCode);
    }
    let a = input.get(2).ok_or(ParseFail::Short)?;
    table.get(*a as usize).copied().ok_or(ParseFail::BadCode)
}

pub fn poison_tolerant(m: &std::sync::Mutex<u32>) -> u32 {
    // The sanctioned lock pattern: recover the data from a poisoned
    // mutex instead of unwrapping.
    *m.lock().unwrap_or_else(|p| p.into_inner())
}

pub fn full_range_reborrow(buf: &mut [u8]) -> &mut [u8] {
    &mut buf[..]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_still_panic() {
        assert!(super::parse(&[2, 9, 4], &[0; 256]).is_err() || true);
        let v = [1, 2];
        let _ = v[1];
    }
}
