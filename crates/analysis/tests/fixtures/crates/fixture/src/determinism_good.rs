//! The deterministic twin of `determinism_bad.rs`: ordered collections,
//! no clocks, no thread identity. Pinned at exactly 0 findings.

use std::collections::BTreeMap;

pub fn scores(keys: &[u32]) -> f32 {
    // BTreeMap iterates in key order — bit-stable accumulation.
    let mut map = BTreeMap::new();
    for k in keys {
        map.insert(*k, 1.0f32);
    }
    // `Instant` in a doc string or comment is opaque: "Instant::now".
    let _note = "never call Instant::now here";
    map.values().sum::<f32>()
}

pub fn fixed_partitions(n: usize, workers: usize) -> usize {
    // Worker count arrives as an explicit parameter pinned by the
    // caller's config — never read from the live pool.
    n.div_ceil(workers.max(1))
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let t = std::time::Instant::now();
        let _ = t.elapsed();
    }
}
