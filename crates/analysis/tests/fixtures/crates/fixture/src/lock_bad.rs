//! Seeded `lock-discipline` violations (file pinned by the twin test's
//! policy). Exactly 5.

pub struct Store {
    inner: std::sync::Mutex<Inner>,
    aux: std::sync::Mutex<u32>,
}

pub struct Inner {
    free: usize,
}

impl Store {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn send_under_lock(&self, tx: &std::sync::mpsc::Sender<usize>) {
        let inner = self.lock();
        let _ = tx.send(inner.free); // 1: channel send under guard
    }

    pub fn recv_under_lock(&self, rx: &std::sync::mpsc::Receiver<usize>) -> usize {
        let mut inner = self.lock();
        let extra = rx.recv().unwrap_or(0); // 2: channel receive under guard
        inner.free += extra;
        inner.free
    }

    pub fn double_lock(&self) -> usize {
        let inner = self.lock();
        let aux = self.aux.lock().unwrap_or_else(|p| p.into_inner()); // 3: second lock under guard
        inner.free + *aux as usize
    }

    pub fn file_io_under_lock(&self, path: &str) {
        let inner = self.lock();
        let _ = std::fs::write(path, format!("{}", inner.free)); // 4: file I/O under guard
    }

    pub fn try_send_under_lock(&self, tx: &std::sync::mpsc::SyncSender<usize>) {
        let inner = self.lock();
        let _ = tx.try_send(inner.free); // 5: try_send under guard
    }
}
