//! Seeded `determinism` violations (file pinned by the twin test's
//! policy). Exactly 6.

use std::collections::HashMap; // 1: HashMap (even the import counts)

pub fn scores(keys: &[u32]) -> f32 {
    let mut map = HashMap::new(); // 2: HashMap
    for k in keys {
        map.insert(*k, 1.0f32);
    }
    let mut set = std::collections::HashSet::new(); // 3: HashSet
    set.insert(1u32);
    let started = std::time::Instant::now(); // 4: Instant::now
    let name = std::thread::current(); // 5: thread::current
    let workers = rayon::current_num_threads(); // 6: current_num_threads
    drop((started, name));
    map.values().sum::<f32>() + workers as f32
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let t = std::time::Instant::now();
        let _ = t.elapsed();
    }
}
