//! Seeded `no-panic` violations for module `fixture::no_panic_bad`
//! (covered by the twin test's policy, indexing included). Exactly 8.

pub fn parse(input: &[u8], table: &[u32]) -> u32 {
    let first = input.first().unwrap(); // 1: .unwrap()
    let second = input.get(1).expect("second byte"); // 2: .expect()
    if *first == 0 {
        panic!("zero first byte"); // 3: panic!
    }
    match second {
        0 => unreachable!("filtered above"), // 4: unreachable!
        1 => todo!("protocol v2"), // 5: todo!
        _ => {}
    }
    assert!(input.len() > 2, "need three bytes"); // 6: assert!
    let a = input[2]; // 7: slice indexing
    let b = table[a as usize]; // 8: slice indexing
    b
}

pub fn full_range_reborrow(buf: &mut [u8]) -> &mut [u8] {
    // `[..]` cannot be out of bounds: not a finding.
    &mut buf[..]
}

pub fn fallbacks_are_fine(x: Option<u32>, r: Result<u32, u32>) -> u32 {
    // Exact-identifier matching: none of these may be flagged.
    x.unwrap_or(0) + x.unwrap_or_default() + r.unwrap_or_else(|e| e)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        super::parse(&[1, 2, 3], &[0; 256]);
        Some(1).unwrap();
        let v = [1, 2];
        assert_eq!(v[0], 1);
    }
}
