//! Seeded `no-alloc` violations. Every banned construct below must be
//! caught — the twin test pins the exact count (9) and locations.
//!
//! NOTE: this file is a lint fixture, not compiled code; it is excluded
//! from the workspace analyzer run by `analysis.toml` and only ever read
//! by the engine's integration tests.

// analyze: no-alloc
pub fn kernel(scores: &[f32], out: &mut [f32]) -> usize {
    let v: Vec<f32> = Vec::new(); // 1: Vec::new
    let w = Vec::with_capacity(scores.len()); // 2: Vec::with_capacity
    let label = format!("{}", scores.len()); // 3: format!
    let owned = label.to_string(); // 4: .to_string()
    let b = Box::new(scores.len()); // 5: Box::new
    let lits = vec![1u32, 2, 3]; // 6: vec!
    let copy = scores.to_vec(); // 7: .to_vec()
    let doubled: Vec<f32> = scores.iter().map(|s| s * 2.0).collect(); // 8: .collect()
    out[0] = copy[0] + doubled[0];
    v.len() + w.len() + owned.len() + *b + lits.len()
}

// analyze: no-alloc
pub fn kernel_with_helper(x: &[f32]) -> f32 {
    helper_allocates(x)
}

fn helper_allocates(x: &[f32]) -> f32 {
    let copy = x.to_vec(); // 9: transitive, reached via helper_allocates
    copy[0]
}

pub fn unannotated_allocates_freely(x: &[f32]) -> Vec<f32> {
    // Not annotated: nothing here may be flagged.
    x.to_vec()
}
