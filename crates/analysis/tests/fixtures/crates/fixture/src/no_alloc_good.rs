//! The allocation-free twin of `no_alloc_bad.rs`: same shape, zero
//! findings. Pinned at exactly 0 so any false positive fails the suite.

// analyze: no-alloc
pub fn kernel(scores: &[f32], out: &mut [f32]) -> usize {
    // In-place accumulation into caller-provided buffers only.
    let mut acc = 0.0f32;
    for (o, s) in out.iter_mut().zip(scores) {
        acc += *s;
        *o = *s * 2.0;
    }
    // Identifier *containing* a banned name must not trip the rule.
    let to_vec_count = scores.len();
    // A banned name inside a string or comment is opaque: "call to_vec()".
    let _doc = "never call to_vec() or format! here";
    acc as usize + to_vec_count
}

// analyze: no-alloc
pub fn kernel_with_helper(x: &[f32], out: &mut [f32]) -> f32 {
    helper_in_place(x, out)
}

fn helper_in_place(x: &[f32], out: &mut [f32]) -> f32 {
    let mut acc = 0.0;
    for (o, v) in out.iter_mut().zip(x) {
        *o = *v;
        acc += *v;
    }
    acc
}

// analyze: no-alloc(begin)
pub fn hot_region_clean(x: &[f32]) -> f32 {
    x.iter().sum()
}
// analyze: no-alloc(end)

pub fn cold_path(x: &[f32]) -> Vec<f32> {
    // Outside every region: allocation is fine.
    let mut v = x.to_vec();
    v.push(0.0);
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_allocate() {
        // Even inside an annotated crate, test code is exempt.
        let v = vec![1.0f32, 2.0];
        assert_eq!(super::kernel(&v, &mut [0.0, 0.0]), 3);
    }
}
