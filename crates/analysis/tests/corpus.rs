//! Self-test over the seeded fixture corpus in `tests/fixtures/`.
//!
//! Each rule family has a bad/good twin: the bad file carries a known
//! number of seeded violations (pinned exactly, so a detection
//! regression fails loudly) and the good file exercises the same shapes
//! legally (pinned at zero, so a false-positive regression fails just
//! as loudly). CI runs this suite as part of the required `analyze`
//! job.

use million_analysis::policy::Policy;
use million_analysis::report::{Report, Rule};
use million_analysis::{analyze_sources, source_file};

/// Policy used for the fixture crate: every rule family covers both
/// twins, so the good files prove absence of false positives under the
/// same scrutiny the bad files get.
const FIXTURE_POLICY: &str = r#"
version = 1
scan = ["crates"]

[no_alloc]
ban_clone = true

[no_panic]
modules = ["fixture::no_panic_bad", "fixture::no_panic_good"]
index_modules = ["fixture::no_panic_bad", "fixture::no_panic_good"]

[determinism]
paths = [
    "crates/fixture/src/determinism_bad.rs",
    "crates/fixture/src/determinism_good.rs",
]

[lock_discipline]
paths = [
    "crates/fixture/src/lock_bad.rs",
    "crates/fixture/src/lock_good.rs",
]
guard_methods = ["lock"]
"#;

fn policy() -> Policy {
    Policy::parse(FIXTURE_POLICY).expect("fixture policy parses")
}

/// Loads one fixture file from disk as the analyzer would see it in a
/// workspace scan (relative path `crates/fixture/src/<name>.rs`).
fn fixture(name: &str) -> million_analysis::SourceFile {
    let rel = format!("crates/fixture/src/{name}.rs");
    let disk = format!("{}/tests/fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    let text =
        std::fs::read_to_string(&disk).unwrap_or_else(|e| panic!("read fixture {disk}: {e}"));
    source_file(&rel, text)
}

fn run(names: &[&str]) -> Report {
    analyze_sources(names.iter().map(|n| fixture(n)).collect(), &policy())
}

/// Asserts the report contains exactly `expected` findings, all of
/// them for `rule`.
fn assert_pinned(report: &Report, rule: Rule, expected: usize) {
    for f in &report.findings {
        assert_eq!(
            f.rule,
            rule,
            "unexpected {} finding in a {} fixture: {} (line {})",
            f.rule.name(),
            rule.name(),
            f.message,
            f.line
        );
    }
    assert_eq!(
        report.findings.len(),
        expected,
        "pinned count mismatch for {}: {:#?}",
        rule.name(),
        report
            .findings
            .iter()
            .map(|f| format!("{}:{} {}", f.file, f.line, f.message))
            .collect::<Vec<_>>()
    );
}

#[test]
fn no_alloc_bad_seeds_all_caught() {
    let report = run(&["no_alloc_bad"]);
    assert_pinned(&report, Rule::NoAlloc, 9);
    // One of the nine must be the transitive hit through the helper,
    // with the call chain named in the message.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.message.contains("helper_allocates")),
        "transitive finding through helper_allocates is missing"
    );
    // The unannotated function allocates freely: no finding may point
    // past the helper's body.
    assert!(
        report.findings.iter().all(|f| f.line <= 30),
        "a finding leaked into unannotated code"
    );
}

#[test]
fn no_alloc_good_twin_is_clean() {
    let report = run(&["no_alloc_good"]);
    assert_pinned(&report, Rule::NoAlloc, 0);
    // Two annotated fns plus one begin/end region.
    assert_eq!(report.no_alloc_regions, 3, "region count drifted");
}

#[test]
fn no_alloc_twins_coexist_in_one_run() {
    // Both twins define `kernel` / `kernel_with_helper`. Duplicate
    // names are ambiguous for transitive traversal (never followed),
    // but direct region scanning is per-scope, so the seeded direct
    // findings must all survive a combined run.
    let report = run(&["no_alloc_bad", "no_alloc_good"]);
    assert_pinned(&report, Rule::NoAlloc, 9);
    assert_eq!(report.no_alloc_regions, 5);
}

#[test]
fn no_panic_bad_seeds_all_caught() {
    let report = run(&["no_panic_bad"]);
    assert_pinned(&report, Rule::NoPanic, 8);
    // Two of the eight are the slice-indexing seeds.
    let indexing = report
        .findings
        .iter()
        .filter(|f| f.message.contains("index"))
        .count();
    assert_eq!(indexing, 2, "slice-indexing seeds miscounted");
}

#[test]
fn no_panic_good_twin_is_clean() {
    let report = run(&["no_panic_good"]);
    assert_pinned(&report, Rule::NoPanic, 0);
}

#[test]
fn determinism_bad_seeds_all_caught() {
    let report = run(&["determinism_bad"]);
    assert_pinned(&report, Rule::Determinism, 6);
}

#[test]
fn determinism_good_twin_is_clean() {
    let report = run(&["determinism_good"]);
    assert_pinned(&report, Rule::Determinism, 0);
}

#[test]
fn lock_bad_seeds_all_caught() {
    let report = run(&["lock_bad"]);
    assert_pinned(&report, Rule::LockDiscipline, 5);
}

#[test]
fn lock_good_twin_is_clean() {
    let report = run(&["lock_good"]);
    assert_pinned(&report, Rule::LockDiscipline, 0);
}

#[test]
fn whole_corpus_totals_match() {
    // All eight files in one run, exactly as a workspace scan of the
    // fixture tree would see them: 9 + 8 + 6 + 5 seeded violations,
    // nothing suppressed, nothing stale.
    let report = run(&[
        "no_alloc_bad",
        "no_alloc_good",
        "no_panic_bad",
        "no_panic_good",
        "determinism_bad",
        "determinism_good",
        "lock_bad",
        "lock_good",
    ]);
    assert_eq!(report.findings.len(), 28);
    assert_eq!(report.count(Rule::NoAlloc), 9);
    assert_eq!(report.count(Rule::NoPanic), 8);
    assert_eq!(report.count(Rule::Determinism), 6);
    assert_eq!(report.count(Rule::LockDiscipline), 5);
    assert!(report.suppressed.is_empty());
    assert!(report.stale_allows.is_empty());
    assert_eq!(report.files, 8);
}
