//! Socket tests for the telemetry surface: Prometheus exposition on
//! `GET /metrics`, the content-negotiated JSON document, and the
//! `/debug/requests` + `/debug/trace` endpoints.
//!
//! The reconciliation test is *stepped*: shards are paused, a known set
//! of requests is submitted across QoS classes, and the scrape is taken
//! only after every request retired — so histogram `_count`s, per-class
//! token counters, and the fleet sums are pinned exactly against the
//! per-request [`SessionReport`]s, never approximately.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use million_serverd::{AppConfig, EngineSettings, Server, ServerControl};
use million_telemetry::{valid_metric_name, PROMETHEUS_CONTENT_TYPE};

fn tiny_config() -> AppConfig {
    AppConfig {
        engine: EngineSettings {
            model: "tiny-test".into(),
            calibration_tokens: 96,
            async_quant: false,
            ..EngineSettings::default()
        },
        ..AppConfig::default()
    }
}

fn start_server(mut config: AppConfig) -> (ServerControl, std::thread::JoinHandle<()>) {
    config.server.listen = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("server binds");
    let control = server.control();
    let join = std::thread::spawn(move || server.run().expect("accept loop"));
    (control, join)
}

struct Response {
    status: u16,
    content_type: String,
    body: String,
}

fn get(addr: SocketAddr, path: &str, accept: Option<&str>) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let accept_line = accept
        .map(|a| format!("Accept: {a}\r\n"))
        .unwrap_or_default();
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n{accept_line}\r\n").as_bytes())
        .expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_type = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.trim().eq_ignore_ascii_case("content-type"))
        .map(|(_, v)| v.trim().to_string())
        .unwrap_or_default();
    Response {
        status,
        content_type,
        body: body.to_string(),
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split("\r\n")
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    Response {
        status,
        content_type: String::new(),
        body: body.to_string(),
    }
}

fn metrics_json(addr: SocketAddr) -> serde_json::Value {
    let response = get(addr, "/metrics", Some("application/json"));
    assert_eq!(response.status, 200);
    serde_json::from_str(&response.body).expect("metrics JSON")
}

/// Polls the JSON metrics document until `check` passes.
fn wait_for(
    addr: SocketAddr,
    timeout: Duration,
    check: impl Fn(&serde_json::Value) -> bool,
) -> serde_json::Value {
    let start = Instant::now();
    loop {
        let doc = metrics_json(addr);
        if check(&doc) {
            return doc;
        }
        assert!(start.elapsed() < timeout, "timed out waiting: {doc:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn total(doc: &serde_json::Value, key: &str) -> f64 {
    doc.get("totals")
        .and_then(|t| t.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or(-1.0)
}

/// Exact sample lookup: the value of the line starting
/// `name{labels} ` in the scrape body.
fn sample(body: &str, series: &str) -> f64 {
    let prefix = format!("{series} ");
    body.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("sample `{series}` missing from scrape"))
        .parse()
        .unwrap_or_else(|e| panic!("sample `{series}` not numeric: {e}"))
}

/// Lints the whole scrape body against the text-exposition contract:
/// every sample belongs to a `# TYPE`d metric, every name matches the
/// metric-name grammar, no value uses scientific notation, every bucket
/// series is cumulative, and `le="+Inf"` equals the series `_count`.
fn lint_exposition(body: &str) {
    let mut typed: HashMap<&str, &str> = HashMap::new();
    for line in body.lines().filter(|l| l.starts_with("# TYPE ")) {
        let mut parts = line["# TYPE ".len()..].split(' ');
        let name = parts.next().expect("TYPE name");
        let kind = parts.next().expect("TYPE kind");
        assert!(valid_metric_name(name), "bad metric name {name:?}");
        assert!(
            matches!(kind, "counter" | "gauge" | "histogram"),
            "unknown kind {kind:?} for {name}"
        );
        assert!(
            typed.insert(name, kind).is_none(),
            "duplicate # TYPE for {name}"
        );
    }

    // series key (name + labels minus `le`) -> cumulative bucket values.
    let mut buckets: HashMap<String, Vec<f64>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    for line in body.lines().filter(|l| !l.starts_with('#')) {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        let (series, value) = line.rsplit_once(' ').expect("sample line shape");
        assert!(
            !value.contains(['e', 'E']),
            "scientific notation in {line:?}"
        );
        let value: f64 = value.parse().unwrap_or_else(|e| panic!("{line:?}: {e}"));
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}').expect("closing brace")),
            None => (series, ""),
        };
        assert!(valid_metric_name(name), "bad sample name {name:?}");
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                name.strip_suffix(suffix)
                    .filter(|b| typed.get(b) == Some(&"histogram"))
            })
            .unwrap_or(name);
        assert!(typed.contains_key(base), "sample {name} has no # TYPE");

        if let Some(hist) = name.strip_suffix("_bucket") {
            let (rest, le) = labels
                .rsplit_once("le=\"")
                .map(|(rest, le)| (rest.trim_end_matches(','), le.trim_end_matches('"')))
                .expect("bucket has le label");
            buckets
                .entry(format!("{hist}{{{rest}}}"))
                .or_default()
                .push(value);
            if le == "+Inf" {
                // +Inf must be the last bucket; checked against _count below.
                assert_eq!(
                    buckets[&format!("{hist}{{{rest}}}")].last(),
                    Some(&value),
                    "+Inf not last for {hist}{{{rest}}}"
                );
            }
        } else if let Some(hist) = name.strip_suffix("_count") {
            if typed.get(hist) == Some(&"histogram") {
                counts.insert(format!("{hist}{{{labels}}}"), value);
            }
        }
    }

    assert!(!buckets.is_empty(), "no histogram series in scrape");
    for (series, cumulative) in &buckets {
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1]),
            "non-cumulative buckets for {series}: {cumulative:?}"
        );
        let count = counts
            .get(series)
            .unwrap_or_else(|| panic!("no _count for {series}"));
        assert_eq!(
            cumulative.last(),
            Some(count),
            "+Inf bucket != _count for {series}"
        );
    }
}

/// One generation driven to completion over HTTP, returning the `done`
/// report.
fn generate(addr: SocketAddr, prompt: &[u32], max_tokens: usize, class: &str) -> serde_json::Value {
    let items: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    let body = format!(
        "{{\"prompt\": [{}], \"max_new_tokens\": {max_tokens}, \"class\": \"{class}\", \"stream\": false}}",
        items.join(", ")
    );
    let response = post(addr, "/v1/generate", &body);
    assert_eq!(response.status, 200, "{}", response.body);
    serde_json::from_str(&response.body).expect("done frame JSON")
}

fn report_ns(done: &serde_json::Value, field: &str) -> u64 {
    done.get("report")
        .and_then(|r| r.get(field))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("report field {field}: {done:?}")) as u64
}

/// The tentpole acceptance test: a stepped run whose Prometheus scrape
/// reconciles *exactly* with the per-request reports.
#[test]
fn prometheus_scrape_reconciles_with_session_reports() {
    let (control, join) = start_server(tiny_config());
    let addr = control.addr();
    control.router().shard(0).pause(true);
    control.router().shard(1).pause(true);

    // Known workload: (prompt, max_tokens, class). Tiny-test decodes
    // greedily and never hits a stop token, so token counts are exact.
    let workload: [(&[u32], usize, &str); 4] = [
        (&[3, 9, 27, 81, 11], 6, "interactive"),
        (&[5, 10, 20, 40], 4, "interactive"),
        (&[7, 14, 28, 56, 112], 5, "standard"),
        (&[2, 4, 8, 16, 32, 64], 3, "background"),
    ];
    let clients: Vec<_> = workload
        .iter()
        .map(|&(prompt, max_tokens, class)| {
            let prompt = prompt.to_vec();
            let class = class.to_string();
            std::thread::spawn(move || generate(addr, &prompt, max_tokens, &class))
        })
        .collect();

    // All four queue on the paused shards; then release and let the
    // fleet run them to completion.
    wait_for(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 4.0
    });
    control.router().shard(0).pause(false);
    control.router().shard(1).pause(false);
    let reports: Vec<serde_json::Value> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let doc = wait_for(addr, Duration::from_secs(10), |doc| {
        total(doc, "completed") == 4.0
    });

    // --- Prometheus scrape: default content type, linted, pinned. ---
    let scrape = get(addr, "/metrics", None);
    assert_eq!(scrape.status, 200);
    assert_eq!(scrape.content_type, PROMETHEUS_CONTENT_TYPE);
    lint_exposition(&scrape.body);
    let body = &scrape.body;

    // Lifecycle counters match the workload exactly.
    assert_eq!(
        sample(body, "million_requests_submitted_total{shard=\"fleet\"}"),
        4.0
    );
    assert_eq!(
        sample(body, "million_requests_completed_total{shard=\"fleet\"}"),
        4.0
    );
    assert_eq!(
        sample(body, "million_requests_cancelled_total{shard=\"fleet\"}"),
        0.0
    );

    // Supervision series: a healthy fleet reads live (0) on the state
    // gauge with zero restarts, and without a checkpoint directory no
    // snapshot write (or CRC failure) can have happened.
    for shard in ["0", "1"] {
        assert_eq!(
            sample(body, &format!("million_shard_state{{shard=\"{shard}\"}}")),
            0.0,
            "shard {shard} is live"
        );
        assert_eq!(
            sample(
                body,
                &format!("million_shard_restarts_total{{shard=\"{shard}\"}}")
            ),
            0.0
        );
    }
    assert_eq!(
        sample(body, "million_shard_restarts_total{shard=\"fleet\"}"),
        0.0
    );
    assert_eq!(
        sample(body, "million_snapshot_writes_total{shard=\"fleet\"}"),
        0.0
    );
    assert_eq!(
        sample(body, "million_snapshot_crc_failures_total{shard=\"fleet\"}"),
        0.0
    );

    // One TTFT, queue-wait, and end-to-end observation per retired
    // request — histogram totals reconcile with the report count.
    for hist in [
        "million_ttft_seconds",
        "million_queue_wait_seconds",
        "million_request_duration_seconds",
    ] {
        assert_eq!(
            sample(body, &format!("{hist}_count{{shard=\"fleet\"}}")),
            4.0,
            "{hist} records once per request"
        );
    }
    // Inter-token gaps: every decode token after a request's first.
    let tokens: usize = workload.iter().map(|w| w.1).sum();
    assert_eq!(
        sample(body, "million_inter_token_seconds_count{shard=\"fleet\"}"),
        (tokens - workload.len()) as f64
    );

    // The scrape's TTFT and queue-wait sums are the *same measurements*
    // the reports carry, in seconds.
    let ttft_ns: u64 = reports.iter().map(|r| report_ns(r, "first_token_ns")).sum();
    let wait_ns: u64 = reports.iter().map(|r| report_ns(r, "queue_wait_ns")).sum();
    let ttft_sum = sample(body, "million_ttft_seconds_sum{shard=\"fleet\"}");
    let wait_sum = sample(body, "million_queue_wait_seconds_sum{shard=\"fleet\"}");
    assert!(
        (ttft_sum - ttft_ns as f64 * 1e-9).abs() < 1e-9,
        "ttft sum {ttft_sum} != report sum {ttft_ns} ns"
    );
    assert!(
        (wait_sum - wait_ns as f64 * 1e-9).abs() < 1e-9,
        "queue-wait sum {wait_sum} != report sum {wait_ns} ns"
    );
    for report in &reports {
        assert!(report_ns(report, "decode_ns") > 0, "decode time measured");
    }

    // Per-class token counters are untouched by the telemetry layer:
    // they still sum to exactly the requested generation lengths.
    let class_tokens = |class: &str| -> f64 {
        sample(
            body,
            &format!("million_tokens_total{{shard=\"fleet\",class=\"{class}\"}}"),
        )
    };
    assert_eq!(class_tokens("interactive"), 10.0);
    assert_eq!(class_tokens("standard"), 5.0);
    assert_eq!(class_tokens("background"), 3.0);
    let class_prefill = |class: &str| -> f64 {
        sample(
            body,
            &format!("million_prefill_tokens_total{{shard=\"fleet\",class=\"{class}\"}}"),
        )
    };
    assert_eq!(class_prefill("interactive"), 9.0);
    assert_eq!(class_prefill("standard"), 5.0);
    assert_eq!(class_prefill("background"), 6.0);

    // Every serve_round times all four phases: each phase histogram has
    // exactly one observation per round, fleet-wide.
    let rounds = sample(body, "million_rounds_total{shard=\"fleet\"}");
    for phase in ["retire", "admit", "prefill_chunk", "decode"] {
        assert_eq!(
            sample(
                body,
                &format!("million_round_phase_seconds_count{{shard=\"fleet\",phase=\"{phase}\"}}")
            ),
            rounds,
            "phase {phase} laps once per round"
        );
    }

    // --- The JSON document stays available under content negotiation
    // and carries the same fleet-merged telemetry. ---
    assert_eq!(total(&doc, "submitted"), 4.0);
    let fleet_ttft = doc
        .get("telemetry")
        .and_then(|t| t.get("ttft"))
        .expect("fleet telemetry in JSON metrics");
    assert_eq!(
        fleet_ttft.get("count").and_then(|v| v.as_f64()),
        Some(4.0),
        "JSON fleet histogram matches: {fleet_ttft:?}"
    );
    assert_eq!(
        fleet_ttft.get("sum_ns").and_then(|v| v.as_f64()),
        Some(ttft_ns as f64)
    );

    // The JSON document's health rows reconcile with the Prometheus
    // supervision series: one row per shard, live, zero restarts.
    let health = doc
        .get("health")
        .and_then(|h| h.as_array())
        .expect("health rows in JSON metrics");
    assert_eq!(health.len(), 2);
    for (shard, row) in health.iter().enumerate() {
        assert_eq!(
            row.get("shard").and_then(|v| v.as_f64()),
            Some(shard as f64)
        );
        assert_eq!(row.get("state").and_then(|v| v.as_str()), Some("live"));
        assert_eq!(row.get("restarts").and_then(|v| v.as_f64()), Some(0.0));
    }

    control.shutdown();
    join.join().unwrap();
}

/// Both scrape flavors stay well-formed while the fleet is generating
/// and being scraped from several threads at once.
#[test]
fn concurrent_scrapes_under_load_stay_well_formed() {
    let (control, join) = start_server(tiny_config());
    let addr = control.addr();

    let generators: Vec<_> = (0..4u32)
        .map(|i| {
            std::thread::spawn(move || {
                let prompt: Vec<u32> = (0..8).map(|j| (i * 31 + j * 7 + 1) % 128).collect();
                generate(addr, &prompt, 12, "standard")
            })
        })
        .collect();

    let scrapers: Vec<_> = (0..3)
        .map(|worker| {
            std::thread::spawn(move || {
                for iteration in 0..10 {
                    if (worker + iteration) % 2 == 0 {
                        let response = get(addr, "/metrics", None);
                        assert_eq!(response.status, 200);
                        assert_eq!(response.content_type, PROMETHEUS_CONTENT_TYPE);
                        lint_exposition(&response.body);
                    } else {
                        let doc = metrics_json(addr);
                        assert!(total(&doc, "submitted") >= 0.0);
                        assert!(doc.get("telemetry").is_some());
                    }
                }
            })
        })
        .collect();

    for generator in generators {
        let done = generator.join().unwrap();
        assert_eq!(
            done.get("tokens")
                .and_then(|t| t.as_array())
                .map(<[_]>::len),
            Some(12)
        );
    }
    for scraper in scrapers {
        scraper.join().unwrap();
    }

    control.shutdown();
    join.join().unwrap();
}

/// `/debug/requests` shows live rows for a queued request on a paused
/// shard, and `/debug/trace` drains the journals as Chrome trace JSON.
#[test]
fn debug_endpoints_expose_live_table_and_trace() {
    let (control, join) = start_server(tiny_config());
    let addr = control.addr();
    control.router().shard(0).pause(true);
    control.router().shard(1).pause(true);

    let client = std::thread::spawn(move || generate(addr, &[9, 8, 7, 6, 5], 3, "interactive"));
    wait_for(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 1.0
    });

    // The queued request appears in exactly one shard's table.
    let table = get(addr, "/debug/requests", None);
    assert_eq!(table.status, 200);
    let table_doc = serde_json::from_str(&table.body).expect("table JSON");
    let shards = table_doc.as_array().expect("per-shard table list");
    assert_eq!(shards.len(), 2);
    let rows: Vec<&serde_json::Value> = shards
        .iter()
        .flat_map(|s| s.get("requests").and_then(|r| r.as_array()).unwrap())
        .collect();
    assert_eq!(rows.len(), 1, "one live request: {shards:?}");
    assert_eq!(
        rows[0].get("state").and_then(|s| s.as_str()),
        Some("Queued")
    );
    assert_eq!(
        rows[0].get("class").and_then(|c| c.as_str()),
        Some("Interactive")
    );
    assert_eq!(
        rows[0].get("prompt_tokens").and_then(|p| p.as_f64()),
        Some(5.0)
    );

    // Run to completion, then drain the trace: a valid Chrome trace
    // document whose events cover the request's whole lifecycle.
    control.router().shard(0).pause(false);
    control.router().shard(1).pause(false);
    let done = client.join().unwrap();
    assert_eq!(
        done.get("tokens")
            .and_then(|t| t.as_array())
            .map(<[_]>::len),
        Some(3)
    );

    let trace = get(addr, "/debug/trace", None);
    assert_eq!(trace.status, 200);
    let doc: serde_json::Value = serde_json::from_str(&trace.body).expect("trace JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    for expected in ["submit", "admit", "first_token", "retire"] {
        assert!(
            names.iter().any(|n| n.starts_with(expected)),
            "trace carries `{expected}`: {names:?}"
        );
    }

    // Draining is destructive: a second scrape starts empty.
    let again = get(addr, "/debug/trace", None);
    let doc: serde_json::Value = serde_json::from_str(&again.body).expect("trace JSON");
    assert_eq!(
        doc.get("traceEvents")
            .and_then(|e| e.as_array())
            .map(<[_]>::len),
        Some(0),
        "journal drained by the first scrape"
    );

    control.shutdown();
    join.join().unwrap();
}
