//! Seeded chaos tests: a real `serverd` on loopback with a deterministic
//! [`FaultPlan`] injected through the same `fault.plan` / `fault.seed`
//! configuration keys the `SERVERD_FAULT_PLAN` / `SERVERD_FAULT_SEED`
//! environment knobs drive in production.
//!
//! Three fault shapes, matching the CI chaos matrix:
//!
//! 1. **Shard panic mid-stream** — the affected client gets a typed SSE
//!    `error` frame, the supervisor restarts the shard (visible as
//!    `million_shard_restarts_total` = 1), the checkpointed session is
//!    re-admitted and its remaining tokens are bit-identical to an
//!    uninterrupted run, and requests on the other shard are unaffected.
//!    The whole scenario is run twice with the same seed and the two
//!    transcripts must be equal.
//! 2. **Snapshot I/O error** — an injected failure on the Kth checkpoint
//!    write is non-fatal: the stream completes bit-identically and
//!    exactly one durable write is missing relative to a fault-free run.
//! 3. **Dead-shard spill storm** — a shard that exhausts its restart
//!    budget goes permanently `failed`; traffic homed to it spills to the
//!    survivor and completes, and the failed state stays visible on both
//!    metrics surfaces.
//!
//! Re-seed the suite without code changes via `SERVERD_FAULT_SEED=<n>`.
//!
//! [`FaultPlan`]: million::FaultPlan

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use million::{GenerationOptions, RequestHandle, RequestId, TokenWait};
use million_serverd::{build_engine, AppConfig, EngineSettings, Server, ServerControl};

fn tiny_engine_settings() -> EngineSettings {
    EngineSettings {
        model: "tiny-test".into(),
        calibration_tokens: 96,
        async_quant: false,
        ..EngineSettings::default()
    }
}

/// The chaos seed: `SERVERD_FAULT_SEED` when set (the CI matrix knob),
/// otherwise a fixed default.
fn fault_seed() -> u64 {
    // Test-matrix knob, not runtime configuration: reading it directly
    // here is deliberate.
    #[allow(clippy::disallowed_methods)]
    std::env::var("SERVERD_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11)
}

fn checkpoint_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serverd_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(mut config: AppConfig) -> (ServerControl, std::thread::JoinHandle<()>) {
    config.server.listen = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("server binds");
    let control = server.control();
    let join = std::thread::spawn(move || server.run().expect("accept loop"));
    (control, join)
}

/// Greedy tokens from a fresh, identically-configured engine run directly
/// — the reference any (possibly interrupted) HTTP run must reconstruct.
fn expected_tokens(settings: &EngineSettings, prompt: &[u32], max_tokens: usize) -> Vec<u32> {
    let engine = build_engine(settings).expect("reference engine");
    let mut session = engine.session();
    session.prefill(prompt);
    session
        .generate(&GenerationOptions::max_tokens(max_tokens))
        .tokens
}

/// First prompt of the candidate family `base` that the router homes on
/// `shard` — placement is pure hashing, so this is deterministic.
fn prompt_homed_on(control: &ServerControl, shard: usize, base: u32) -> Vec<u32> {
    for salt in 0..256u32 {
        let x = (base + salt * 13) % 120 + 1;
        let prompt = vec![x, (x + 7) % 128, (x + 19) % 128, (x + 41) % 128];
        if control.router().place(&prompt) == shard {
            return prompt;
        }
    }
    panic!("no candidate prompt homes on shard {shard}");
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let status: u16 = head
        .split("\r\n")
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str, accept: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\nAccept: {accept}\r\n\r\n").as_bytes())
        .expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (_, body) = text.split_once("\r\n\r\n").expect("response head");
    (200, body.to_string())
}

fn generate_body(prompt: &[u32], max_tokens: usize, stream: bool) -> String {
    let items: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\"prompt\": [{}], \"max_new_tokens\": {max_tokens}, \"stream\": {stream}}}",
        items.join(", ")
    )
}

/// A parsed SSE transcript that — unlike the smoke suite's parser — also
/// understands the terminal `error` frame a crashed shard produces.
#[derive(Debug, PartialEq)]
struct SseTranscript {
    tokens: Vec<u32>,
    request: u64,
    shard: usize,
    done: bool,
    error_code: Option<String>,
}

fn sse_generate(addr: SocketAddr, body: &str) -> SseTranscript {
    let (status, transcript) = post(addr, "/v1/generate", body);
    assert_eq!(status, 200, "SSE stream starts: {transcript}");
    let mut out = SseTranscript {
        tokens: Vec::new(),
        request: u64::MAX,
        shard: usize::MAX,
        done: false,
        error_code: None,
    };
    let mut event = "";
    for line in transcript.lines() {
        if let Some(name) = line.strip_prefix("event: ") {
            event = match name {
                "token" => "token",
                "done" => "done",
                "error" => "error",
                _ => "",
            };
        } else if let Some(data) = line.strip_prefix("data: ") {
            let value: serde_json::Value = serde_json::from_str(data).expect("frame is JSON");
            let field = |k: &str| value.get(k).and_then(|v| v.as_f64());
            match event {
                "token" => {
                    let token = value
                        .get("step")
                        .and_then(|s| s.get("token"))
                        .and_then(|t| t.as_f64())
                        .expect("token frame has step.token");
                    out.tokens.push(token as u32);
                    out.request = field("request").expect("request id") as u64;
                    out.shard = field("shard").expect("shard") as usize;
                }
                "done" => {
                    out.done = true;
                    out.shard = field("shard").expect("shard") as usize;
                }
                "error" => {
                    out.request = field("request").expect("request id") as u64;
                    out.shard = field("shard").expect("shard") as usize;
                    out.error_code = value
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(|c| c.as_str())
                        .map(str::to_string);
                }
                _ => {}
            }
        }
    }
    out
}

/// Drains a [`RequestHandle`] to completion.
fn drain_handle(handle: &RequestHandle) -> Vec<u32> {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut tokens = Vec::new();
    loop {
        match handle.recv_token(Duration::from_millis(20)) {
            TokenWait::Token(step) => tokens.push(step.token),
            TokenWait::Idle => assert!(Instant::now() < deadline, "stream stalls"),
            TokenWait::Closed => return tokens,
        }
    }
}

/// Polls the JSON `/metrics` document until `check` passes.
fn wait_for_metrics(
    addr: SocketAddr,
    timeout: Duration,
    check: impl Fn(&serde_json::Value) -> bool,
) -> (bool, serde_json::Value) {
    let start = Instant::now();
    loop {
        let (_, body) = get(addr, "/metrics", "application/json");
        let doc = serde_json::from_str(&body).expect("metrics JSON");
        if check(&doc) {
            return (true, doc);
        }
        if start.elapsed() > timeout {
            return (false, doc);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn health_state(doc: &serde_json::Value, shard: usize) -> String {
    doc.get("health")
        .and_then(|h| h.as_array())
        .and_then(|h| h.get(shard))
        .and_then(|h| h.get("state"))
        .and_then(|s| s.as_str())
        .unwrap_or("")
        .to_string()
}

fn health_restarts(doc: &serde_json::Value, shard: usize) -> f64 {
    doc.get("health")
        .and_then(|h| h.as_array())
        .and_then(|h| h.get(shard))
        .and_then(|h| h.get("restarts"))
        .and_then(|r| r.as_f64())
        .unwrap_or(-1.0)
}

fn shard_stat(doc: &serde_json::Value, shard: usize, key: &str) -> f64 {
    doc.get("shards")
        .and_then(|s| s.as_array())
        .into_iter()
        .flatten()
        .find(|s| s.get("shard").and_then(|v| v.as_f64()) == Some(shard as f64))
        .and_then(|s| s.get("stats"))
        .and_then(|s| s.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or(-1.0)
}

/// Everything observable about one panic-recovery scenario; two runs of
/// the same seed must produce equal values.
#[derive(Debug, PartialEq)]
struct PanicOutcome {
    streamed: Vec<u32>,
    error_code: Option<String>,
    restarts: u64,
    recovered_tokens: usize,
    full: Vec<u32>,
    bystander: Vec<u32>,
    bystander_shard: usize,
}

fn run_panic_scenario(seed: u64, tag: &str) -> PanicOutcome {
    let dir = checkpoint_dir(tag);
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.fault.plan = "panic@shard=0,round=4".into();
    config.fault.seed = seed;
    config.server.checkpoint_dir = dir.to_string_lossy().into_owned();
    config.server.restart_backoff_ms = 10;
    config.serving.checkpoint_every_rounds = 1;
    let engine_settings = config.engine.clone();
    let (control, join) = start_server(config);
    let addr = control.addr();

    let victim_prompt = prompt_homed_on(&control, 0, 3);
    let baseline = expected_tokens(&engine_settings, &victim_prompt, 8);
    assert_eq!(baseline.len(), 8);

    // (a) The victim's stream dies after two decode rounds with a typed
    // SSE error frame, never a bogus done frame.
    let victim = sse_generate(addr, &generate_body(&victim_prompt, 8, true));
    assert_eq!(victim.shard, 0, "victim homed on the faulted shard");
    assert!(!victim.done, "no done frame from a crashed shard");
    assert_eq!(victim.error_code.as_deref(), Some("shard_failed"));
    assert_eq!(
        victim.tokens,
        baseline[..victim.tokens.len()],
        "pre-crash stream is a prefix of the uninterrupted run"
    );

    // (b) The supervisor restarts the shard: restarts hits 1 and the
    // state returns to live on both metrics surfaces.
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(10), |doc| {
        health_state(doc, 0) == "live" && health_restarts(doc, 0) == 1.0
    });
    assert!(ok, "shard 0 restarts and comes back live: {doc:?}");
    let (_, prom) = get(addr, "/metrics", "text/plain");
    assert!(
        prom.contains("million_shard_restarts_total{shard=\"0\"} 1"),
        "restart counter exported: {prom}"
    );
    assert!(
        prom.contains("million_shard_state{shard=\"0\"} 0"),
        "state gauge back to live: {prom}"
    );

    // (c) The checkpointed session was re-admitted on the reborn shard;
    // its remaining tokens reconstruct the uninterrupted run bit for bit.
    let recovered = control
        .router()
        .shard(0)
        .claim_recovered(RequestId::from_u64(victim.request))
        .expect("checkpointed session re-admitted after restart");
    let continued = drain_handle(&recovered);
    let overlap = victim.tokens.len() - recovered.recovered_tokens();
    let mut full = victim.tokens.clone();
    full.extend(&continued[overlap..]);
    assert_eq!(full, baseline, "recovery is bit-identical");
    let report = recovered.report().expect("recovered session completes");
    assert_eq!(report.tokens, baseline);

    // (d) The other shard is untouched by the crash: zero restarts, and a
    // request homed there completes normally.
    let bystander_prompt = prompt_homed_on(&control, 1, 5);
    let bystander_baseline = expected_tokens(&engine_settings, &bystander_prompt, 6);
    let bystander = sse_generate(addr, &generate_body(&bystander_prompt, 6, true));
    assert_eq!(bystander.shard, 1);
    assert!(bystander.done, "bystander stream completes");
    assert_eq!(bystander.error_code, None);
    assert_eq!(bystander.tokens, bystander_baseline);
    let (_, doc) = wait_for_metrics(addr, Duration::from_secs(1), |_| true);
    assert_eq!(health_restarts(&doc, 1), 0.0);

    control.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    PanicOutcome {
        streamed: victim.tokens,
        error_code: victim.error_code,
        restarts: 1,
        recovered_tokens: recovered.recovered_tokens(),
        full,
        bystander: bystander.tokens,
        bystander_shard: bystander.shard,
    }
}

#[test]
fn seeded_shard_panic_recovers_bit_identically_and_deterministically() {
    let seed = fault_seed();
    let first = run_panic_scenario(seed, "panic_a");
    let second = run_panic_scenario(seed, "panic_b");
    assert_eq!(
        first, second,
        "two runs of the same seeded FaultPlan must be indistinguishable"
    );
}

/// One checkpoint write fails with an injected I/O error; the stream is
/// oblivious and exactly one durable write goes missing relative to a
/// fault-free run of the same request.
#[test]
fn injected_snapshot_io_error_is_nonfatal_and_counted() {
    let run = |plan: &str, tag: &str| -> (Vec<u32>, f64) {
        let dir = checkpoint_dir(tag);
        let mut config = AppConfig {
            engine: tiny_engine_settings(),
            ..AppConfig::default()
        };
        config.server.shards = 1;
        config.fault.plan = plan.into();
        config.fault.seed = fault_seed();
        config.server.checkpoint_dir = dir.to_string_lossy().into_owned();
        config.serving.checkpoint_every_rounds = 1;
        let engine_settings = config.engine.clone();
        let (control, join) = start_server(config);
        let addr = control.addr();

        let prompt = vec![5u32, 10, 20, 40];
        let baseline = expected_tokens(&engine_settings, &prompt, 6);
        let outcome = sse_generate(addr, &generate_body(&prompt, 6, true));
        assert!(outcome.done, "stream completes despite the fault");
        assert_eq!(outcome.tokens, baseline, "tokens are unaffected");

        let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
            shard_stat(doc, 0, "completed") == 1.0
        });
        assert!(ok, "request retires: {doc:?}");
        let writes = shard_stat(&doc, 0, "snapshot_writes");
        control.shutdown();
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        (outcome.tokens, writes)
    };

    let (clean_tokens, clean_writes) = run("", "io_clean");
    let (faulted_tokens, faulted_writes) = run("snapshot_io@write=2", "io_fault");
    assert_eq!(faulted_tokens, clean_tokens);
    assert!(clean_writes >= 1.0, "checkpointing ran: {clean_writes}");
    assert_eq!(
        faulted_writes,
        clean_writes - 1.0,
        "exactly the injected write is missing"
    );

    // The Prometheus surface carries the same counter.
    let dir = checkpoint_dir("io_prom");
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.server.shards = 1;
    config.server.checkpoint_dir = dir.to_string_lossy().into_owned();
    config.serving.checkpoint_every_rounds = 1;
    let (control, join) = start_server(config);
    let addr = control.addr();
    let outcome = sse_generate(addr, &generate_body(&[5, 10, 20, 40], 6, true));
    assert!(outcome.done);
    let (_, prom) = get(addr, "/metrics", "text/plain");
    assert!(
        prom.contains("# TYPE million_snapshot_writes_total counter"),
        "snapshot write counter exported: {prom}"
    );
    control.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard that exhausts its restart budget goes permanently failed; the
/// storm of traffic homed to it spills to the survivor and completes.
#[test]
fn dead_shard_spill_storm_lands_on_the_survivor() {
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.fault.plan = "panic@shard=0,round=2".into();
    config.fault.seed = fault_seed();
    config.server.max_shard_restarts = 0;
    config.server.restart_backoff_ms = 1;
    let engine_settings = config.engine.clone();
    let (control, join) = start_server(config);
    let addr = control.addr();

    // The trigger request crashes shard 0 on its first decode round and
    // gets the typed error frame.
    let victim_prompt = prompt_homed_on(&control, 0, 3);
    let victim = sse_generate(addr, &generate_body(&victim_prompt, 4, true));
    assert_eq!(victim.shard, 0);
    assert_eq!(victim.error_code.as_deref(), Some("shard_failed"));

    // Budget 0: the shard never comes back.
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(10), |doc| {
        health_state(doc, 0) == "failed"
    });
    assert!(ok, "shard 0 permanently failed: {doc:?}");

    // The storm: every request homed on the dead shard spills to the
    // survivor and decodes the same tokens a healthy fleet would.
    for salt in 0..4u32 {
        let prompt = prompt_homed_on(&control, 0, 20 + salt * 7);
        let baseline = expected_tokens(&engine_settings, &prompt, 4);
        let outcome = sse_generate(addr, &generate_body(&prompt, 4, true));
        assert!(outcome.done, "spilled request completes");
        assert_eq!(outcome.shard, 1, "landed on the survivor");
        assert_eq!(outcome.tokens, baseline);
    }

    // The dead shard stays visible on both metrics surfaces.
    let (_, prom) = get(addr, "/metrics", "text/plain");
    assert!(
        prom.contains("million_shard_state{shard=\"0\"} 2"),
        "failed state exported: {prom}"
    );
    assert!(
        prom.contains("million_shard_restarts_total{shard=\"0\"} 1"),
        "the crash was counted: {prom}"
    );
    let (_, doc) = wait_for_metrics(addr, Duration::from_secs(1), |_| true);
    assert_eq!(health_state(&doc, 1), "live");

    control.shutdown();
    join.join().unwrap();
}
