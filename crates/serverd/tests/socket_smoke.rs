//! End-to-end socket tests: a real `serverd` on loopback, driven by raw
//! `std::net` HTTP clients.
//!
//! Covers the acceptance path of the networked front-end: concurrent
//! SSE generations bit-identical to direct engine runs, prefix-affinity
//! placement with visible store deduplication, queue-full spill then
//! 429 load shedding, mid-stream client disconnect freeing the slot,
//! deadline timeouts over HTTP, and drain/shutdown.
//!
//! Determinism leans on the shard pause/step controls: a paused shard
//! queues submissions but decodes only when stepped, so queue depths and
//! residency are exact, never racing the decode loop.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use million::GenerationOptions;
use million_serverd::{build_engine, AppConfig, EngineSettings, Server, ServerControl};

fn tiny_engine_settings() -> EngineSettings {
    EngineSettings {
        model: "tiny-test".into(),
        calibration_tokens: 96,
        async_quant: false,
        ..EngineSettings::default()
    }
}

/// Binds a server on an ephemeral port and runs it on a background
/// thread; shutdown is via the returned control.
fn start_server(mut config: AppConfig) -> (ServerControl, std::thread::JoinHandle<()>) {
    config.server.listen = "127.0.0.1:0".into();
    let server = Server::bind(config).expect("server binds");
    let control = server.control();
    let join = std::thread::spawn(move || server.run().expect("accept loop"));
    (control, join)
}

/// Greedy tokens from a fresh, identically-configured engine run
/// directly — the reference the HTTP path must match bit for bit.
fn expected_tokens(settings: &EngineSettings, prompt: &[u32], max_tokens: usize) -> Vec<u32> {
    let engine = build_engine(settings).expect("reference engine");
    let mut session = engine.session();
    session.prefill(prompt);
    session
        .generate(&GenerationOptions::max_tokens(max_tokens))
        .tokens
}

/// A parsed HTTP response (read to EOF — every serverd response closes).
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| n.to_ascii_lowercase() == needle)
            .map(|(_, v)| v.as_str())
    }
}

fn roundtrip(addr: SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let (head, body) = text.split_once("\r\n\r\n").expect("response head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: SocketAddr, path: &str) -> Response {
    // `/metrics` content-negotiates: ask for the JSON document (the
    // bare default is Prometheus text exposition).
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nAccept: application/json\r\n\r\n"),
    )
}

fn prompt_json(prompt: &[u32]) -> String {
    let items: Vec<String> = prompt.iter().map(|t| t.to_string()).collect();
    format!("[{}]", items.join(", "))
}

/// Outcome of one SSE generation stream.
#[derive(Debug)]
struct SseOutcome {
    tokens: Vec<u32>,
    shard: usize,
    done: serde_json::Value,
}

/// Runs `POST /v1/generate` with streaming on and parses the SSE
/// transcript (token frames + terminal done frame).
fn sse_generate(addr: SocketAddr, body: &str) -> SseOutcome {
    let response = post(addr, "/v1/generate", body);
    assert_eq!(response.status, 200, "SSE stream starts: {}", response.body);
    parse_sse(&response.body)
}

fn parse_sse(transcript: &str) -> SseOutcome {
    let mut tokens = Vec::new();
    let mut shard = usize::MAX;
    let mut done = None;
    let mut event = "";
    for line in transcript.lines() {
        if let Some(name) = line.strip_prefix("event: ") {
            event = match name {
                "token" => "token",
                "done" => "done",
                _ => "",
            };
        } else if let Some(data) = line.strip_prefix("data: ") {
            let value = serde_json::from_str(data).expect("frame data is JSON");
            match event {
                "token" => {
                    let token = value
                        .get("step")
                        .and_then(|s| s.get("token"))
                        .and_then(|t| t.as_f64())
                        .expect("token frame has step.token");
                    tokens.push(token as u32);
                    shard = value.get("shard").and_then(|s| s.as_f64()).expect("shard") as usize;
                }
                "done" => {
                    shard = value.get("shard").and_then(|s| s.as_f64()).expect("shard") as usize;
                    done = Some(value);
                }
                _ => {}
            }
        }
    }
    SseOutcome {
        tokens,
        shard,
        done: done.expect("stream ends with a done frame"),
    }
}

/// Polls `/metrics` until `check` passes or the deadline expires;
/// returns the last document either way.
fn wait_for_metrics(
    addr: SocketAddr,
    timeout: Duration,
    check: impl Fn(&serde_json::Value) -> bool,
) -> (bool, serde_json::Value) {
    let start = Instant::now();
    loop {
        let response = get(addr, "/metrics");
        assert_eq!(response.status, 200);
        let doc = serde_json::from_str(&response.body).expect("metrics JSON");
        if check(&doc) {
            return (true, doc);
        }
        if start.elapsed() > timeout {
            return (false, doc);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn total(doc: &serde_json::Value, key: &str) -> f64 {
    doc.get("totals")
        .and_then(|t| t.get(key))
        .and_then(|v| v.as_f64())
        .unwrap_or(-1.0)
}

#[test]
fn concurrent_sse_clients_match_direct_engine_runs() {
    let config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    let engine_settings = config.engine.clone();
    let (control, join) = start_server(config);
    let addr = control.addr();

    let prompts: Vec<Vec<u32>> = vec![
        vec![3, 9, 27, 81, 11, 33],
        vec![5, 10, 20, 40, 80],
        vec![7, 14, 28, 56, 112, 97, 61],
        vec![2, 4, 8, 16, 32, 64],
        vec![3, 9, 27, 81, 99, 41],
        vec![1, 2, 3, 4, 5, 6, 7],
    ];
    let max_tokens = 8;

    let clients: Vec<_> = prompts
        .iter()
        .map(|prompt| {
            let body = format!(
                "{{\"prompt\": {}, \"max_new_tokens\": {max_tokens}}}",
                prompt_json(prompt)
            );
            std::thread::spawn(move || sse_generate(addr, &body))
        })
        .collect();
    let outcomes: Vec<SseOutcome> = clients.into_iter().map(|c| c.join().unwrap()).collect();

    for (prompt, outcome) in prompts.iter().zip(&outcomes) {
        let expected = expected_tokens(&engine_settings, prompt, max_tokens);
        assert_eq!(
            outcome.tokens, expected,
            "HTTP/SSE stream for {prompt:?} must be bit-identical to a direct run"
        );
        let reported: Vec<u32> = outcome
            .done
            .get("tokens")
            .and_then(|t| t.as_array())
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as u32)
            .collect();
        assert_eq!(reported, expected, "done frame repeats the full stream");
        assert!(outcome.shard < 2);
    }

    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "completed") == prompts.len() as f64
    });
    assert!(ok, "all {} requests complete: {doc:?}", prompts.len());
    assert_eq!(total(&doc, "submitted"), prompts.len() as f64);

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let config_doc = get(addr, "/config");
    assert_eq!(config_doc.status, 200);
    let parsed = serde_json::from_str(&config_doc.body).expect("config JSON");
    assert_eq!(
        parsed
            .get("engine")
            .and_then(|e| e.get("model"))
            .and_then(|m| m.as_str()),
        Some("tiny-test")
    );

    control.shutdown();
    join.join().unwrap();
}

#[test]
fn shared_prefix_clients_share_a_shard_and_deduplicate() {
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    // Align the affinity window with a small block size so a shared
    // 16-token system prompt spans two whole store blocks.
    config.engine.block_tokens = 8;
    config.server.affinity_tokens = 8;
    let (control, join) = start_server(config);
    let addr = control.addr();

    control.router().shard(0).pause(true);
    control.router().shard(1).pause(true);

    let system: Vec<u32> = (0..16).map(|i| (i * 5 + 3) % 128).collect();
    let mut prompt_a = system.clone();
    prompt_a.extend([99, 98]);
    let mut prompt_b = system.clone();
    prompt_b.extend([7, 8, 9]);

    let spawn = |prompt: Vec<u32>| {
        let body = format!(
            "{{\"prompt\": {}, \"max_new_tokens\": 6}}",
            prompt_json(&prompt)
        );
        std::thread::spawn(move || sse_generate(addr, &body))
    };
    let client_a = spawn(prompt_a);
    // Both submissions queue on the (paused) home shard.
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 1.0
    });
    assert!(ok, "first request queued: {doc:?}");
    let client_b = spawn(prompt_b);
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 2.0
    });
    assert!(ok, "second request queued: {doc:?}");

    // Exactly one round: admit both (A prefills, B attaches A's sealed
    // prefix blocks) and decode one token each.
    let shards = doc.get("shards").and_then(|s| s.as_array()).unwrap();
    let home = shards
        .iter()
        .find(|s| s.get("queued").and_then(|q| q.as_f64()) == Some(2.0))
        .and_then(|s| s.get("shard"))
        .and_then(|s| s.as_f64())
        .expect("both requests queue on one home shard") as usize;
    control.router().shard(home).step(1);

    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "resident") == 2.0
    });
    assert!(ok, "both sessions resident after the step: {doc:?}");
    let binding = doc.get("shards").and_then(|s| s.as_array()).unwrap();
    let snapshot = binding
        .iter()
        .find(|s| s.get("shard").and_then(|v| v.as_f64()) == Some(home as f64))
        .expect("home shard snapshot");
    let dedup = snapshot
        .get("dedup_ratio")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(
        dedup > 1.0,
        "shared system prompt deduplicates in the home shard's store (ratio {dedup})"
    );
    assert!(total(&doc, "max_dedup_ratio") > 1.0);

    // Finish both streams and confirm they really shared one shard.
    control.router().shard(0).pause(false);
    control.router().shard(1).pause(false);
    let outcome_a = client_a.join().unwrap();
    let outcome_b = client_b.join().unwrap();
    assert_eq!(outcome_a.shard, home);
    assert_eq!(outcome_b.shard, home, "prefix affinity co-locates the pair");
    assert_eq!(outcome_a.tokens.len(), 6);
    assert_eq!(outcome_b.tokens.len(), 6);
    let reused = outcome_b
        .done
        .get("report")
        .and_then(|r| r.get("prefix_tokens_reused"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(
        reused >= 16.0,
        "the second session reuses the shared prefix blocks (got {reused})"
    );

    control.shutdown();
    join.join().unwrap();
}

#[test]
fn queue_overflow_spills_then_sheds_with_429() {
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.serving.max_resident = 1;
    config.serving.queue_capacity = 1;
    let (control, join) = start_server(config);
    let addr = control.addr();

    control.router().shard(0).pause(true);
    control.router().shard(1).pause(true);

    let prompt = vec![9u32, 8, 7, 6];
    let body = format!(
        "{{\"prompt\": {}, \"max_new_tokens\": 3}}",
        prompt_json(&prompt)
    );

    let b1 = body.clone();
    let client_1 = std::thread::spawn(move || sse_generate(addr, &b1));
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "queued") == 1.0
    });
    assert!(ok, "first fills the home queue: {doc:?}");

    let b2 = body.clone();
    let client_2 = std::thread::spawn(move || sse_generate(addr, &b2));
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "queued") == 2.0
    });
    assert!(ok, "second spills to the other shard's queue: {doc:?}");
    let queued_per_shard: Vec<f64> = doc
        .get("shards")
        .and_then(|s| s.as_array())
        .unwrap()
        .iter()
        .map(|s| s.get("queued").and_then(|q| q.as_f64()).unwrap())
        .collect();
    assert_eq!(queued_per_shard, vec![1.0, 1.0], "one request per shard");

    // Third identical request: home full, spill target full -> shed.
    let shed = post(addr, "/v1/generate", &body);
    assert_eq!(shed.status, 429, "load shed: {}", shed.body);
    assert_eq!(shed.header("Retry-After"), Some("1"));

    control.router().shard(0).pause(false);
    control.router().shard(1).pause(false);
    let outcome_1 = client_1.join().unwrap();
    let outcome_2 = client_2.join().unwrap();
    assert_ne!(
        outcome_1.shard, outcome_2.shard,
        "overflow ran on the spill shard"
    );
    assert_eq!(outcome_1.tokens.len(), 3);
    assert_eq!(
        outcome_1.tokens, outcome_2.tokens,
        "identical greedy prompts decode identically on either shard"
    );

    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "completed") == 2.0
    });
    assert!(ok, "spilled pair completes: {doc:?}");
    assert!(
        total(&doc, "rejected") >= 2.0,
        "both full shards counted the shed"
    );

    control.shutdown();
    join.join().unwrap();
}

#[test]
fn mid_stream_disconnect_cancels_and_frees_the_slot() {
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.server.shards = 1;
    config.serving.max_resident = 1;
    let (control, join) = start_server(config);
    let addr = control.addr();
    let shard = control.router().shard(0);

    shard.pause(true);
    let prompt = vec![3u32, 9, 27, 81];
    let body = format!(
        "{{\"prompt\": {}, \"max_new_tokens\": 500}}",
        prompt_json(&prompt)
    );

    // Hand-rolled client so the socket can be dropped mid-stream.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();

    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 1.0
    });
    assert!(ok, "request submitted: {doc:?}");
    shard.step(2); // admit + decode: the stream now carries a token

    // Read until the first token frame arrives, then vanish.
    let mut transcript = String::new();
    let start = Instant::now();
    let mut chunk = [0u8; 1024];
    while !transcript.contains("event: token") {
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "token frame arrives"
        );
        match stream.read(&mut chunk) {
            Ok(0) => panic!("server closed early: {transcript}"),
            Ok(n) => transcript.push_str(&String::from_utf8_lossy(&chunk[..n])),
            Err(_) => {} // read timeout; keep polling
        }
    }
    drop(stream);

    // The handler detects the dead socket on its next keep-alive write
    // and cancels; the next round boundary retires the session.
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        shard.step(1);
        total(doc, "cancelled") == 1.0 && total(doc, "resident") == 0.0
    });
    assert!(ok, "disconnect frees the slot at a round boundary: {doc:?}");
    assert_eq!(total(&doc, "completed"), 0.0, "never ran to completion");

    shard.pause(false);
    control.shutdown();
    join.join().unwrap();
}

/// A client that vanishes while its long prompt is still being chunked in
/// never gets a token; the cancellation lands at a prefill chunk boundary,
/// the rest of the prompt is never fed, and the slot frees.
#[test]
fn disconnect_mid_prefill_cancels_at_a_chunk_boundary() {
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.server.shards = 1;
    config.serving.max_resident = 1;
    config.serving.prefill_chunk_tokens = 4;
    let (control, join) = start_server(config);
    let addr = control.addr();
    let shard = control.router().shard(0);

    shard.pause(true);
    // 50 chunks of prompt: the dead socket is detected (a few keep-alive
    // writes) long before the prompt could finish feeding.
    let prompt: Vec<u32> = (0..200u32).map(|i| (i * 7 + 3) % 128).collect();
    let body = format!(
        "{{\"prompt\": {}, \"max_new_tokens\": 5}}",
        prompt_json(&prompt)
    );

    // Hand-rolled client so the socket can be dropped mid-prefill.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /v1/generate HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();

    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 1.0
    });
    assert!(ok, "request submitted: {doc:?}");

    // Admission chunk + two scheduled chunks: 12 of 200 tokens fed, the
    // request is resident but still prefilling, and no token has streamed.
    shard.step(3);
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "prefill_chunks") == 3.0
    });
    assert!(ok, "three chunks executed: {doc:?}");
    assert_eq!(total(&doc, "prefilling"), 1.0);
    assert_eq!(total(&doc, "prefill_tokens_remaining"), 188.0);
    assert_eq!(total(&doc, "resident"), 1.0);

    // The client vanishes mid-prefill; the handler notices the dead socket
    // on a keep-alive write and cancels. A few more chunks may run before
    // the flag lands, but the boundary it lands on frees the slot with the
    // bulk of the prompt never fed and not one token decoded.
    drop(stream);
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(10), |doc| {
        shard.step(1);
        total(doc, "cancelled") == 1.0 && total(doc, "resident") == 0.0
    });
    assert!(ok, "disconnect frees the prefilling slot: {doc:?}");
    assert_eq!(total(&doc, "completed"), 0.0, "never reached decoding");
    assert_eq!(total(&doc, "prefilling"), 0.0);
    assert_eq!(total(&doc, "prefill_tokens_remaining"), 0.0);
    assert!(
        total(&doc, "prefill_chunks") < 50.0,
        "the remaining prompt was never fed: {doc:?}"
    );

    shard.pause(false);
    control.shutdown();
    join.join().unwrap();
}

#[test]
fn deadline_over_http_reports_timed_out() {
    let mut config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    config.server.shards = 1;
    let (control, join) = start_server(config);
    let addr = control.addr();
    let shard = control.router().shard(0);

    shard.pause(true);
    let body = format!(
        "{{\"prompt\": {}, \"max_new_tokens\": 4, \"deadline_ms\": 1}}",
        prompt_json(&[5, 10, 20])
    );
    let client = std::thread::spawn(move || sse_generate(addr, &body));
    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "submitted") == 1.0
    });
    assert!(ok, "request queued: {doc:?}");
    std::thread::sleep(Duration::from_millis(50)); // let the deadline lapse
    shard.step(1); // the round boundary reaps the expired request

    let outcome = client.join().unwrap();
    assert!(outcome.tokens.is_empty(), "expired before admission");
    let timed_out = outcome
        .done
        .get("report")
        .and_then(|r| r.get("timed_out"))
        .and_then(|v| match v {
            serde_json::Value::Bool(b) => Some(*b),
            _ => None,
        });
    assert_eq!(timed_out, Some(true), "done frame: {:?}", outcome.done);

    let (ok, doc) = wait_for_metrics(addr, Duration::from_secs(5), |doc| {
        total(doc, "timed_out") == 1.0
    });
    assert!(ok, "timeout counted distinctly: {doc:?}");
    assert_eq!(total(&doc, "cancelled"), 0.0);

    shard.pause(false);
    control.shutdown();
    join.join().unwrap();
}

#[test]
fn drain_closes_admission_then_shutdown_stops_the_server() {
    let config = AppConfig {
        engine: tiny_engine_settings(),
        ..AppConfig::default()
    };
    let (control, join) = start_server(config);
    let addr = control.addr();

    // One complete request first, so the drain has history to keep.
    let body = format!(
        "{{\"prompt\": {}, \"max_new_tokens\": 3, \"stream\": false}}",
        prompt_json(&[2, 4, 8, 16])
    );
    let response = post(addr, "/v1/generate", &body);
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = serde_json::from_str(&response.body).unwrap();
    assert_eq!(
        doc.get("tokens").and_then(|t| t.as_array()).map(<[_]>::len),
        Some(3)
    );

    let drained = post(addr, "/admin/drain", "");
    assert_eq!(drained.status, 200, "{}", drained.body);
    let outcomes = serde_json::from_str(&drained.body).unwrap();
    let outcomes = outcomes.as_array().expect("drain outcome list");
    assert_eq!(outcomes.len(), 2);
    for outcome in outcomes {
        assert_eq!(
            outcome.get("ok").and_then(|v| match v {
                serde_json::Value::Bool(b) => Some(*b),
                _ => None,
            }),
            Some(true),
            "{outcome:?}"
        );
    }

    let refused = post(addr, "/v1/generate", &body);
    assert_eq!(refused.status, 503, "admission closed: {}", refused.body);

    let stopped = post(addr, "/admin/shutdown", "");
    assert_eq!(stopped.status, 200);
    join.join().unwrap();
}
