//! Concurrent submission against one shard engine: many client threads
//! pushing through the same [`ShardHandle`] must lose nothing, duplicate
//! nothing, and stream exactly what a serial run of the same prompts
//! produces.
//!
//! This is the thread-safety contract of the command-channel design: the
//! serving engine itself stays single-threaded on the shard thread, and
//! every cross-thread interaction is a channel round-trip.
//!
//! [`ShardHandle`]: million_serverd::ShardHandle

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use million::{GenerationOptions, Request, TokenWait};
use million_serverd::{
    build_engine, spawn_shard, EngineSettings, ServingSettings, SupervisorSettings,
};

fn tiny_settings() -> EngineSettings {
    EngineSettings {
        model: "tiny-test".into(),
        calibration_tokens: 96,
        async_quant: false,
        ..EngineSettings::default()
    }
}

/// A distinct prompt per (thread, request) pair, within the tiny vocab.
fn prompt_for(thread: usize, request: usize) -> Vec<u32> {
    vec![
        (thread * 31 + 1) as u32 % 128,
        (request * 7 + 2) as u32 % 128,
        ((thread + request) % 100 + 1) as u32,
        ((thread * 13 + request * 5) % 120 + 3) as u32,
    ]
}

#[test]
fn concurrent_submitters_are_bit_identical_to_serial_and_lose_nothing() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 6;
    const MAX_TOKENS: usize = 5;

    let shard = Arc::new(
        spawn_shard(
            0,
            tiny_settings(),
            ServingSettings::default(),
            SupervisorSettings::default(),
        )
        .unwrap(),
    );

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let shard = Arc::clone(&shard);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for r in 0..PER_THREAD {
                    let prompt = prompt_for(t, r);
                    let handle = shard
                        .submit(Request::new(
                            prompt.clone(),
                            GenerationOptions::max_tokens(MAX_TOKENS),
                        ))
                        .expect("submission accepted");
                    let mut tokens = Vec::new();
                    loop {
                        match handle.recv_token(Duration::from_secs(2)) {
                            TokenWait::Token(step) => tokens.push(step.token),
                            TokenWait::Idle => panic!("stream stalled for {prompt:?}"),
                            TokenWait::Closed => break,
                        }
                    }
                    let report = handle.report().expect("report published at retirement");
                    results.push((prompt, handle.id().as_u64(), tokens, report));
                }
                results
            })
        })
        .collect();

    let mut all = Vec::new();
    for worker in workers {
        all.extend(worker.join().expect("client thread"));
    }
    assert_eq!(all.len(), THREADS * PER_THREAD, "no submission lost");

    // No duplicated or lost handles: every request id is unique and the
    // engine counted exactly one submission per client call.
    let ids: HashSet<u64> = all.iter().map(|(_, id, _, _)| *id).collect();
    assert_eq!(ids.len(), THREADS * PER_THREAD, "request ids are unique");
    let snapshot = shard.snapshot().expect("shard alive");
    assert_eq!(snapshot.stats.submitted, (THREADS * PER_THREAD) as u64);
    assert_eq!(snapshot.stats.completed, (THREADS * PER_THREAD) as u64);
    assert_eq!(snapshot.stats.cancelled, 0);
    assert_eq!(snapshot.queued, 0);
    assert_eq!(snapshot.resident, 0);

    // Bit-identical to serial: replay every prompt on a fresh engine
    // built from the same settings, one session at a time.
    let reference = build_engine(&tiny_settings()).unwrap();
    for (prompt, _, tokens, report) in &all {
        let mut session = reference.session();
        session.prefill(prompt);
        let serial = session
            .generate(&GenerationOptions::max_tokens(MAX_TOKENS))
            .tokens;
        assert_eq!(
            tokens, &serial,
            "prompt {prompt:?} diverged under concurrency"
        );
        assert_eq!(&report.tokens, tokens, "report matches the stream");
    }

    shard.shutdown();
}
