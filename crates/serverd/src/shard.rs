//! Engine shards: one thread per shard, each owning a private
//! [`MillionEngine`] + [`ServingEngine`] pair and driven by a command
//! channel.
//!
//! [`ServingEngine`] is deliberately single-threaded — it borrows its
//! engine and schedules rounds synchronously — so the networked front-end
//! gives each shard its own thread and marshals everything else through
//! [`ShardCommand`]s. Connection threads only ever hold a [`ShardHandle`]:
//! submissions round-trip over the channel and return the engine's own
//! [`RequestHandle`], which is `Send` and streams tokens directly from the
//! shard thread to whichever connection is serving the client. Load gauges
//! are published through atomics so the router and `/metrics` can read
//! them without a channel round-trip.
//!
//! The `pause`/`step` controls exist for the end-to-end tests: a paused
//! shard keeps accepting (queueing) submissions but decodes only when
//! stepped, which makes queue-overflow, spill, and shared-prefix residency
//! deterministic instead of racing the decode loop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Serialize;

use million::{
    DrainReport, Request, RequestHandle, RequestInfo, ServingEngine, ServingStats, StoreStats,
    SubmitError, TelemetrySnapshot,
};
use million_telemetry::Event;

use crate::config::{EngineSettings, ServingSettings};
use crate::engine::{build_engine, BuildError};

/// How long an idle shard thread sleeps on its command channel between
/// wake-ups.
const IDLE_WAIT: Duration = Duration::from_millis(2);

/// Control-plane messages a shard thread executes between scheduling
/// rounds.
pub enum ShardCommand {
    /// Submit a request; the reply carries the engine's verdict.
    Submit {
        /// The request to enqueue.
        request: Request,
        /// Where to send the resulting handle (or rejection).
        reply: Sender<Result<RequestHandle, SubmitError>>,
    },
    /// Report a full metrics snapshot.
    Snapshot {
        /// Where to send the snapshot.
        reply: Sender<ShardSnapshot>,
    },
    /// Report the live request table (the `GET /debug/requests` view).
    Requests {
        /// Where to send the rows.
        reply: Sender<Vec<RequestInfo>>,
    },
    /// Drain the buffered request-lifecycle events (the `GET /debug/trace`
    /// source).
    Trace {
        /// Where to send the events.
        reply: Sender<Vec<Event>>,
    },
    /// Drain the shard: close admission, then finish or persist residents.
    Drain {
        /// Persist residents under this directory instead of finishing
        /// them.
        persist_dir: Option<PathBuf>,
        /// Where to send the drain outcome.
        reply: Sender<Result<DrainReport, String>>,
    },
    /// Suspend (`true`) or resume (`false`) the decode loop. Submissions
    /// still queue while paused.
    Pause(bool),
    /// Run exactly `rounds` scheduling rounds (even while paused), then
    /// acknowledge.
    Step {
        /// Rounds to run.
        rounds: u64,
        /// Acknowledged once the rounds completed.
        reply: Sender<()>,
    },
    /// Exit the shard thread after publishing final gauges.
    Shutdown,
}

/// Lock-free load gauges a shard publishes after every loop iteration.
#[derive(Default)]
pub struct ShardGauges {
    /// Sessions currently resident (decoding).
    pub resident: AtomicUsize,
    /// Requests waiting in the pending queue.
    pub queued: AtomicUsize,
    /// Quantized KV bytes attributed to this shard's live sessions.
    pub kv_bytes: AtomicUsize,
    /// Residents currently admitting their prompt in chunks.
    pub prefilling: AtomicUsize,
    /// Prompt tokens still to be prefilled across prefilling residents.
    pub prefill_tokens_remaining: AtomicUsize,
    /// Scheduling rounds run so far.
    pub rounds: AtomicU64,
    /// Set once the shard enters drain; admission is closed.
    pub draining: AtomicBool,
}

impl ShardGauges {
    /// Queue depth + residency — the router's spill ordering key.
    pub fn load(&self) -> usize {
        self.resident.load(Ordering::Relaxed) + self.queued.load(Ordering::Relaxed)
    }
}

/// One shard's full state for `/metrics`.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSnapshot {
    /// Shard index in the router.
    pub shard: usize,
    /// Scheduling rounds run.
    pub rounds: u64,
    /// Requests waiting in the pending queue.
    pub queued: usize,
    /// Sessions currently resident.
    pub resident: usize,
    /// Residents currently admitting their prompt in chunks (the
    /// *Prefilling* state).
    pub prefilling: usize,
    /// Prompt tokens still to be prefilled across prefilling residents.
    pub prefill_tokens_remaining: usize,
    /// Quantized KV bytes across live sessions (shared blocks counted
    /// once per session).
    pub kv_bytes: usize,
    /// KV bytes actually resident in the store (shared blocks counted
    /// once) plus full-precision tails.
    pub fleet_kv_bytes: usize,
    /// Whether admission is closed on this shard.
    pub draining: bool,
    /// Cumulative serving counters.
    pub stats: ServingStats,
    /// PQ block-store counters (absent when the store is disabled).
    pub store: Option<StoreStats>,
    /// Logical bytes referenced by sessions over physical store bytes —
    /// > 1 when prefix sharing is deduplicating resident prompts.
    pub dedup_ratio: f64,
    /// Latency histograms, per-phase round timing, and journal counters
    /// (empty histograms when [`ServingConfig::telemetry`] is off).
    ///
    /// [`ServingConfig::telemetry`]: million::ServingConfig::telemetry
    pub telemetry: TelemetrySnapshot,
}

/// Why a submission never reached the engine.
#[derive(Debug)]
pub enum ShardSubmitError {
    /// The engine rejected it (queue full, bad prompt, draining).
    Rejected(SubmitError),
    /// The shard thread is gone.
    Down,
}

impl std::fmt::Display for ShardSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSubmitError::Rejected(e) => write!(f, "{e}"),
            ShardSubmitError::Down => write!(f, "shard thread is not running"),
        }
    }
}

/// Client-side handle to one shard thread. Shared (behind the router) by
/// every connection thread.
pub struct ShardHandle {
    index: usize,
    tx: Mutex<Sender<ShardCommand>>,
    gauges: Arc<ShardGauges>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl ShardHandle {
    /// Shard index in the router.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's live load gauges.
    pub fn gauges(&self) -> &ShardGauges {
        &self.gauges
    }

    fn send(&self, cmd: ShardCommand) -> Result<(), ShardSubmitError> {
        self.tx
            .lock()
            .expect("shard sender lock")
            .send(cmd)
            .map_err(|_| ShardSubmitError::Down)
    }

    /// Submits a request to this shard and waits for the engine's verdict.
    pub fn submit(&self, request: Request) -> Result<RequestHandle, ShardSubmitError> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Submit { request, reply })?;
        match rx.recv() {
            Ok(Ok(handle)) => Ok(handle),
            Ok(Err(e)) => Err(ShardSubmitError::Rejected(e)),
            Err(_) => Err(ShardSubmitError::Down),
        }
    }

    /// Fetches a full metrics snapshot (channel round-trip).
    pub fn snapshot(&self) -> Option<ShardSnapshot> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Snapshot { reply }).ok()?;
        rx.recv().ok()
    }

    /// Fetches the live request table (channel round-trip).
    pub fn requests(&self) -> Option<Vec<RequestInfo>> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Requests { reply }).ok()?;
        rx.recv().ok()
    }

    /// Drains the shard's buffered lifecycle events, oldest first
    /// (channel round-trip).
    pub fn trace(&self) -> Option<Vec<Event>> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Trace { reply }).ok()?;
        rx.recv().ok()
    }

    /// Drains the shard (see [`ServingEngine::drain`]); blocks until the
    /// drain completes.
    pub fn drain(&self, persist_dir: Option<PathBuf>) -> Result<DrainReport, String> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Drain { persist_dir, reply })
            .map_err(|e| e.to_string())?;
        rx.recv()
            .map_err(|_| "shard exited mid-drain".to_string())?
    }

    /// Pauses or resumes the decode loop (testing control).
    pub fn pause(&self, paused: bool) {
        let _ = self.send(ShardCommand::Pause(paused));
    }

    /// Runs exactly `rounds` scheduling rounds and waits for them
    /// (testing control).
    pub fn step(&self, rounds: u64) {
        let (reply, rx) = mpsc::channel();
        if self.send(ShardCommand::Step { rounds, reply }).is_ok() {
            let _ = rx.recv();
        }
    }

    /// Stops the shard thread and joins it. Safe to call more than once.
    pub fn shutdown(&self) {
        let _ = self.send(ShardCommand::Shutdown);
        if let Some(handle) = self.join.lock().expect("shard join lock").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns shard `index`: builds the engine on the shard thread (weights,
/// calibration, codebooks), then enters the command/decode loop. Fails
/// fast — construction errors are reported here, not at first request.
pub fn spawn_shard(
    index: usize,
    engine_settings: EngineSettings,
    serving_settings: ServingSettings,
) -> Result<ShardHandle, BuildError> {
    let (tx, rx) = mpsc::channel();
    let gauges = Arc::new(ShardGauges::default());
    let (ready_tx, ready_rx) = mpsc::channel::<Result<(), BuildError>>();

    let thread_gauges = Arc::clone(&gauges);
    let join = std::thread::Builder::new()
        .name(format!("shard-{index}"))
        .spawn(move || {
            let engine = match build_engine(&engine_settings) {
                Ok(engine) => {
                    let _ = ready_tx.send(Ok(()));
                    engine
                }
                Err(e) => {
                    let _ = ready_tx.send(Err(e));
                    return;
                }
            };
            let serving = ServingEngine::new(&engine, serving_settings.to_serving_config());
            shard_loop(index, serving, rx, &thread_gauges);
        })
        .expect("spawn shard thread");

    match ready_rx.recv() {
        Ok(Ok(())) => Ok(ShardHandle {
            index,
            tx: Mutex::new(tx),
            gauges,
            join: Mutex::new(Some(join)),
        }),
        Ok(Err(e)) => {
            let _ = join.join();
            Err(e)
        }
        Err(_) => {
            let _ = join.join();
            Err(BuildError::Config(crate::config::ConfigError::BadValue {
                key: "engine".into(),
                msg: "shard thread died during construction".into(),
            }))
        }
    }
}

fn shard_loop(
    index: usize,
    mut serving: ServingEngine<'_>,
    rx: Receiver<ShardCommand>,
    gauges: &ShardGauges,
) {
    let mut paused = false;
    loop {
        // Drain every queued command first so submissions and control
        // never wait behind decode work.
        loop {
            match rx.try_recv() {
                Ok(cmd) => {
                    if handle_command(index, &mut serving, cmd, &mut paused, gauges) {
                        publish(&serving, gauges);
                        return;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    publish(&serving, gauges);
                    return;
                }
            }
        }

        if !paused && !serving.is_idle() {
            serving.serve_round();
        } else {
            // Nothing to decode (or paused): block briefly on the channel
            // instead of spinning.
            match rx.recv_timeout(IDLE_WAIT) {
                Ok(cmd) => {
                    if handle_command(index, &mut serving, cmd, &mut paused, gauges) {
                        publish(&serving, gauges);
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    publish(&serving, gauges);
                    return;
                }
            }
        }
        publish(&serving, gauges);
    }
}

/// Executes one command; returns `true` when the shard should exit.
fn handle_command(
    index: usize,
    serving: &mut ServingEngine<'_>,
    cmd: ShardCommand,
    paused: &mut bool,
    gauges: &ShardGauges,
) -> bool {
    match cmd {
        ShardCommand::Submit { request, reply } => {
            let _ = reply.send(serving.submit(request));
        }
        ShardCommand::Snapshot { reply } => {
            let _ = reply.send(snapshot(index, serving, gauges));
        }
        ShardCommand::Requests { reply } => {
            let _ = reply.send(serving.request_table());
        }
        ShardCommand::Trace { reply } => {
            let _ = reply.send(serving.drain_trace_events());
        }
        ShardCommand::Drain { persist_dir, reply } => {
            let result = serving
                .drain(persist_dir.as_deref())
                .map_err(|e| e.to_string());
            gauges.draining.store(true, Ordering::Relaxed);
            let _ = reply.send(result);
        }
        ShardCommand::Pause(p) => *paused = p,
        ShardCommand::Step { rounds, reply } => {
            for _ in 0..rounds {
                serving.serve_round();
            }
            publish(serving, gauges);
            let _ = reply.send(());
        }
        ShardCommand::Shutdown => return true,
    }
    false
}

fn publish(serving: &ServingEngine<'_>, gauges: &ShardGauges) {
    gauges
        .resident
        .store(serving.resident_sessions(), Ordering::Relaxed);
    gauges
        .queued
        .store(serving.queued_requests(), Ordering::Relaxed);
    gauges.kv_bytes.store(serving.kv_bytes(), Ordering::Relaxed);
    gauges
        .prefilling
        .store(serving.prefilling_sessions(), Ordering::Relaxed);
    gauges
        .prefill_tokens_remaining
        .store(serving.prefill_tokens_remaining(), Ordering::Relaxed);
    gauges.rounds.store(serving.rounds(), Ordering::Relaxed);
    gauges
        .draining
        .store(serving.is_draining(), Ordering::Relaxed);
}

fn snapshot(index: usize, serving: &ServingEngine<'_>, gauges: &ShardGauges) -> ShardSnapshot {
    let store = serving.engine().store_stats();
    let dedup_ratio = store.as_ref().map(StoreStats::dedup_ratio).unwrap_or(1.0);
    ShardSnapshot {
        shard: index,
        rounds: serving.rounds(),
        queued: serving.queued_requests(),
        resident: serving.resident_sessions(),
        prefilling: serving.prefilling_sessions(),
        prefill_tokens_remaining: serving.prefill_tokens_remaining(),
        kv_bytes: serving.kv_bytes(),
        fleet_kv_bytes: serving.fleet_kv_bytes(),
        draining: gauges.draining.load(Ordering::Relaxed) || serving.is_draining(),
        stats: serving.stats(),
        store,
        dedup_ratio,
        telemetry: serving.telemetry(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use million::{GenerationOptions, TokenWait};

    fn tiny() -> (EngineSettings, ServingSettings) {
        (
            EngineSettings {
                model: "tiny-test".into(),
                calibration_tokens: 96,
                async_quant: false,
                ..EngineSettings::default()
            },
            ServingSettings::default(),
        )
    }

    #[test]
    fn shard_serves_a_request_end_to_end() {
        let (es, ss) = tiny();
        let shard = spawn_shard(0, es, ss).unwrap();
        let request = Request::new(vec![3, 9, 27, 81], GenerationOptions::max_tokens(6));
        let handle = shard.submit(request).unwrap();
        let mut tokens = Vec::new();
        loop {
            match handle.recv_token(Duration::from_millis(200)) {
                TokenWait::Token(step) => tokens.push(step.token),
                TokenWait::Idle => {}
                TokenWait::Closed => break,
            }
        }
        assert_eq!(tokens.len(), 6);
        let report = handle.report().expect("report published");
        assert_eq!(report.tokens, tokens);
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.stats.completed, 1);
        shard.shutdown();
    }

    #[test]
    fn paused_shard_queues_submissions_until_stepped() {
        let (es, ss) = tiny();
        let shard = spawn_shard(0, es, ss).unwrap();
        shard.pause(true);
        // Give the pause command time to land before submitting.
        let handle = shard
            .submit(Request::new(
                vec![5, 10, 20],
                GenerationOptions::max_tokens(3),
            ))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(handle.try_token().is_none(), "no decode while paused");
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.queued + snap.resident, 1);
        shard.step(4); // admit + 3 decode rounds
        let mut tokens = Vec::new();
        loop {
            match handle.recv_token(Duration::from_millis(200)) {
                TokenWait::Token(step) => tokens.push(step.token),
                TokenWait::Idle => break,
                TokenWait::Closed => break,
            }
        }
        assert_eq!(tokens.len(), 3);
        shard.shutdown();
    }

    #[test]
    fn spawn_reports_build_errors_synchronously() {
        let (mut es, ss) = tiny();
        es.model = "no-such-model".into();
        assert!(spawn_shard(0, es, ss).is_err());
    }
}
