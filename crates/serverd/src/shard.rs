//! Engine shards: one supervised thread per shard, each owning a private
//! [`MillionEngine`] + [`ServingEngine`] pair and driven by a command
//! channel.
//!
//! [`ServingEngine`] is deliberately single-threaded — it borrows its
//! engine and schedules rounds synchronously — so the networked front-end
//! gives each shard its own thread and marshals everything else through
//! [`ShardCommand`]s. Connection threads only ever hold a [`ShardHandle`]:
//! submissions round-trip over the channel and return the engine's own
//! [`RequestHandle`], which is `Send` and streams tokens directly from the
//! shard thread to whichever connection is serving the client. Load gauges
//! are published through atomics so the router and `/metrics` can read
//! them without a channel round-trip.
//!
//! ## Supervision
//!
//! The shard thread is a *supervisor*: each engine incarnation runs under
//! [`std::panic::catch_unwind`], and a panic (organic or injected through a
//! [`FaultPlan`]) tears down only that incarnation. The supervisor then
//!
//! 1. marks the shard [`ShardState::Restarting`] and seals the command
//!    channel, so in-flight handles observe a closed stream and new
//!    submissions fail over to other shards;
//! 2. backs off exponentially (capped), rebuilds the engine from the same
//!    deterministic settings, and re-admits every crash-safe checkpoint
//!    found under its checkpoint directory;
//! 3. goes [`ShardState::Live`] again with a fresh channel — or
//!    [`ShardState::Failed`] permanently once the restart budget is spent.
//!
//! Recovered sessions keep decoding; their fresh [`RequestHandle`]s park in
//! the handle's recovery bin until claimed with
//! [`ShardHandle::claim_recovered`].
//!
//! The `pause`/`step` controls exist for the end-to-end tests: a paused
//! shard keeps accepting (queueing) submissions but decodes only when
//! stepped, which makes queue-overflow, spill, and shared-prefix residency
//! deterministic instead of racing the decode loop.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Serialize;

use million::{
    DrainReport, FaultPlan, Request, RequestHandle, RequestId, RequestInfo, ServingEngine,
    ServingStats, StoreStats, SubmitError, TelemetrySnapshot,
};
use million_telemetry::Event;

use crate::config::{EngineSettings, ServingSettings};
use crate::engine::{build_engine, BuildError};

/// How long an idle shard thread sleeps on its command channel between
/// wake-ups.
const IDLE_WAIT: Duration = Duration::from_millis(2);

/// Ceiling on the exponential restart backoff.
const MAX_RESTART_BACKOFF: Duration = Duration::from_secs(5);

/// Granularity of the backoff sleep, so shutdown stays responsive while a
/// crashed shard waits to restart.
const BACKOFF_SLICE: Duration = Duration::from_millis(10);

/// Control-plane messages a shard thread executes between scheduling
/// rounds.
pub enum ShardCommand {
    /// Submit a request; the reply carries the engine's verdict.
    Submit {
        /// The request to enqueue.
        request: Request,
        /// Where to send the resulting handle (or rejection).
        reply: Sender<Result<RequestHandle, SubmitError>>,
    },
    /// Report a full metrics snapshot.
    Snapshot {
        /// Where to send the snapshot.
        reply: Sender<ShardSnapshot>,
    },
    /// Report the live request table (the `GET /debug/requests` view).
    Requests {
        /// Where to send the rows.
        reply: Sender<Vec<RequestInfo>>,
    },
    /// Drain the buffered request-lifecycle events (the `GET /debug/trace`
    /// source).
    Trace {
        /// Where to send the events.
        reply: Sender<Vec<Event>>,
    },
    /// Drain the shard: close admission, then finish or persist residents.
    Drain {
        /// Persist residents under this directory instead of finishing
        /// them.
        persist_dir: Option<PathBuf>,
        /// Where to send the drain outcome.
        reply: Sender<Result<DrainReport, String>>,
    },
    /// Suspend (`true`) or resume (`false`) the decode loop. Submissions
    /// still queue while paused.
    Pause(bool),
    /// Run exactly `rounds` scheduling rounds (even while paused), then
    /// acknowledge.
    Step {
        /// Rounds to run.
        rounds: u64,
        /// Acknowledged once the rounds completed.
        reply: Sender<()>,
    },
    /// Exit the shard thread after publishing final gauges.
    Shutdown,
}

/// Supervision state of one shard, as exposed through `/metrics` and the
/// `million_shard_state` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// The shard thread is serving.
    Live,
    /// The shard crashed; its supervisor is backing off and rebuilding.
    Restarting,
    /// The shard spent its restart budget (or died during construction)
    /// and stays down permanently.
    Failed,
}

// Hand-rolled so the wire format is the stable lowercase `name()`
// ("live" / "restarting" / "failed") rather than the variant identifier.
impl Serialize for ShardState {
    fn serialize_json(&self, out: &mut String) {
        serde::write_json_string(out, self.name());
    }
}

impl ShardState {
    fn from_u8(value: u8) -> ShardState {
        match value {
            1 => ShardState::Restarting,
            2 => ShardState::Failed,
            _ => ShardState::Live,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ShardState::Live => 0,
            ShardState::Restarting => 1,
            ShardState::Failed => 2,
        }
    }

    /// Stable lowercase name (matches the JSON serialization).
    pub fn name(&self) -> &'static str {
        match self {
            ShardState::Live => "live",
            ShardState::Restarting => "restarting",
            ShardState::Failed => "failed",
        }
    }

    /// Numeric encoding for the Prometheus gauge: 0 = live,
    /// 1 = restarting, 2 = failed.
    pub fn gauge_value(&self) -> u64 {
        self.as_u8() as u64
    }
}

/// Supervision policy plus the crash-safety wiring threaded into each
/// incarnation's [`ServingEngine`].
#[derive(Debug, Clone)]
pub struct SupervisorSettings {
    /// Restarts allowed before the shard is marked [`ShardState::Failed`].
    pub max_restarts: u64,
    /// Base backoff between restarts; doubles per restart, capped at 5 s.
    pub backoff_ms: u64,
    /// Directory holding this shard's session checkpoints. `None`
    /// disables checkpointing and recovery.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint live sessions every N rounds (0 = only on drain).
    pub checkpoint_every_rounds: u64,
    /// Deterministic fault schedule (injected panics, snapshot I/O errors,
    /// short reads, queue-full bursts) for chaos tests.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for SupervisorSettings {
    fn default() -> Self {
        SupervisorSettings {
            max_restarts: 3,
            backoff_ms: 100,
            checkpoint_dir: None,
            checkpoint_every_rounds: 0,
            fault_plan: None,
        }
    }
}

/// One shard's supervision status: the `health` array of the JSON
/// `/metrics` document. Stays truthful even when the shard thread is gone
/// — it reads atomics, never the command channel.
#[derive(Debug, Clone, Serialize)]
pub struct ShardHealth {
    /// Shard index in the router.
    pub shard: usize,
    /// Current supervision state.
    pub state: ShardState,
    /// Times the supervisor restarted this shard.
    pub restarts: u64,
}

/// State shared between the supervisor thread and every [`ShardHandle`]
/// clone: the per-incarnation command sender plus supervision atomics.
struct ShardShared {
    /// Sender into the *current* incarnation's command channel. Swapped by
    /// the supervisor on every restart; sealed (receiver dropped) while
    /// the shard is down so sends fail fast with [`ShardSubmitError::Down`].
    tx: Mutex<Sender<ShardCommand>>,
    state: AtomicU8,
    restarts: AtomicU64,
    /// Set by [`ShardHandle::shutdown`]: the supervisor must not restart.
    stopping: AtomicBool,
    /// Handles for checkpointed sessions the latest incarnation re-admitted,
    /// waiting to be claimed by their original connection (or a test).
    recovered: Mutex<Vec<RequestHandle>>,
}

impl ShardShared {
    /// Replaces the command sender with one whose receiver is already
    /// dropped, so every send fails fast instead of queueing into a dead
    /// incarnation.
    fn seal(&self) {
        let (dead, _) = mpsc::channel();
        // Poison-tolerant: sealing must succeed even when the thread that
        // last held the sender lock died — that is exactly when it runs.
        *self.tx.lock().unwrap_or_else(|p| p.into_inner()) = dead;
    }
}

/// Lock-free load gauges a shard publishes after every loop iteration.
#[derive(Default)]
pub struct ShardGauges {
    /// Sessions currently resident (decoding).
    pub resident: AtomicUsize,
    /// Requests waiting in the pending queue.
    pub queued: AtomicUsize,
    /// Quantized KV bytes attributed to this shard's live sessions.
    pub kv_bytes: AtomicUsize,
    /// Residents currently admitting their prompt in chunks.
    pub prefilling: AtomicUsize,
    /// Prompt tokens still to be prefilled across prefilling residents.
    pub prefill_tokens_remaining: AtomicUsize,
    /// Scheduling rounds run so far.
    pub rounds: AtomicU64,
    /// Set once the shard enters drain; admission is closed.
    pub draining: AtomicBool,
}

impl ShardGauges {
    /// Queue depth + residency — the router's spill ordering key.
    pub fn load(&self) -> usize {
        self.resident.load(Ordering::Relaxed) + self.queued.load(Ordering::Relaxed)
    }
}

/// One shard's full state for `/metrics`.
#[derive(Debug, Clone, Serialize)]
pub struct ShardSnapshot {
    /// Shard index in the router.
    pub shard: usize,
    /// Scheduling rounds run.
    pub rounds: u64,
    /// Requests waiting in the pending queue.
    pub queued: usize,
    /// Sessions currently resident.
    pub resident: usize,
    /// Residents currently admitting their prompt in chunks (the
    /// *Prefilling* state).
    pub prefilling: usize,
    /// Prompt tokens still to be prefilled across prefilling residents.
    pub prefill_tokens_remaining: usize,
    /// Quantized KV bytes across live sessions (shared blocks counted
    /// once per session).
    pub kv_bytes: usize,
    /// KV bytes actually resident in the store (shared blocks counted
    /// once) plus full-precision tails.
    pub fleet_kv_bytes: usize,
    /// Whether admission is closed on this shard.
    pub draining: bool,
    /// Cumulative serving counters.
    pub stats: ServingStats,
    /// PQ block-store counters (absent when the store is disabled).
    pub store: Option<StoreStats>,
    /// Logical bytes referenced by sessions over physical store bytes —
    /// > 1 when prefix sharing is deduplicating resident prompts.
    pub dedup_ratio: f64,
    /// Latency histograms, per-phase round timing, and journal counters
    /// (empty histograms when [`ServingConfig::telemetry`] is off).
    ///
    /// [`ServingConfig::telemetry`]: million::ServingConfig::telemetry
    pub telemetry: TelemetrySnapshot,
}

/// Why a submission never reached the engine.
#[derive(Debug)]
pub enum ShardSubmitError {
    /// The engine rejected it (queue full, bad prompt, draining).
    Rejected(SubmitError),
    /// The shard thread is gone (crashed, restarting, or failed).
    Down,
}

impl std::fmt::Display for ShardSubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardSubmitError::Rejected(e) => write!(f, "{e}"),
            ShardSubmitError::Down => write!(f, "shard thread is not running"),
        }
    }
}

/// Client-side handle to one shard thread. Shared (behind the router) by
/// every connection thread.
pub struct ShardHandle {
    index: usize,
    shared: Arc<ShardShared>,
    gauges: Arc<ShardGauges>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl ShardHandle {
    /// Shard index in the router.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The shard's live load gauges.
    pub fn gauges(&self) -> &ShardGauges {
        &self.gauges
    }

    /// Current supervision state.
    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.shared.state.load(Ordering::Relaxed))
    }

    /// Times the supervisor restarted this shard after a crash.
    pub fn restarts(&self) -> u64 {
        self.shared.restarts.load(Ordering::Relaxed)
    }

    /// Supervision status for `/metrics` (readable even when the shard
    /// thread is down).
    pub fn health(&self) -> ShardHealth {
        ShardHealth {
            shard: self.index,
            state: self.state(),
            restarts: self.restarts(),
        }
    }

    /// Claims the re-admitted handle for checkpointed request `id`, if the
    /// latest restart recovered it. The handle streams the session's
    /// post-checkpoint tokens; [`RequestHandle::recovered_tokens`] says how
    /// many tokens the checkpoint already contained.
    pub fn claim_recovered(&self, id: RequestId) -> Option<RequestHandle> {
        let mut recovered = self
            .shared
            .recovered
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let index = recovered.iter().position(|h| h.id() == id)?;
        Some(recovered.swap_remove(index))
    }

    fn send(&self, cmd: ShardCommand) -> Result<(), ShardSubmitError> {
        self.shared
            .tx
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .send(cmd)
            .map_err(|_| ShardSubmitError::Down)
    }

    /// Submits a request to this shard and waits for the engine's verdict.
    pub fn submit(&self, request: Request) -> Result<RequestHandle, ShardSubmitError> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Submit { request, reply })?;
        match rx.recv() {
            Ok(Ok(handle)) => Ok(handle),
            Ok(Err(e)) => Err(ShardSubmitError::Rejected(e)),
            Err(_) => Err(ShardSubmitError::Down),
        }
    }

    /// Fetches a full metrics snapshot (channel round-trip).
    pub fn snapshot(&self) -> Option<ShardSnapshot> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Snapshot { reply }).ok()?;
        rx.recv().ok()
    }

    /// Fetches the live request table (channel round-trip).
    pub fn requests(&self) -> Option<Vec<RequestInfo>> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Requests { reply }).ok()?;
        rx.recv().ok()
    }

    /// Drains the shard's buffered lifecycle events, oldest first
    /// (channel round-trip).
    pub fn trace(&self) -> Option<Vec<Event>> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Trace { reply }).ok()?;
        rx.recv().ok()
    }

    /// Drains the shard (see [`ServingEngine::drain`]); blocks until the
    /// drain completes.
    pub fn drain(&self, persist_dir: Option<PathBuf>) -> Result<DrainReport, String> {
        let (reply, rx) = mpsc::channel();
        self.send(ShardCommand::Drain { persist_dir, reply })
            .map_err(|e| e.to_string())?;
        rx.recv()
            .map_err(|_| "shard exited mid-drain".to_string())?
    }

    /// Pauses or resumes the decode loop (testing control).
    pub fn pause(&self, paused: bool) {
        let _ = self.send(ShardCommand::Pause(paused));
    }

    /// Runs exactly `rounds` scheduling rounds and waits for them
    /// (testing control).
    pub fn step(&self, rounds: u64) {
        let (reply, rx) = mpsc::channel();
        if self.send(ShardCommand::Step { rounds, reply }).is_ok() {
            let _ = rx.recv();
        }
    }

    /// Stops the shard thread (supervisor included) and joins it. Safe to
    /// call more than once.
    pub fn shutdown(&self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        let _ = self.send(ShardCommand::Shutdown);
        if let Some(handle) = self.join.lock().unwrap_or_else(|p| p.into_inner()).take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns shard `index` under supervision: the shard thread builds the
/// engine (weights, calibration, codebooks), recovers any checkpointed
/// sessions, then enters the command/decode loop; panics restart it per
/// `supervisor`. Fails fast — first-build errors are reported here, not at
/// first request.
pub fn spawn_shard(
    index: usize,
    engine_settings: EngineSettings,
    serving_settings: ServingSettings,
    supervisor: SupervisorSettings,
) -> Result<ShardHandle, BuildError> {
    let gauges = Arc::new(ShardGauges::default());
    let (sealed, _) = mpsc::channel();
    let shared = Arc::new(ShardShared {
        tx: Mutex::new(sealed),
        state: AtomicU8::new(ShardState::Live.as_u8()),
        restarts: AtomicU64::new(0),
        stopping: AtomicBool::new(false),
        recovered: Mutex::new(Vec::new()),
    });
    let (ready_tx, ready_rx) = mpsc::channel::<Result<(), BuildError>>();

    let thread_gauges = Arc::clone(&gauges);
    let thread_shared = Arc::clone(&shared);
    let join = std::thread::Builder::new()
        .name(format!("shard-{index}"))
        .spawn(move || {
            supervise(
                index,
                &engine_settings,
                &serving_settings,
                &supervisor,
                &thread_shared,
                &thread_gauges,
                ready_tx,
            );
        })
        .map_err(BuildError::Spawn)?;

    match ready_rx.recv() {
        Ok(Ok(())) => Ok(ShardHandle {
            index,
            shared,
            gauges,
            join: Mutex::new(Some(join)),
        }),
        Ok(Err(e)) => {
            let _ = join.join();
            Err(e)
        }
        Err(_) => {
            let _ = join.join();
            Err(BuildError::Config(crate::config::ConfigError::BadValue {
                key: "engine".into(),
                msg: "shard thread died during construction".into(),
            }))
        }
    }
}

/// How one engine incarnation ended.
enum IncarnationEnd {
    /// Clean shutdown (or a first build that failed and was already
    /// reported through the ready channel): the supervisor exits.
    Exit,
    /// The incarnation could not even be constructed; treated like a
    /// crash so the restart budget still bounds rebuild loops.
    Crashed(String),
}

/// The supervisor loop: runs engine incarnations under `catch_unwind`,
/// restarting with capped exponential backoff until the budget is spent.
fn supervise(
    index: usize,
    engine_settings: &EngineSettings,
    serving_settings: &ServingSettings,
    supervisor: &SupervisorSettings,
    shared: &Arc<ShardShared>,
    gauges: &ShardGauges,
    ready: Sender<Result<(), BuildError>>,
) {
    let mut ready = Some(ready);
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_incarnation(
                index,
                engine_settings,
                serving_settings,
                supervisor,
                shared,
                gauges,
                &mut ready,
            )
        }));
        let reason = match outcome {
            Ok(IncarnationEnd::Exit) => return,
            Ok(IncarnationEnd::Crashed(reason)) => reason,
            Err(payload) => panic_message(payload.as_ref()),
        };
        // The incarnation's receiver died with it; seal the sender so
        // submissions fail over instead of queueing into the void.
        shared.seal();
        let restarts = shared.restarts.fetch_add(1, Ordering::SeqCst) + 1;
        if shared.stopping.load(Ordering::SeqCst) {
            shared
                .state
                .store(ShardState::Failed.as_u8(), Ordering::SeqCst);
            return;
        }
        if restarts > supervisor.max_restarts {
            shared
                .state
                .store(ShardState::Failed.as_u8(), Ordering::SeqCst);
            eprintln!(
                "shard {index}: crashed ({reason}); restart budget of {} spent, marking failed",
                supervisor.max_restarts
            );
            return;
        }
        shared
            .state
            .store(ShardState::Restarting.as_u8(), Ordering::SeqCst);
        eprintln!(
            "shard {index}: crashed ({reason}); restart {restarts}/{}",
            supervisor.max_restarts
        );

        // Capped exponential backoff, sliced so shutdown stays responsive.
        let exponent = restarts.saturating_sub(1).min(6) as u32;
        let mut wait = Duration::from_millis(supervisor.backoff_ms.saturating_mul(1 << exponent))
            .min(MAX_RESTART_BACKOFF);
        while !wait.is_zero() {
            if shared.stopping.load(Ordering::SeqCst) {
                shared
                    .state
                    .store(ShardState::Failed.as_u8(), Ordering::SeqCst);
                return;
            }
            let slice = wait.min(BACKOFF_SLICE);
            std::thread::sleep(slice);
            wait -= slice;
        }
    }
}

/// Builds one engine incarnation, re-admits checkpointed sessions, opens a
/// fresh command channel, and runs the serve loop to completion.
fn run_incarnation(
    index: usize,
    engine_settings: &EngineSettings,
    serving_settings: &ServingSettings,
    supervisor: &SupervisorSettings,
    shared: &Arc<ShardShared>,
    gauges: &ShardGauges,
    ready: &mut Option<Sender<Result<(), BuildError>>>,
) -> IncarnationEnd {
    let engine = match build_engine(engine_settings) {
        Ok(engine) => engine,
        Err(e) => {
            return match ready.take() {
                // First build: report synchronously and die for good.
                Some(tx) => {
                    let _ = tx.send(Err(e));
                    IncarnationEnd::Exit
                }
                None => IncarnationEnd::Crashed(format!("engine rebuild failed: {e}")),
            };
        }
    };

    let mut config = serving_settings.to_serving_config();
    config.checkpoint_dir = supervisor.checkpoint_dir.clone();
    config.checkpoint_every_rounds = supervisor.checkpoint_every_rounds;
    config.fault_plan = supervisor.fault_plan.clone();
    let mut serving = ServingEngine::new(&engine, config);

    if let Some(dir) = &supervisor.checkpoint_dir {
        let report = serving.recover(dir);
        if !report.restored.is_empty() || !report.failed.is_empty() {
            eprintln!(
                "shard {index}: recovered {} checkpointed session(s), rejected {}",
                report.restored.len(),
                report.failed.len()
            );
        }
        shared
            .recovered
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .extend(report.restored);
    }

    // Fresh channel for this incarnation, installed before the shard is
    // announced live so no submission can race into a sealed sender.
    let (tx, rx) = mpsc::channel();
    *shared.tx.lock().unwrap_or_else(|p| p.into_inner()) = tx;
    shared
        .state
        .store(ShardState::Live.as_u8(), Ordering::SeqCst);
    if let Some(tx) = ready.take() {
        let _ = tx.send(Ok(()));
    }

    shard_loop(
        index,
        serving,
        rx,
        gauges,
        supervisor.fault_plan.as_deref(),
        &shared.stopping,
    );
    IncarnationEnd::Exit
}

/// Best-effort extraction of the panic payload for the restart log line.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic".to_string()
    }
}

fn shard_loop(
    index: usize,
    mut serving: ServingEngine<'_>,
    rx: Receiver<ShardCommand>,
    gauges: &ShardGauges,
    fault: Option<&FaultPlan>,
    stopping: &AtomicBool,
) {
    let mut paused = false;
    loop {
        // A shutdown issued while the supervisor was mid-restart never
        // reached a command channel; honor the flag directly.
        if stopping.load(Ordering::SeqCst) {
            publish(&serving, gauges);
            return;
        }
        // Drain every queued command first so submissions and control
        // never wait behind decode work.
        loop {
            match rx.try_recv() {
                Ok(cmd) => {
                    if handle_command(index, &mut serving, cmd, &mut paused, gauges) {
                        publish(&serving, gauges);
                        return;
                    }
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    publish(&serving, gauges);
                    return;
                }
            }
        }

        if !paused && !serving.is_idle() {
            if let Some(plan) = fault {
                let next_round = serving.rounds() + 1;
                if plan.should_panic(index, next_round) {
                    // analyze: allow(no-panic) — seeded fault injection: this panic IS the chaos test's payload
                    panic!("injected fault: shard {index} panics before round {next_round}");
                }
            }
            serving.serve_round();
        } else {
            // Nothing to decode (or paused): block briefly on the channel
            // instead of spinning.
            match rx.recv_timeout(IDLE_WAIT) {
                Ok(cmd) => {
                    if handle_command(index, &mut serving, cmd, &mut paused, gauges) {
                        publish(&serving, gauges);
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    publish(&serving, gauges);
                    return;
                }
            }
        }
        publish(&serving, gauges);
    }
}

/// Executes one command; returns `true` when the shard should exit.
fn handle_command(
    index: usize,
    serving: &mut ServingEngine<'_>,
    cmd: ShardCommand,
    paused: &mut bool,
    gauges: &ShardGauges,
) -> bool {
    match cmd {
        ShardCommand::Submit { request, reply } => {
            let _ = reply.send(serving.submit(request));
        }
        ShardCommand::Snapshot { reply } => {
            let _ = reply.send(snapshot(index, serving, gauges));
        }
        ShardCommand::Requests { reply } => {
            let _ = reply.send(serving.request_table());
        }
        ShardCommand::Trace { reply } => {
            let _ = reply.send(serving.drain_trace_events());
        }
        ShardCommand::Drain { persist_dir, reply } => {
            let result = serving
                .drain(persist_dir.as_deref())
                .map_err(|e| e.to_string());
            gauges.draining.store(true, Ordering::Relaxed);
            let _ = reply.send(result);
        }
        ShardCommand::Pause(p) => *paused = p,
        ShardCommand::Step { rounds, reply } => {
            for _ in 0..rounds {
                serving.serve_round();
            }
            publish(serving, gauges);
            let _ = reply.send(());
        }
        ShardCommand::Shutdown => return true,
    }
    false
}

fn publish(serving: &ServingEngine<'_>, gauges: &ShardGauges) {
    gauges
        .resident
        .store(serving.resident_sessions(), Ordering::Relaxed);
    gauges
        .queued
        .store(serving.queued_requests(), Ordering::Relaxed);
    gauges.kv_bytes.store(serving.kv_bytes(), Ordering::Relaxed);
    gauges
        .prefilling
        .store(serving.prefilling_sessions(), Ordering::Relaxed);
    gauges
        .prefill_tokens_remaining
        .store(serving.prefill_tokens_remaining(), Ordering::Relaxed);
    gauges.rounds.store(serving.rounds(), Ordering::Relaxed);
    gauges
        .draining
        .store(serving.is_draining(), Ordering::Relaxed);
}

fn snapshot(index: usize, serving: &ServingEngine<'_>, gauges: &ShardGauges) -> ShardSnapshot {
    let store = serving.engine().store_stats();
    let dedup_ratio = store.as_ref().map(StoreStats::dedup_ratio).unwrap_or(1.0);
    ShardSnapshot {
        shard: index,
        rounds: serving.rounds(),
        queued: serving.queued_requests(),
        resident: serving.resident_sessions(),
        prefilling: serving.prefilling_sessions(),
        prefill_tokens_remaining: serving.prefill_tokens_remaining(),
        kv_bytes: serving.kv_bytes(),
        fleet_kv_bytes: serving.fleet_kv_bytes(),
        draining: gauges.draining.load(Ordering::Relaxed) || serving.is_draining(),
        stats: serving.stats(),
        store,
        dedup_ratio,
        telemetry: serving.telemetry(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use million::{GenerationOptions, TokenWait};
    use std::time::Instant;

    fn tiny() -> (EngineSettings, ServingSettings) {
        (
            EngineSettings {
                model: "tiny-test".into(),
                calibration_tokens: 96,
                async_quant: false,
                ..EngineSettings::default()
            },
            ServingSettings::default(),
        )
    }

    fn drain_handle(handle: &RequestHandle) -> Vec<u32> {
        let mut tokens = Vec::new();
        loop {
            match handle.recv_token(Duration::from_millis(200)) {
                TokenWait::Token(step) => tokens.push(step.token),
                TokenWait::Idle => {}
                TokenWait::Closed => break,
            }
        }
        tokens
    }

    #[test]
    fn shard_serves_a_request_end_to_end() {
        let (es, ss) = tiny();
        let shard = spawn_shard(0, es, ss, SupervisorSettings::default()).unwrap();
        let request = Request::new(vec![3, 9, 27, 81], GenerationOptions::max_tokens(6));
        let handle = shard.submit(request).unwrap();
        let tokens = drain_handle(&handle);
        assert_eq!(tokens.len(), 6);
        let report = handle.report().expect("report published");
        assert_eq!(report.tokens, tokens);
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.stats.completed, 1);
        assert_eq!(shard.state(), ShardState::Live);
        assert_eq!(shard.restarts(), 0);
        shard.shutdown();
    }

    #[test]
    fn paused_shard_queues_submissions_until_stepped() {
        let (es, ss) = tiny();
        let shard = spawn_shard(0, es, ss, SupervisorSettings::default()).unwrap();
        shard.pause(true);
        // Give the pause command time to land before submitting.
        let handle = shard
            .submit(Request::new(
                vec![5, 10, 20],
                GenerationOptions::max_tokens(3),
            ))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert!(handle.try_token().is_none(), "no decode while paused");
        let snap = shard.snapshot().unwrap();
        assert_eq!(snap.queued + snap.resident, 1);
        shard.step(4); // admit + 3 decode rounds
        let mut tokens = Vec::new();
        loop {
            match handle.recv_token(Duration::from_millis(200)) {
                TokenWait::Token(step) => tokens.push(step.token),
                TokenWait::Idle => break,
                TokenWait::Closed => break,
            }
        }
        assert_eq!(tokens.len(), 3);
        shard.shutdown();
    }

    #[test]
    fn spawn_reports_build_errors_synchronously() {
        let (mut es, ss) = tiny();
        es.model = "no-such-model".into();
        assert!(spawn_shard(0, es, ss, SupervisorSettings::default()).is_err());
    }

    /// The supervision tentpole, in miniature: an injected panic kills the
    /// incarnation mid-stream, the supervisor restarts it, and the
    /// checkpointed session continues bit-identically to an uninterrupted
    /// run on a fresh shard.
    #[test]
    fn injected_panic_restarts_the_shard_and_resumes_from_checkpoint() {
        let (es, ss) = tiny();
        let dir = std::env::temp_dir().join(format!(
            "serverd-supervise-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: the same request on an unsupervised shard.
        let baseline_shard =
            spawn_shard(0, es.clone(), ss.clone(), SupervisorSettings::default()).unwrap();
        let request = || Request::new(vec![3, 9, 27, 81, 11], GenerationOptions::max_tokens(8));
        let baseline = drain_handle(&baseline_shard.submit(request()).unwrap());
        assert_eq!(baseline.len(), 8);
        baseline_shard.shutdown();

        let plan = Arc::new(FaultPlan::parse("panic@shard=0,round=4", 7).unwrap());
        let supervisor = SupervisorSettings {
            backoff_ms: 10,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every_rounds: 1,
            fault_plan: Some(plan),
            ..SupervisorSettings::default()
        };
        let shard = spawn_shard(0, es, ss, supervisor).unwrap();
        let handle = shard.submit(request()).unwrap();
        let id = handle.id();

        // Round 1 admits, rounds 2-3 decode, the panic fires before round
        // 4: the stream dies after two tokens with no report.
        let streamed = drain_handle(&handle);
        assert_eq!(streamed, baseline[..streamed.len()], "prefix matches");
        assert!(handle.report().is_none(), "crash, not completion");

        // The supervisor restarts the shard and re-admits the checkpoint.
        let deadline = Instant::now() + Duration::from_secs(10);
        while shard.state() != ShardState::Live || shard.restarts() == 0 {
            assert!(
                Instant::now() < deadline,
                "shard restarts: {:?}",
                shard.state()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(shard.restarts(), 1);
        let recovered = shard
            .claim_recovered(id)
            .expect("checkpointed session re-admitted");
        assert!(
            recovered.recovered_tokens() <= streamed.len(),
            "checkpoint can only trail the stream"
        );

        // The recovered stream replays nothing the checkpoint already
        // held; skipping the overlap with what we streamed reconstructs
        // the uninterrupted run bit for bit.
        let continued = drain_handle(&recovered);
        let overlap = streamed.len() - recovered.recovered_tokens();
        let mut full = streamed.clone();
        full.extend(&continued[overlap..]);
        assert_eq!(full, baseline, "recovery is bit-identical");
        let report = recovered.report().expect("recovered session completes");
        assert_eq!(report.tokens, baseline);

        shard.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A crash beyond the restart budget leaves the shard permanently
    /// failed: submissions report `Down` and the health surface says so.
    #[test]
    fn restart_budget_exhaustion_marks_the_shard_failed() {
        let (es, ss) = tiny();
        let plan = Arc::new(FaultPlan::parse("panic@shard=0,round=2", 0).unwrap());
        let supervisor = SupervisorSettings {
            max_restarts: 0,
            backoff_ms: 1,
            fault_plan: Some(plan),
            ..SupervisorSettings::default()
        };
        let shard = spawn_shard(0, es, ss, supervisor).unwrap();
        let handle = shard
            .submit(Request::new(
                vec![5, 10, 20],
                GenerationOptions::max_tokens(4),
            ))
            .unwrap();
        let _ = drain_handle(&handle); // dies at the injected panic

        let deadline = Instant::now() + Duration::from_secs(10);
        while shard.state() != ShardState::Failed {
            assert!(Instant::now() < deadline, "shard fails permanently");
            std::thread::sleep(Duration::from_millis(5));
        }
        let err = shard
            .submit(Request::new(vec![1, 2], GenerationOptions::max_tokens(1)))
            .unwrap_err();
        assert!(matches!(err, ShardSubmitError::Down), "{err:?}");
        let health = shard.health();
        assert_eq!(health.state, ShardState::Failed);
        assert_eq!(health.restarts, 1);
        shard.shutdown();
    }
}
