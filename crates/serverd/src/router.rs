//! Prefix-affinity placement over N engine shards.
//!
//! Prefix sharing only deduplicates *within* one store, so the router's
//! job is to make sure sessions that could share blocks meet in the same
//! shard. Placement hashes the leading `affinity_tokens` prompt tokens
//! with [`million_store::token_chain_hash`] — the *same* two-lane chain
//! the store keys its prefix index by — so "same system prompt" maps to
//! "same home shard" by construction, and the affinity window aligns with
//! block granularity rather than an ad-hoc rehash of the bytes.
//!
//! Backpressure escalates in three stages: the home shard's verdict is
//! authoritative for request-shaped errors (empty prompt, too long,
//! draining); a `QueueFull` home spills to the least-loaded other shard
//! (giving up affinity to stay available); and when every shard is full
//! the request is shed with [`RouteError::Overloaded`], which the HTTP
//! layer turns into `429` + `Retry-After`.

use std::path::Path;
use std::time::Duration;

use million::fault::splitmix64;
use million::{DrainReport, Request, RequestHandle, RequestInfo, SubmitError};
use million_store::token_chain_hash;
use million_telemetry::Event;

use crate::shard::{ShardHandle, ShardHealth, ShardSnapshot, ShardState, ShardSubmitError};

/// Why the router could not place a request.
#[derive(Debug)]
pub enum RouteError {
    /// The request itself is unservable (the home shard's verdict).
    Rejected(SubmitError),
    /// Every shard is at capacity (or down): shed with `Retry-After`.
    Overloaded,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Rejected(e) => write!(f, "{e}"),
            RouteError::Overloaded => write!(f, "all shards are at capacity"),
        }
    }
}

/// The sharding router: owns the shard handles and places requests.
pub struct Router {
    shards: Vec<ShardHandle>,
    affinity_tokens: usize,
    spill: bool,
}

impl Router {
    /// Builds a router over `shards`. `affinity_tokens` is the placement
    /// window; `spill` enables overflow to other shards on `QueueFull`.
    pub fn new(shards: Vec<ShardHandle>, affinity_tokens: usize, spill: bool) -> Self {
        assert!(!shards.is_empty(), "router needs at least one shard");
        Self {
            shards,
            affinity_tokens,
            spill,
        }
    }

    /// Number of shards behind the router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to a shard handle (drain endpoint, tests).
    pub fn shard(&self, index: usize) -> &ShardHandle {
        &self.shards[index]
    }

    /// Home shard for `prompt`: the token-chain hash of its leading
    /// `affinity_tokens` tokens, folded over the shard count. Prompts
    /// sharing at least the affinity window always collide.
    pub fn place(&self, prompt: &[u32]) -> usize {
        let window = self.affinity_tokens.min(prompt.len());
        let hash = token_chain_hash(None, &prompt[..window]);
        ((hash[0] ^ hash[1]) % self.shards.len() as u64) as usize
    }

    /// Places and submits `request`. Returns the shard index it actually
    /// landed on (home, or a spill target) and the streaming handle.
    pub fn submit(&self, request: Request) -> Result<(usize, RequestHandle), RouteError> {
        let home = self.place(&request.prompt);
        let overflow = match self.shards[home].submit(request.clone()) {
            Ok(handle) => return Ok((home, handle)),
            // Only capacity rejections spill; request-shaped rejections
            // would fail identically everywhere.
            Err(ShardSubmitError::Rejected(SubmitError::QueueFull { .. }))
            | Err(ShardSubmitError::Down) => true,
            Err(ShardSubmitError::Rejected(e)) => return Err(RouteError::Rejected(e)),
        };
        if !overflow || !self.spill || self.shards.len() == 1 {
            return Err(RouteError::Overloaded);
        }

        // Spill order: every other shard, least loaded first.
        let mut order: Vec<usize> = (0..self.shards.len()).filter(|&i| i != home).collect();
        order.sort_by_key(|&i| self.shards[i].gauges().load());
        for idx in order {
            match self.shards[idx].submit(request.clone()) {
                Ok(handle) => return Ok((idx, handle)),
                Err(ShardSubmitError::Rejected(SubmitError::QueueFull { .. }))
                | Err(ShardSubmitError::Down) => continue,
                Err(ShardSubmitError::Rejected(e)) => return Err(RouteError::Rejected(e)),
            }
        }
        Err(RouteError::Overloaded)
    }

    /// [`Router::submit`] with a bounded retry loop: an overloaded verdict
    /// is retried up to `retries` times with exponential backoff plus a
    /// deterministic jitter drawn from `splitmix64(seed, attempt)`. This
    /// rides out the transient where a crashed shard's queue is gone and
    /// the survivors are momentarily full — request-shaped rejections
    /// still fail immediately.
    pub fn submit_with_retry(
        &self,
        request: Request,
        retries: u64,
        backoff_ms: u64,
        seed: u64,
    ) -> Result<(usize, RequestHandle), RouteError> {
        let mut attempt = 0u64;
        loop {
            match self.submit(request.clone()) {
                Err(RouteError::Overloaded) if attempt < retries => {
                    attempt += 1;
                    let exponent = (attempt - 1).min(6) as u32;
                    let base = backoff_ms.saturating_mul(1 << exponent);
                    let jitter = match backoff_ms {
                        0 => 0,
                        bound => splitmix64(seed ^ attempt) % bound,
                    };
                    std::thread::sleep(Duration::from_millis(base + jitter));
                }
                other => return other,
            }
        }
    }

    /// Supervision status of every shard — readable even for shards whose
    /// thread is down, so `/metrics` keeps reporting crashed shards.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards.iter().map(ShardHandle::health).collect()
    }

    /// Whether any shard is currently between crash and recovery (the
    /// window where its queued work has vanished).
    pub fn any_restarting(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.state() == ShardState::Restarting)
    }

    /// Snapshots every shard for `/metrics` (skips shards that died).
    pub fn snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards
            .iter()
            .filter_map(ShardHandle::snapshot)
            .collect()
    }

    /// Live request tables per shard for `/debug/requests` (skips shards
    /// that died).
    pub fn request_tables(&self) -> Vec<(usize, Vec<RequestInfo>)> {
        self.shards
            .iter()
            .filter_map(|shard| Some((shard.index(), shard.requests()?)))
            .collect()
    }

    /// Drains every shard's lifecycle journal for `/debug/trace`, keyed by
    /// shard index (the trace `pid`).
    pub fn traces(&self) -> Vec<(u64, Vec<Event>)> {
        self.shards
            .iter()
            .filter_map(|shard| Some((shard.index() as u64, shard.trace()?)))
            .collect()
    }

    /// Drains every shard in order; see [`million::ServingEngine::drain`].
    pub fn drain_all(&self, persist_dir: Option<&Path>) -> Vec<Result<DrainReport, String>> {
        self.shards
            .iter()
            .map(|shard| {
                let dir = persist_dir.map(|d| d.join(format!("shard-{}", shard.index())));
                shard.drain(dir)
            })
            .collect()
    }

    /// Stops and joins every shard thread.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use million::GenerationOptions;

    use crate::config::{EngineSettings, ServingSettings};
    use crate::shard::{spawn_shard, SupervisorSettings};

    fn tiny_router(shards: usize, queue_capacity: usize, max_resident: usize) -> Router {
        let engine = EngineSettings {
            model: "tiny-test".into(),
            calibration_tokens: 96,
            async_quant: false,
            ..EngineSettings::default()
        };
        let serving = ServingSettings {
            max_resident,
            queue_capacity,
            ..ServingSettings::default()
        };
        let handles = (0..shards)
            .map(|i| {
                spawn_shard(
                    i,
                    engine.clone(),
                    serving.clone(),
                    SupervisorSettings::default(),
                )
                .unwrap()
            })
            .collect();
        Router::new(handles, 4, true)
    }

    #[test]
    fn placement_is_deterministic_and_prefix_affine() {
        let router = tiny_router(3, 8, 4);
        let a = vec![1, 2, 3, 4, 50, 60];
        let b = vec![1, 2, 3, 4, 70, 80, 90]; // same 4-token window as `a`
        assert_eq!(router.place(&a), router.place(&b));
        assert_eq!(router.place(&a), router.place(&a));
        // Different windows spread across shards (not all on one shard).
        let placements: std::collections::HashSet<usize> = (0..32u32)
            .map(|s| router.place(&[s * 7 + 1, s * 11 + 2, s, s + 3]))
            .collect();
        assert!(placements.len() > 1, "placements {placements:?}");
        router.shutdown();
    }

    #[test]
    fn queue_full_spills_to_another_shard_then_sheds() {
        let router = tiny_router(2, 1, 1);
        // Pause both shards so nothing drains while we overfill.
        router.shard(0).pause(true);
        router.shard(1).pause(true);
        let prompt = vec![9, 8, 7, 6];
        let home = router.place(&prompt);
        let mk = || Request::new(prompt.clone(), GenerationOptions::max_tokens(2));

        // Capacity per shard while paused: queue_capacity = 1.
        let (s1, _h1) = router.submit(mk()).unwrap();
        assert_eq!(s1, home, "first lands at home");
        let (s2, _h2) = router.submit(mk()).unwrap();
        assert_ne!(s2, home, "overflow spills off-home");
        let err = router.submit(mk()).unwrap_err();
        assert!(matches!(err, RouteError::Overloaded), "third is shed");

        // Bad requests are rejected outright, never spilled.
        let err = router
            .submit(Request::new(vec![], GenerationOptions::max_tokens(2)))
            .unwrap_err();
        assert!(matches!(
            err,
            RouteError::Rejected(SubmitError::EmptyPrompt)
        ));
        router.shutdown();
    }
}
