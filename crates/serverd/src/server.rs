//! The serving front-end: a threaded `std::net` accept loop routing HTTP
//! requests onto the shard router.
//!
//! Endpoints:
//!
//! | Route                | Behavior                                            |
//! |----------------------|-----------------------------------------------------|
//! | `POST /v1/generate`  | Submit a generation request; stream tokens as SSE   |
//! |                      | (or one JSON document with `"stream": false`).      |
//! | `GET /metrics`       | Prometheus text exposition by default; the JSON     |
//! |                      | document under `Accept: application/json`.          |
//! | `GET /debug/requests` | Live per-shard request table (state, class,        |
//! |                      | tokens fed/generated, age).                         |
//! | `GET /debug/trace`   | Drain the lifecycle journals as Chrome trace JSON.  |
//! | `GET /config`        | The effective layered [`AppConfig`].                |
//! | `GET /healthz`       | Liveness probe.                                     |
//! | `POST /admin/drain`  | Drain every shard (finish or persist residents).    |
//! | `POST /admin/shutdown` | Drain, then stop the accept loop.                 |
//!
//! One thread per connection: parse, dispatch, write, close (`Connection:
//! close` on every response keeps the protocol state machine trivial).
//! A streaming connection is the *client's* representative inside the
//! server — when its socket dies mid-stream, the handler cancels the
//! request so the shard retires it at the next round boundary and the
//! slot refills from the queue.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use million::fault::splitmix64;
use million::{
    FaultPlan, GenerationOptions, QosClass, Request, RequestHandle, RequestInfo, SessionReport,
    StepResult, StopCriteria, SubmitError, TelemetrySnapshot, TokenWait,
};
use million_model::Sampler;
use million_telemetry::render_chrome_trace;

use crate::config::{AppConfig, ConfigError};
use crate::engine::BuildError;
use crate::http::{self, HttpRequest, ParseError};
use crate::prom;
use crate::router::{RouteError, Router};
use crate::shard::{spawn_shard, ShardHealth, ShardSnapshot, SupervisorSettings};

/// How long a streaming handler waits on the token channel per poll.
const TOKEN_POLL: Duration = Duration::from_millis(20);
/// Idle interval between SSE keep-alive pings (also the disconnect
/// detection period while no tokens flow).
const PING_EVERY: Duration = Duration::from_millis(100);
/// Bound on the deterministic jitter added to `retry_after_ms` in 429
/// bodies, so shed clients don't thunder back in lockstep.
const RETRY_JITTER_MS: u64 = 250;

/// Monotonic shed counter: the jitter salt for 429 bodies. Deterministic
/// for a deterministic request order (as in the seeded chaos tests).
static SHED_SEQ: AtomicU64 = AtomicU64::new(0);

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerdError {
    /// Configuration could not be assembled.
    Config(ConfigError),
    /// A shard engine failed to build.
    Build(BuildError),
    /// The listener could not bind.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerdError::Config(e) => write!(f, "{e}"),
            ServerdError::Build(e) => write!(f, "{e}"),
            ServerdError::Io(e) => write!(f, "listener: {e}"),
        }
    }
}

impl std::error::Error for ServerdError {}

impl From<ConfigError> for ServerdError {
    fn from(e: ConfigError) -> Self {
        ServerdError::Config(e)
    }
}

impl From<BuildError> for ServerdError {
    fn from(e: BuildError) -> Self {
        ServerdError::Build(e)
    }
}

impl From<std::io::Error> for ServerdError {
    fn from(e: std::io::Error) -> Self {
        ServerdError::Io(e)
    }
}

/// A bound, ready-to-run server: shards spawned, listener bound.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    router: Arc<Router>,
    config: Arc<AppConfig>,
    stop: Arc<AtomicBool>,
}

/// A cheap clone handed to whoever needs to stop or inspect a running
/// server (signal handlers, tests).
#[derive(Clone)]
pub struct ServerControl {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    router: Arc<Router>,
}

impl ServerControl {
    /// The bound address (with the real port when `listen` used port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard router (pause/step/drain access for tests and admin).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Stops the accept loop: sets the flag and pokes the listener with a
    /// throwaway connection so `accept` observes it.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Spawns `config.server.shards` supervised engine shards (building
    /// each model + codebooks on its own thread) and binds the listener.
    pub fn bind(config: AppConfig) -> Result<Server, ServerdError> {
        let checkpoint_base = (!config.server.checkpoint_dir.is_empty())
            .then(|| PathBuf::from(&config.server.checkpoint_dir));
        let mut shards = Vec::with_capacity(config.server.shards);
        for index in 0..config.server.shards {
            // Each shard gets its own plan instance: injection counters
            // (snapshot writes, submits) stay per-shard deterministic.
            let fault_plan = if config.fault.plan.is_empty() {
                None
            } else {
                let plan =
                    FaultPlan::parse(&config.fault.plan, config.fault.seed).map_err(|msg| {
                        ServerdError::Config(ConfigError::BadValue {
                            key: "fault.plan".into(),
                            msg,
                        })
                    })?;
                Some(Arc::new(plan))
            };
            let supervisor = SupervisorSettings {
                max_restarts: config.server.max_shard_restarts,
                backoff_ms: config.server.restart_backoff_ms,
                checkpoint_dir: checkpoint_base
                    .as_ref()
                    .map(|base| base.join(format!("shard-{index}"))),
                checkpoint_every_rounds: config.serving.checkpoint_every_rounds,
                fault_plan,
            };
            shards.push(spawn_shard(
                index,
                config.engine.clone(),
                config.serving.clone(),
                supervisor,
            )?);
        }
        let router = Arc::new(Router::new(
            shards,
            config.server.affinity_tokens,
            config.server.spill,
        ));
        let listener = TcpListener::bind(&config.server.listen)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            router,
            config: Arc::new(config),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle usable from other threads while `run` blocks.
    pub fn control(&self) -> ServerControl {
        ServerControl {
            addr: self.addr,
            stop: Arc::clone(&self.stop),
            router: Arc::clone(&self.router),
        }
    }

    /// Runs the accept loop until [`ServerControl::shutdown`], then joins
    /// every shard thread.
    pub fn run(self) -> std::io::Result<()> {
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let router = Arc::clone(&self.router);
            let config = Arc::clone(&self.config);
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                handle_connection(stream, &router, &config, &stop);
            });
        }
        self.router.shutdown();
        Ok(())
    }
}

fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    config: &AppConfig,
    stop: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    let request = match http::read_request(&mut stream, config.server.max_body_bytes) {
        Ok(request) => request,
        Err(ParseError::BodyTooLarge { declared, limit }) => {
            let body = error_json(
                "payload_too_large",
                &format!("body of {declared} bytes exceeds {limit}"),
            );
            let _ = http::respond_json(&mut stream, 413, "Payload Too Large", &body, &[]);
            return;
        }
        Err(e) => {
            let _ = http::respond_json(
                &mut stream,
                400,
                "Bad Request",
                &error_json("bad_request", &e.to_string()),
                &[],
            );
            return;
        }
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/generate") => generate(&mut stream, &request, router, config),
        ("GET", "/metrics") => metrics(&mut stream, &request, router),
        ("GET", "/debug/requests") => debug_requests(&mut stream, router),
        ("GET", "/debug/trace") => debug_trace(&mut stream, router),
        ("GET", "/config") => {
            let body = serde_json::to_string_pretty(config)
                .unwrap_or_else(|e| error_json("internal", &e.to_string()));
            let _ = http::respond_json(&mut stream, 200, "OK", &body, &[]);
        }
        ("GET", "/healthz") => {
            let _ = http::respond_json(&mut stream, 200, "OK", "{\"ok\": true}", &[]);
        }
        ("POST", "/admin/drain") => drain(&mut stream, &request, router),
        ("POST", "/admin/shutdown") => {
            for outcome in router.drain_all(None) {
                let _ = outcome;
            }
            let _ = http::respond_json(&mut stream, 200, "OK", "{\"draining\": true}", &[]);
            stop.store(true, Ordering::SeqCst);
            // Poke the accept loop so it observes the flag.
            if let Ok(addr) = stream.local_addr() {
                let _ = TcpStream::connect(addr);
            }
        }
        _ => {
            let _ = http::respond_json(
                &mut stream,
                404,
                "Not Found",
                &error_json(
                    "not_found",
                    &format!("no route for {} {}", request.method, request.path),
                ),
                &[],
            );
        }
    }
}

/// The typed error object every non-2xx JSON body (and the SSE `error`
/// frame) carries. Schema documented in docs/ROBUSTNESS.md.
#[derive(Serialize)]
struct ErrorInfo {
    /// Stable machine-readable code: `bad_request`, `not_found`,
    /// `payload_too_large`, `queue_full`, `draining`, `shard_failed`,
    /// `internal`.
    code: String,
    /// Human-readable detail.
    message: String,
    /// For `queue_full`: suggested client backoff, with deterministic
    /// jitter already applied.
    retry_after_ms: Option<u64>,
}

#[derive(Serialize)]
struct ErrorBody {
    error: ErrorInfo,
}

fn error_json(code: &str, message: &str) -> String {
    serde_json::to_string(&ErrorBody {
        error: ErrorInfo {
            code: code.to_string(),
            message: message.to_string(),
            retry_after_ms: None,
        },
    })
    .unwrap_or_else(|_| "{}".to_string())
}

/// The 429 body: `queue_full` plus a jittered `retry_after_ms` so shed
/// clients spread their retries. The jitter draw is `splitmix64` over the
/// fault seed and a monotonic shed counter — deterministic for a
/// deterministic request order.
fn shed_json(retry_after_s: u64, jitter_seed: u64) -> String {
    let salt = SHED_SEQ.fetch_add(1, Ordering::Relaxed);
    let jitter = splitmix64(jitter_seed ^ salt) % RETRY_JITTER_MS;
    serde_json::to_string(&ErrorBody {
        error: ErrorInfo {
            code: "queue_full".to_string(),
            message: "all shards are at capacity; retry later".to_string(),
            retry_after_ms: Some(retry_after_s * 1000 + jitter),
        },
    })
    .unwrap_or_else(|_| "{}".to_string())
}

/// The decoded body of `POST /v1/generate`.
struct GenerateBody {
    request: Request,
    stream: bool,
}

fn parse_generate(body: &[u8]) -> Result<GenerateBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}"))?;

    let prompt: Vec<u32> = value
        .get("prompt")
        .and_then(|p| p.as_array())
        .ok_or("missing `prompt` (array of token ids)")?
        .iter()
        .map(|t| {
            t.as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as u32)
                .ok_or("prompt tokens must be non-negative integers".to_string())
        })
        .collect::<Result<_, _>>()?;

    let max_new_tokens = value
        .get("max_new_tokens")
        .and_then(|v| v.as_f64())
        .map(|v| v as usize)
        .unwrap_or(16);
    let mut options = GenerationOptions::max_tokens(max_new_tokens);
    let mut stop = StopCriteria::none();
    if let Some(eos) = value.get("eos").and_then(|v| v.as_f64()) {
        stop = StopCriteria::eos(eos as u32);
    }
    if let Some(ids) = value.get("stop").and_then(|v| v.as_array()) {
        let ids: Vec<u32> = ids
            .iter()
            .filter_map(|v| v.as_f64())
            .map(|v| v as u32)
            .collect();
        stop = stop.with_stop_ids(ids);
    }
    options = options.with_stop(stop);

    let class = match value.get("class").and_then(|v| v.as_str()) {
        None | Some("standard") => QosClass::Standard,
        Some("interactive") => QosClass::Interactive,
        Some("background") => QosClass::Background,
        Some(other) => return Err(format!("unknown class `{other}`")),
    };

    let sampler = match (
        value.get("temperature").and_then(|v| v.as_f64()),
        value.get("top_k").and_then(|v| v.as_f64()),
    ) {
        (None, None) => Sampler::greedy(),
        (temperature, top_k) => {
            let seed = value.get("seed").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
            Sampler::top_k(
                temperature.unwrap_or(1.0) as f32,
                top_k.unwrap_or(40.0) as usize,
                seed,
            )
        }
    };

    let mut request = Request::new(prompt, options)
        .with_sampler(sampler)
        .with_class(class);
    if let Some(deadline) = value.get("deadline_ms").and_then(|v| v.as_f64()) {
        request = request.with_deadline_ms(deadline as u64);
    }

    let stream = value
        .get("stream")
        .and_then(|v| match v {
            serde_json::Value::Bool(b) => Some(*b),
            _ => None,
        })
        .unwrap_or(true);

    Ok(GenerateBody { request, stream })
}

fn generate(
    stream: &mut TcpStream,
    http_request: &HttpRequest,
    router: &Router,
    config: &AppConfig,
) {
    let body = match parse_generate(&http_request.body) {
        Ok(body) => body,
        Err(msg) => {
            let _ = http::respond_json(
                stream,
                400,
                "Bad Request",
                &error_json("bad_request", &msg),
                &[],
            );
            return;
        }
    };

    let placed = router.submit_with_retry(
        body.request,
        config.server.submit_retries,
        config.server.submit_retry_backoff_ms,
        config.fault.seed,
    );
    let (shard, handle) = match placed {
        Ok(placed) => placed,
        Err(RouteError::Overloaded) => {
            let retry = config.server.retry_after_s.to_string();
            let _ = http::respond_json(
                stream,
                429,
                "Too Many Requests",
                &shed_json(config.server.retry_after_s, config.fault.seed),
                &[("Retry-After", retry.as_str())],
            );
            return;
        }
        Err(RouteError::Rejected(e)) => {
            let (status, reason, code) = match e {
                SubmitError::Draining => (503, "Service Unavailable", "draining"),
                _ => (400, "Bad Request", "bad_request"),
            };
            let _ = http::respond_json(
                stream,
                status,
                reason,
                &error_json(code, &e.to_string()),
                &[],
            );
            return;
        }
    };

    if body.stream {
        stream_sse(stream, shard, &handle);
    } else {
        collect_json(stream, shard, &handle);
    }
}

/// One streamed token frame: the engine's [`StepResult`] plus routing
/// context.
#[derive(Serialize)]
struct TokenFrame {
    request: u64,
    shard: usize,
    step: StepResult,
}

/// The terminal frame of a stream / the body of a non-streamed response.
#[derive(Serialize)]
struct DoneFrame {
    request: u64,
    shard: usize,
    tokens: Vec<u32>,
    report: Option<SessionReport>,
}

/// The terminal frame of a stream whose shard crashed: the token channel
/// closed without a final report. Sent as SSE event name `error`.
#[derive(Serialize)]
struct StreamError {
    request: u64,
    shard: usize,
    error: ErrorInfo,
}

fn stream_sse(stream: &mut TcpStream, shard: usize, handle: &RequestHandle) {
    if http::start_sse(stream).is_err() {
        handle.cancel();
        return;
    }
    let mut tokens: Vec<u32> = Vec::new();
    let mut last_write = Instant::now();
    loop {
        match handle.recv_token(TOKEN_POLL) {
            TokenWait::Token(step) => {
                tokens.push(step.token);
                let frame = TokenFrame {
                    request: handle.id().as_u64(),
                    shard,
                    step,
                };
                let data = serde_json::to_string(&frame).unwrap_or_default();
                if http::sse_event(stream, "token", &data).is_err() {
                    // The client is gone: release the slot at the next
                    // round boundary.
                    handle.cancel();
                    return;
                }
                last_write = Instant::now();
            }
            TokenWait::Idle => {
                if last_write.elapsed() >= PING_EVERY {
                    if http::sse_ping(stream).is_err() {
                        handle.cancel();
                        return;
                    }
                    last_write = Instant::now();
                }
            }
            TokenWait::Closed => {
                let report = handle.report();
                if report.is_none() {
                    // The shard died under this stream: the channel closed
                    // without a final report. End the stream with a typed
                    // `error` frame instead of a bogus `done`.
                    let frame = StreamError {
                        request: handle.id().as_u64(),
                        shard,
                        error: ErrorInfo {
                            code: "shard_failed".to_string(),
                            message: format!("shard {shard} crashed mid-stream"),
                            retry_after_ms: None,
                        },
                    };
                    let data = serde_json::to_string(&frame).unwrap_or_default();
                    let _ = http::sse_event(stream, "error", &data);
                    return;
                }
                let frame = DoneFrame {
                    request: handle.id().as_u64(),
                    shard,
                    tokens,
                    report,
                };
                let data = serde_json::to_string(&frame).unwrap_or_default();
                let _ = http::sse_event(stream, "done", &data);
                return;
            }
        }
    }
}

fn collect_json(stream: &mut TcpStream, shard: usize, handle: &RequestHandle) {
    let mut tokens: Vec<u32> = Vec::new();
    loop {
        match handle.recv_token(TOKEN_POLL) {
            TokenWait::Token(step) => tokens.push(step.token),
            TokenWait::Idle => {}
            TokenWait::Closed => break,
        }
    }
    let report = handle.report();
    if report.is_none() {
        // Channel closed without a final report: the shard crashed.
        let _ = http::respond_json(
            stream,
            502,
            "Bad Gateway",
            &error_json(
                "shard_failed",
                &format!("shard {shard} crashed before completing the request"),
            ),
            &[],
        );
        return;
    }
    let frame = DoneFrame {
        request: handle.id().as_u64(),
        shard,
        tokens,
        report,
    };
    let body = serde_json::to_string(&frame).unwrap_or_default();
    let _ = http::respond_json(stream, 200, "OK", &body, &[]);
}

/// Aggregates over every shard for the `/metrics` document.
#[derive(Serialize)]
struct Totals {
    shards: usize,
    submitted: u64,
    completed: u64,
    cancelled: u64,
    timed_out: u64,
    rejected: u64,
    queued: usize,
    resident: usize,
    prefilling: usize,
    prefill_tokens_remaining: usize,
    prefill_chunks: u64,
    kv_bytes: usize,
    fleet_kv_bytes: usize,
    max_dedup_ratio: f64,
}

#[derive(Serialize)]
struct MetricsDoc {
    totals: Totals,
    telemetry: TelemetrySnapshot,
    /// Supervision status per shard — present even for shards whose
    /// thread is down (unlike `shards`, which skips them).
    health: Vec<ShardHealth>,
    shards: Vec<ShardSnapshot>,
}

/// `GET /metrics` is content-negotiated: Prometheus text exposition by
/// default (what a scraper sends `Accept: text/plain` or nothing for),
/// the structured JSON document when the client asks for
/// `application/json`.
fn metrics(stream: &mut TcpStream, request: &HttpRequest, router: &Router) {
    let shards = router.snapshots();
    let health = router.health();
    let wants_json = request
        .header("accept")
        .is_some_and(|accept| accept.contains("application/json"));
    if !wants_json {
        let body = prom::render(&shards, &health);
        let _ = http::respond(
            stream,
            200,
            "OK",
            prom::PROMETHEUS_CONTENT_TYPE,
            body.as_bytes(),
            &[],
        );
        return;
    }
    let totals = Totals {
        shards: shards.len(),
        submitted: shards.iter().map(|s| s.stats.submitted).sum(),
        completed: shards.iter().map(|s| s.stats.completed).sum(),
        cancelled: shards.iter().map(|s| s.stats.cancelled).sum(),
        timed_out: shards.iter().map(|s| s.stats.timed_out).sum(),
        rejected: shards.iter().map(|s| s.stats.rejected).sum(),
        queued: shards.iter().map(|s| s.queued).sum(),
        resident: shards.iter().map(|s| s.resident).sum(),
        prefilling: shards.iter().map(|s| s.prefilling).sum(),
        prefill_tokens_remaining: shards.iter().map(|s| s.prefill_tokens_remaining).sum(),
        prefill_chunks: shards.iter().map(|s| s.stats.prefill_chunks).sum(),
        kv_bytes: shards.iter().map(|s| s.kv_bytes).sum(),
        fleet_kv_bytes: shards.iter().map(|s| s.fleet_kv_bytes).sum(),
        max_dedup_ratio: shards.iter().map(|s| s.dedup_ratio).fold(0.0, f64::max),
    };
    let doc = MetricsDoc {
        totals,
        telemetry: prom::fleet_telemetry(&shards),
        health,
        shards,
    };
    let body = serde_json::to_string_pretty(&doc)
        .unwrap_or_else(|e| error_json("internal", &e.to_string()));
    let _ = http::respond_json(stream, 200, "OK", &body, &[]);
}

/// One shard's rows in the `/debug/requests` document.
#[derive(Serialize)]
struct ShardRequests {
    shard: usize,
    requests: Vec<RequestInfo>,
}

fn debug_requests(stream: &mut TcpStream, router: &Router) {
    let shards: Vec<ShardRequests> = router
        .request_tables()
        .into_iter()
        .map(|(shard, requests)| ShardRequests { shard, requests })
        .collect();
    let body = serde_json::to_string_pretty(&shards)
        .unwrap_or_else(|e| error_json("internal", &e.to_string()));
    let _ = http::respond_json(stream, 200, "OK", &body, &[]);
}

/// Drains every shard's lifecycle journal and renders it as a Chrome
/// trace-event document (each shard a `pid`, each request a `tid`).
/// Draining is destructive: events appear in exactly one response.
fn debug_trace(stream: &mut TcpStream, router: &Router) {
    let body = render_chrome_trace(&router.traces());
    let _ = http::respond_json(stream, 200, "OK", &body, &[]);
}

/// One shard's drain outcome in the `/admin/drain` response.
#[derive(Serialize)]
struct DrainOutcome {
    shard: usize,
    ok: bool,
    shed_queued: usize,
    finished: usize,
    persisted: usize,
    rounds: u64,
    error: Option<String>,
}

fn drain(stream: &mut TcpStream, request: &HttpRequest, router: &Router) {
    let persist_dir: Option<PathBuf> = if request.body.is_empty() {
        None
    } else {
        match std::str::from_utf8(&request.body)
            .ok()
            .and_then(|t| serde_json::from_str(t).ok())
        {
            Some(value) => value
                .get("persist_dir")
                .and_then(|v| v.as_str().map(PathBuf::from)),
            None => {
                let _ = http::respond_json(
                    stream,
                    400,
                    "Bad Request",
                    &error_json("bad_request", "bad JSON"),
                    &[],
                );
                return;
            }
        }
    };

    let outcomes: Vec<DrainOutcome> = router
        .drain_all(persist_dir.as_deref())
        .into_iter()
        .enumerate()
        .map(|(shard, result)| match result {
            Ok(report) => DrainOutcome {
                shard,
                ok: true,
                shed_queued: report.shed_queued,
                finished: report.finished,
                persisted: report.persisted.len(),
                rounds: report.rounds,
                error: None,
            },
            Err(e) => DrainOutcome {
                shard,
                ok: false,
                shed_queued: 0,
                finished: 0,
                persisted: 0,
                rounds: 0,
                error: Some(e),
            },
        })
        .collect();
    let body = serde_json::to_string_pretty(&outcomes).unwrap_or_default();
    let _ = http::respond_json(stream, 200, "OK", &body, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_body_parses_all_fields() {
        let body = parse_generate(
            br#"{"prompt": [1, 2, 3], "max_new_tokens": 4, "class": "interactive",
                 "deadline_ms": 250, "eos": 0, "stop": [5], "stream": false,
                 "temperature": 0.5, "top_k": 8, "seed": 9}"#,
        )
        .unwrap();
        assert_eq!(body.request.prompt, vec![1, 2, 3]);
        assert_eq!(body.request.options.max_new_tokens, 4);
        assert_eq!(body.request.class, QosClass::Interactive);
        assert_eq!(body.request.deadline_ms, Some(250));
        assert!(body.request.options.stop.matches(0));
        assert!(body.request.options.stop.matches(5));
        assert!(!body.stream);
    }

    #[test]
    fn generate_body_defaults_and_rejections() {
        let body = parse_generate(br#"{"prompt": [7]}"#).unwrap();
        assert_eq!(body.request.options.max_new_tokens, 16);
        assert_eq!(body.request.class, QosClass::Standard);
        assert!(body.stream, "streaming is the default");
        assert!(parse_generate(b"{}").is_err(), "prompt is required");
        assert!(parse_generate(b"not json").is_err());
        assert!(
            parse_generate(br#"{"prompt": [-1]}"#).is_err(),
            "negative tokens rejected"
        );
        assert!(parse_generate(br#"{"prompt": [1], "class": "vip"}"#).is_err());
    }
}
