//! Prometheus text exposition of the fleet's metrics.
//!
//! Renders the same [`ShardSnapshot`]s the JSON `/metrics` document
//! carries into text-exposition format 0.0.4: every serving counter,
//! load gauge, store counter, and latency histogram appears once per
//! shard (`shard="0"`, `shard="1"`, …) and once summed over the fleet
//! (`shard="fleet"`). Histograms are exported in **seconds** with
//! cumulative log2 `le` bounds; counts and sums stay exact because the
//! underlying buckets are merged before rendering, never re-sampled.
//!
//! All metric names carry the `million_` prefix. The renderer is pure
//! formatting over snapshots already fetched — it takes no locks and
//! performs no channel round-trips of its own.

use million::{HistogramReport, QosClass, RoundPhase, TelemetrySnapshot};
use million_telemetry::PromWriter;

pub use million_telemetry::PROMETHEUS_CONTENT_TYPE;

use crate::shard::{ShardHealth, ShardSnapshot};

fn shard_label(shard: usize) -> String {
    format!("shard=\"{shard}\"")
}

const FLEET: &str = "shard=\"fleet\"";

/// One counter metric: a row per shard plus the fleet sum.
fn counter(
    w: &mut PromWriter,
    shards: &[ShardSnapshot],
    name: &str,
    help: &str,
    pick: impl Fn(&ShardSnapshot) -> u64,
) {
    w.header(name, "counter", help);
    for s in shards {
        w.int_value(name, &shard_label(s.shard), pick(s));
    }
    w.int_value(name, FLEET, shards.iter().map(pick).sum());
}

/// One integer gauge metric: a row per shard plus the fleet sum.
fn gauge(
    w: &mut PromWriter,
    shards: &[ShardSnapshot],
    name: &str,
    help: &str,
    pick: impl Fn(&ShardSnapshot) -> u64,
) {
    w.header(name, "gauge", help);
    for s in shards {
        w.int_value(name, &shard_label(s.shard), pick(s));
    }
    w.int_value(name, FLEET, shards.iter().map(pick).sum());
}

/// One per-class counter: a row per shard per QoS class, plus per-class
/// fleet sums.
fn class_counter(
    w: &mut PromWriter,
    shards: &[ShardSnapshot],
    name: &str,
    help: &str,
    pick: impl Fn(&ShardSnapshot, usize) -> u64,
) {
    w.header(name, "counter", help);
    for s in shards {
        for class in QosClass::ALL {
            let labels = format!("shard=\"{}\",class=\"{}\"", s.shard, class.name());
            w.int_value(name, &labels, pick(s, class.index()));
        }
    }
    for class in QosClass::ALL {
        let labels = format!("{FLEET},class=\"{}\"", class.name());
        let total = shards.iter().map(|s| pick(s, class.index())).sum();
        w.int_value(name, &labels, total);
    }
}

/// One latency histogram: a cumulative series per shard plus the merged
/// fleet series.
fn histogram(
    w: &mut PromWriter,
    shards: &[ShardSnapshot],
    fleet: &TelemetrySnapshot,
    name: &str,
    help: &str,
    pick: impl Fn(&TelemetrySnapshot) -> &HistogramReport,
) {
    w.header(name, "histogram", help);
    for s in shards {
        w.histogram(
            name,
            &shard_label(s.shard),
            &pick(&s.telemetry).to_snapshot(),
        );
    }
    w.histogram(name, FLEET, &pick(fleet).to_snapshot());
}

/// Merges every shard's telemetry into the fleet-total snapshot.
pub fn fleet_telemetry(shards: &[ShardSnapshot]) -> TelemetrySnapshot {
    let mut fleet = TelemetrySnapshot::empty();
    for s in shards {
        fleet.merge(&s.telemetry);
    }
    fleet
}

/// Renders the full scrape body for `GET /metrics`.
///
/// `shards` carries one snapshot per *responsive* shard; `health` carries
/// one supervision row per *configured* shard, so crashed shards stay
/// visible in the supervision series even while their snapshot is absent.
pub fn render(shards: &[ShardSnapshot], health: &[ShardHealth]) -> String {
    let fleet = fleet_telemetry(shards);
    let mut w = PromWriter::new();

    // Supervision series come from the health rows, not the snapshots:
    // a dead shard answers no snapshot request but its atomics still read.
    w.header(
        "million_shard_state",
        "gauge",
        "Supervision state per shard (0 = live, 1 = restarting, 2 = failed).",
    );
    for h in health {
        w.int_value(
            "million_shard_state",
            &shard_label(h.shard),
            h.state.gauge_value(),
        );
    }
    w.header(
        "million_shard_restarts_total",
        "counter",
        "Times the supervisor restarted a crashed shard.",
    );
    for h in health {
        w.int_value(
            "million_shard_restarts_total",
            &shard_label(h.shard),
            h.restarts,
        );
    }
    w.int_value(
        "million_shard_restarts_total",
        FLEET,
        health.iter().map(|h| h.restarts).sum(),
    );

    // Serving lifecycle counters.
    counter(
        &mut w,
        shards,
        "million_requests_submitted_total",
        "Requests accepted into a pending queue.",
        |s| s.stats.submitted,
    );
    counter(
        &mut w,
        shards,
        "million_requests_admitted_total",
        "Requests admitted to a resident decode slot.",
        |s| s.stats.admitted,
    );
    counter(
        &mut w,
        shards,
        "million_requests_completed_total",
        "Requests retired after completing.",
        |s| s.stats.completed,
    );
    counter(
        &mut w,
        shards,
        "million_requests_cancelled_total",
        "Requests retired by client cancellation.",
        |s| s.stats.cancelled,
    );
    counter(
        &mut w,
        shards,
        "million_requests_timed_out_total",
        "Requests retired by a missed deadline.",
        |s| s.stats.timed_out,
    );
    counter(
        &mut w,
        shards,
        "million_requests_rejected_total",
        "Submissions rejected with a full queue.",
        |s| s.stats.rejected,
    );
    counter(
        &mut w,
        shards,
        "million_rounds_total",
        "Scheduling rounds served.",
        |s| s.stats.rounds,
    );
    counter(
        &mut w,
        shards,
        "million_prefill_chunks_total",
        "Prefill chunks executed (a monolithic admission counts as one).",
        |s| s.stats.prefill_chunks,
    );
    class_counter(
        &mut w,
        shards,
        "million_tokens_total",
        "Decode tokens produced, by QoS class.",
        |s, i| s.stats.tokens_by_class[i],
    );
    class_counter(
        &mut w,
        shards,
        "million_prefill_tokens_total",
        "Prompt tokens prefilled, by QoS class.",
        |s, i| s.stats.prefill_tokens_by_class[i],
    );
    counter(
        &mut w,
        shards,
        "million_snapshot_writes_total",
        "Session checkpoints durably written (temp + fsync + rename).",
        |s| s.stats.snapshot_writes,
    );
    counter(
        &mut w,
        shards,
        "million_snapshot_crc_failures_total",
        "Checkpoint restores rejected for corruption (bad magic, CRC, or truncation).",
        |s| s.stats.snapshot_crc_failures,
    );
    counter(
        &mut w,
        shards,
        "million_journal_events_total",
        "Request-lifecycle events recorded.",
        |s| s.telemetry.journal_total,
    );
    counter(
        &mut w,
        shards,
        "million_journal_dropped_total",
        "Lifecycle events evicted from the full journal ring.",
        |s| s.telemetry.journal_dropped,
    );

    // Load gauges.
    gauge(
        &mut w,
        shards,
        "million_queued_requests",
        "Requests waiting in the pending queue.",
        |s| s.queued as u64,
    );
    gauge(
        &mut w,
        shards,
        "million_resident_sessions",
        "Sessions holding a decode slot.",
        |s| s.resident as u64,
    );
    gauge(
        &mut w,
        shards,
        "million_prefilling_sessions",
        "Residents still admitting their prompt in chunks.",
        |s| s.prefilling as u64,
    );
    gauge(
        &mut w,
        shards,
        "million_prefill_tokens_remaining",
        "Prompt tokens still to be prefilled across prefilling residents.",
        |s| s.prefill_tokens_remaining as u64,
    );
    gauge(
        &mut w,
        shards,
        "million_kv_bytes",
        "Quantized KV bytes across live sessions (shared blocks counted once per session).",
        |s| s.kv_bytes as u64,
    );
    gauge(
        &mut w,
        shards,
        "million_fleet_kv_bytes",
        "KV bytes resident in the store (shared blocks counted once) plus full-precision tails.",
        |s| s.fleet_kv_bytes as u64,
    );
    gauge(
        &mut w,
        shards,
        "million_draining",
        "Whether admission is closed (1 = draining).",
        |s| u64::from(s.draining),
    );
    gauge(
        &mut w,
        shards,
        "million_telemetry_enabled",
        "Whether the latency instruments are recording (1 = on).",
        |s| u64::from(s.telemetry.enabled),
    );

    // Store counters/gauges, for shards running a block store.
    let stored: Vec<&ShardSnapshot> = shards.iter().filter(|s| s.store.is_some()).collect();
    if !stored.is_empty() {
        let store_gauge = |w: &mut PromWriter,
                           name: &str,
                           help: &str,
                           pick: &dyn Fn(&million::StoreStats) -> u64| {
            w.header(name, "gauge", help);
            let mut total = 0u64;
            for s in &stored {
                let v = pick(s.store.as_ref().expect("filtered on store"));
                w.int_value(name, &shard_label(s.shard), v);
                total += v;
            }
            w.int_value(name, FLEET, total);
        };
        store_gauge(
            &mut w,
            "million_store_live_blocks",
            "PQ blocks currently resident in the store.",
            &|st| st.live_blocks as u64,
        );
        store_gauge(
            &mut w,
            "million_store_resident_bytes",
            "Packed code bytes resident (each block counted once).",
            &|st| st.resident_bytes as u64,
        );
        store_gauge(
            &mut w,
            "million_store_shared_blocks",
            "Resident blocks referenced by two or more sessions.",
            &|st| st.shared_blocks as u64,
        );
        store_gauge(
            &mut w,
            "million_store_cached_blocks",
            "Zero-reference blocks retained under the byte budget.",
            &|st| st.cached_blocks as u64,
        );
        store_gauge(
            &mut w,
            "million_store_attach_hits",
            "Blocks attached at admission via a prefix hit.",
            &|st| st.attach_hits as u64,
        );
        store_gauge(
            &mut w,
            "million_store_dedup_hits",
            "Publishes that converged on an identical resident block.",
            &|st| st.dedup_hits as u64,
        );
        store_gauge(
            &mut w,
            "million_store_evicted_blocks",
            "Blocks evicted from the slab for any reason.",
            &|st| st.evicted as u64,
        );

        w.header("million_store_dedup_ratio", "gauge", "Logical bytes referenced over physical store bytes (> 1 when prefix sharing deduplicates).");
        for s in &stored {
            w.value(
                "million_store_dedup_ratio",
                &shard_label(s.shard),
                s.dedup_ratio,
            );
        }
        let max = stored.iter().map(|s| s.dedup_ratio).fold(0.0, f64::max);
        w.value("million_store_dedup_ratio", FLEET, max);
    }

    // Latency histograms (seconds, cumulative log2 bounds).
    histogram(
        &mut w,
        shards,
        &fleet,
        "million_ttft_seconds",
        "Submission to first decode token.",
        |t| &t.ttft,
    );
    histogram(
        &mut w,
        shards,
        &fleet,
        "million_inter_token_seconds",
        "Gap between consecutive decode tokens of one request.",
        |t| &t.inter_token,
    );
    histogram(
        &mut w,
        shards,
        &fleet,
        "million_queue_wait_seconds",
        "Submission to admission into a resident slot.",
        |t| &t.queue_wait,
    );
    histogram(
        &mut w,
        shards,
        &fleet,
        "million_request_duration_seconds",
        "Submission to retirement, end to end.",
        |t| &t.e2e,
    );

    w.header(
        "million_round_phase_seconds",
        "histogram",
        "Duration of each serve_round phase (retire, admit, prefill_chunk, decode).",
    );
    for phase in RoundPhase::ALL {
        for s in shards {
            let labels = format!("shard=\"{}\",phase=\"{}\"", s.shard, phase.name());
            w.histogram(
                "million_round_phase_seconds",
                &labels,
                &s.telemetry.phases[phase.index()].to_snapshot(),
            );
        }
        let labels = format!("{FLEET},phase=\"{}\"", phase.name());
        w.histogram(
            "million_round_phase_seconds",
            &labels,
            &fleet.phases[phase.index()].to_snapshot(),
        );
    }

    w.finish()
}
