//! A minimal HTTP/1.1 layer over `std::net` — request parsing, plain
//! responses, and Server-Sent Event streaming.
//!
//! The build vendors no async runtime or HTTP stack, and none is needed:
//! each connection is owned by one thread, requests are small JSON bodies,
//! and responses either fit in one write or stream as SSE frames. The
//! parser handles exactly what the front-end serves — a request line,
//! headers, and an optional `Content-Length` body — and rejects everything
//! else (chunked uploads, HTTP/2 preambles) with a clean error rather than
//! guessing.
//!
//! Client disconnects surface as write errors: SSE frames are flushed per
//! event (and interleaved with `: ping` comments while a stream is idle),
//! so a vanished reader fails the next write within one keep-alive period
//! and the connection handler can cancel the request it was streaming.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request head (request line + headers): generous for any
/// real client, small enough that a garbage stream cannot balloon memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request path including any query string, e.g. `/v1/generate`.
    pub path: String,
    /// Header `(name, value)` pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let needle = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == needle)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// The socket failed or closed mid-request.
    Io(io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds the configured limit.
    BodyTooLarge {
        /// Bytes the client declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "socket error: {e}"),
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads and parses one request from `stream`, enforcing `max_body_bytes`.
pub fn read_request(
    stream: &mut TcpStream,
    max_body_bytes: usize,
) -> Result<HttpRequest, ParseError> {
    // Accumulate until the blank line ending the head. Reads are
    // byte-buffered locally; anything past the head is body prefix.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("request head too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ParseError::Malformed("connection closed mid-head".into()));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
    };

    let head = std::str::from_utf8(buf.get(..head_end).unwrap_or_default())
        .map_err(|_| ParseError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| ParseError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing path".into()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = HttpRequest {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Malformed(
            "chunked request bodies are not supported".into(),
        ));
    }

    let declared: usize = match request.header("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| ParseError::Malformed(format!("bad content-length `{v}`")))?,
        None => 0,
    };
    if declared > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared,
            limit: max_body_bytes,
        });
    }

    // Body bytes already read past the head, then the remainder.
    let mut body = buf.get(head_end + 4..).unwrap_or_default().to_vec();
    while body.len() < declared {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ParseError::Malformed("connection closed mid-body".into()));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or_default());
    }
    body.truncate(declared);

    Ok(HttpRequest { body, ..request })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a complete response with `Content-Length` and `Connection:
/// close`. `extra` headers are appended verbatim.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    extra: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience for a JSON body.
pub fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    respond(
        stream,
        status,
        reason,
        "application/json",
        body.as_bytes(),
        extra,
    )
}

/// Starts a Server-Sent Events response. Subsequent frames go through
/// [`sse_event`] / [`sse_ping`]; the stream ends when the connection
/// closes (`Connection: close`, no `Content-Length`).
pub fn start_sse(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Writes one SSE frame: `event: <event>` + `data: <data>` + blank line.
/// `data` must be a single line (JSON is).
pub fn sse_event(stream: &mut TcpStream, event: &str, data: &str) -> io::Result<()> {
    stream.write_all(format!("event: {event}\ndata: {data}\n\n").as_bytes())?;
    stream.flush()
}

/// Writes an SSE comment frame — a keep-alive that doubles as disconnect
/// detection while a stream is idle.
pub fn sse_ping(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(b": ping\n\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs the parser against raw bytes by pushing them through a real
    /// loopback socket, mirroring production conditions.
    fn parse_bytes(bytes: &[u8], max_body: usize) -> Result<HttpRequest, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let result = read_request(&mut conn, max_body);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_request_line_headers_and_body() {
        let req = parse_bytes(
            b"POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"a\": [1,2]}",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/generate");
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.header("CONTENT-TYPE"), Some("application/json"));
        assert_eq!(
            req.body,
            b"{\"a\": [1,2]".to_vec(),
            "body honors content-length"
        );
    }

    #[test]
    fn rejects_oversized_and_malformed_requests() {
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 10),
            Err(ParseError::BodyTooLarge {
                declared: 999,
                limit: 10
            })
        ));
        assert!(matches!(
            parse_bytes(b"GARBAGE\r\n\r\n", 10),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET / HTTP/2.0\r\n\r\n", 10),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 10),
            Err(ParseError::Malformed(_))
        ));
    }
}
