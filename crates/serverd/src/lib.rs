//! # serverd — the networked serving front-end for MILLION
//!
//! [`million::ServingEngine`] gives one thread continuous-batching over
//! one engine; this crate puts a network in front of a *fleet* of them:
//!
//! - **[`http`]** — a hand-rolled HTTP/1.1 + SSE layer over `std::net`
//!   (the build vendors no async runtime, and a threaded server is all a
//!   simulator-backed engine needs).
//! - **[`config`]** — layered [`config::AppConfig`]: defaults → TOML file
//!   → `SERVERD_*` environment → CLI flags, with one typed dispatcher so
//!   every layer validates identically.
//! - **[`shard`]** — each shard is a thread owning a private engine +
//!   serving loop, driven by a command channel and publishing lock-free
//!   load gauges.
//! - **[`router`]** — prefix-affinity placement: prompts are hashed with
//!   the store's own token-chain hash over their leading tokens, so
//!   sessions sharing a system prompt land in the same shard's PQ store
//!   and deduplicate; `QueueFull` spills to the least-loaded shard, and a
//!   saturated fleet sheds with `429 Retry-After`.
//! - **[`server`]** — the accept loop and endpoints: `POST /v1/generate`
//!   (SSE token streaming, client-disconnect cancellation), `GET
//!   /metrics`, `GET /debug/requests`, `GET /debug/trace`, `GET /config`,
//!   `POST /admin/drain`, `POST /admin/shutdown`.
//! - **[`prom`]** — Prometheus text exposition of every counter, gauge,
//!   and latency histogram, per shard and fleet-total; the default
//!   `GET /metrics` body (JSON stays available under
//!   `Accept: application/json`).
//!
//! See `docs/SERVING.md` ("Network front-end & sharding") for the
//! protocol and `examples/networked_serving.rs` for an end-to-end driver.

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod http;
pub mod prom;
pub mod router;
pub mod server;
pub mod shard;

pub use config::{
    AppConfig, ConfigError, EngineSettings, FaultSettings, ServerSettings, ServingSettings,
};
pub use engine::{build_engine, BuildError};
pub use router::{RouteError, Router};
pub use server::{Server, ServerControl, ServerdError};
pub use shard::{
    spawn_shard, ShardGauges, ShardHandle, ShardHealth, ShardSnapshot, ShardState,
    ShardSubmitError, SupervisorSettings,
};
