//! Layered configuration for `serverd`.
//!
//! The effective [`AppConfig`] is assembled in four layers, later layers
//! overriding earlier ones key by key:
//!
//! 1. **Defaults** — [`AppConfig::default`], a small-but-real two-shard
//!    simulated 7B deployment.
//! 2. **Config file** — a TOML subset parsed by [`AppConfig::apply_toml`]
//!    (`[section]` headers; `key = value` with integer, float, boolean, and
//!    quoted-string values; `#` comments). The build vendors no TOML crate,
//!    so the parser is hand-rolled over `std`.
//! 3. **Environment** — `SERVERD_<SECTION>_<KEY>` (e.g.
//!    `SERVERD_SERVER_SHARDS=4`).
//! 4. **CLI** — `--config <path>`, repeatable `--set section.key=value`, and
//!    the `--listen <addr>` / `--shards <n>` shorthands.
//!
//! Every layer funnels through [`AppConfig::set`], the single typed
//! dispatcher, so an unknown key or malformed value fails identically no
//! matter which layer supplied it. `GET /config` serializes the effective
//! struct back out, which is how operators audit what the layering resolved
//! to.

use serde::Serialize;

use million::{MillionConfig, ServingConfig};
use million_model::ModelConfig;

/// Listener and router settings (the `[server]` section).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServerSettings {
    /// Address to bind, e.g. `127.0.0.1:8077`. Port 0 picks an ephemeral
    /// port (printed on startup; used by the tests).
    pub listen: String,
    /// Number of engine shards, each a thread owning one serving engine.
    pub shards: usize,
    /// Leading prompt tokens hashed for shard placement. Prompts sharing at
    /// least this long a prefix land on the same shard, so their PQ blocks
    /// deduplicate in that shard's store.
    pub affinity_tokens: usize,
    /// Largest accepted request body in bytes.
    pub max_body_bytes: usize,
    /// Whether a request rejected by its home shard with `QueueFull` spills
    /// to the least-loaded other shard before being shed.
    pub spill: bool,
    /// `Retry-After` seconds attached to 429 load-shed responses.
    pub retry_after_s: u64,
    /// Crash-restarts the supervisor grants each shard before marking it
    /// permanently failed.
    pub max_shard_restarts: u64,
    /// Base backoff between shard restarts (doubles per restart, capped).
    pub restart_backoff_ms: u64,
    /// Extra placement attempts when every shard reports overload — covers
    /// the window where a crashed shard is restarting.
    pub submit_retries: u64,
    /// Base backoff between submit retries (doubled per attempt, plus
    /// deterministic jitter).
    pub submit_retry_backoff_ms: u64,
    /// Base directory for per-shard session checkpoints (shard `i` writes
    /// under `<dir>/shard-<i>`). Empty disables checkpointing and crash
    /// recovery.
    pub checkpoint_dir: String,
}

impl Default for ServerSettings {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:8077".to_string(),
            shards: 2,
            affinity_tokens: 32,
            max_body_bytes: 1 << 20,
            spill: true,
            retry_after_s: 1,
            max_shard_restarts: 3,
            restart_backoff_ms: 100,
            submit_retries: 2,
            submit_retry_backoff_ms: 25,
            checkpoint_dir: String::new(),
        }
    }
}

/// Model + quantizer settings, one engine per shard (the `[engine]`
/// section). Shards built from equal settings are bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EngineSettings {
    /// Model preset: `tiny-test`, `gpt2-xl-sim`, `llama2-7b-sim`,
    /// `mpt-7b-sim`, `longchat-7b-sim`, or `yarn-llama2-sim`.
    pub model: String,
    /// Seed for the simulated weights and codebook training.
    pub seed: u64,
    /// PQ bit width per sub-vector: 2, 3, or 4.
    pub bits: u32,
    /// Synthetic calibration-stream length for codebook training.
    pub calibration_tokens: usize,
    /// Full-precision tail kept alongside the codes (0 = pure PQ).
    pub residual_len: usize,
    /// Encode freshly generated KV on the background worker.
    pub async_quant: bool,
    /// Tokens per store block — also the granularity of prefix sharing.
    pub block_tokens: usize,
    /// Store byte budget per shard before cold-block eviction (0 = the
    /// engine default).
    pub store_byte_budget: usize,
    /// Deduplicate shared prompt prefixes inside each shard's store.
    pub prefix_sharing: bool,
}

impl Default for EngineSettings {
    fn default() -> Self {
        Self {
            model: "llama2-7b-sim".to_string(),
            seed: 42,
            bits: 4,
            calibration_tokens: 512,
            residual_len: 0,
            async_quant: true,
            block_tokens: 32,
            store_byte_budget: 0,
            prefix_sharing: true,
        }
    }
}

/// Per-shard continuous-batching settings (the `[serving]` section).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServingSettings {
    /// Sessions decoded concurrently per shard.
    pub max_resident: usize,
    /// Pending-queue depth per shard; beyond it submissions spill/shed.
    pub queue_capacity: usize,
    /// KV-byte admission budget per shard (0 = unbounded).
    pub kv_byte_budget: usize,
    /// Rounds after which a starved queued request jumps the admission
    /// order.
    pub admission_aging_rounds: u64,
    /// Admission prefill chunk size in tokens; long prompts are
    /// teacher-forced one chunk per serve round so they never stall
    /// resident decodes (0 = monolithic admission prefill).
    pub prefill_chunk_tokens: usize,
    /// Record latency histograms, per-phase round timing, and the
    /// request-lifecycle journal on each shard. Off, the engines read no
    /// clocks beyond the per-request report timing.
    pub telemetry: bool,
    /// Lifecycle-journal ring capacity per shard (oldest events are
    /// evicted beyond it).
    pub journal_events: usize,
    /// Checkpoint live sessions every N rounds (0 = only on drain).
    /// Effective only when `server.checkpoint_dir` is set.
    pub checkpoint_every_rounds: u64,
}

impl Default for ServingSettings {
    fn default() -> Self {
        let d = ServingConfig::default();
        Self {
            max_resident: d.max_resident,
            queue_capacity: d.queue_capacity,
            kv_byte_budget: d.kv_byte_budget.unwrap_or(0),
            admission_aging_rounds: d.admission_aging_rounds,
            prefill_chunk_tokens: d.prefill_chunk_tokens,
            telemetry: d.telemetry,
            journal_events: d.journal_events,
            checkpoint_every_rounds: d.checkpoint_every_rounds,
        }
    }
}

/// Deterministic fault injection (the `[fault]` section) — chaos-test
/// knobs, off by default. See [`million::FaultPlan`] for the spec grammar.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultSettings {
    /// Fault-plan spec, e.g. `panic@shard=0,round=5 snapshot_io@write=2`.
    /// Empty injects nothing. Each shard gets its own plan instance (own
    /// counters) parsed from this spec.
    pub plan: String,
    /// Seed for the plan's deterministic jitter draws.
    pub seed: u64,
}

/// The whole layered configuration: `[server]` + `[engine]` + `[serving]`
/// + `[fault]`.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct AppConfig {
    /// Listener and sharding router settings.
    pub server: ServerSettings,
    /// Per-shard model/quantizer settings.
    pub engine: EngineSettings,
    /// Per-shard continuous-batching settings.
    pub serving: ServingSettings,
    /// Deterministic fault-injection schedule (chaos testing).
    pub fault: FaultSettings,
}

/// Why configuration loading failed. Carries enough context to point the
/// operator at the offending layer, line, or key.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The `--config` file could not be read.
    Io(String),
    /// A config-file line could not be parsed.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A key no section defines, e.g. `server.typo`.
    UnknownKey(String),
    /// A known key given an unusable value.
    BadValue {
        /// The dotted `section.key` path.
        key: String,
        /// Why the value was rejected.
        msg: String,
    },
    /// A malformed command-line argument.
    BadArg(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Io(msg) => write!(f, "config file: {msg}"),
            ConfigError::Parse { line, msg } => write!(f, "config file line {line}: {msg}"),
            ConfigError::UnknownKey(key) => write!(f, "unknown config key `{key}`"),
            ConfigError::BadValue { key, msg } => write!(f, "bad value for `{key}`: {msg}"),
            ConfigError::BadArg(msg) => write!(f, "bad argument: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Every settable `(section, key)` pair — the key space shared by the TOML,
/// environment, and CLI layers.
const KEYS: &[(&str, &str)] = &[
    ("server", "listen"),
    ("server", "shards"),
    ("server", "affinity_tokens"),
    ("server", "max_body_bytes"),
    ("server", "spill"),
    ("server", "retry_after_s"),
    ("server", "max_shard_restarts"),
    ("server", "restart_backoff_ms"),
    ("server", "submit_retries"),
    ("server", "submit_retry_backoff_ms"),
    ("server", "checkpoint_dir"),
    ("engine", "model"),
    ("engine", "seed"),
    ("engine", "bits"),
    ("engine", "calibration_tokens"),
    ("engine", "residual_len"),
    ("engine", "async_quant"),
    ("engine", "block_tokens"),
    ("engine", "store_byte_budget"),
    ("engine", "prefix_sharing"),
    ("serving", "max_resident"),
    ("serving", "queue_capacity"),
    ("serving", "kv_byte_budget"),
    ("serving", "admission_aging_rounds"),
    ("serving", "prefill_chunk_tokens"),
    ("serving", "telemetry"),
    ("serving", "journal_events"),
    ("serving", "checkpoint_every_rounds"),
    ("fault", "plan"),
    ("fault", "seed"),
];

fn parse_num<T: std::str::FromStr>(section: &str, key: &str, raw: &str) -> Result<T, ConfigError> {
    // Accept 32_768-style underscore grouping like real TOML does.
    let cleaned: String = raw.chars().filter(|&c| c != '_').collect();
    cleaned.parse().map_err(|_| ConfigError::BadValue {
        key: format!("{section}.{key}"),
        msg: format!("expected a number, got `{raw}`"),
    })
}

fn parse_bool(section: &str, key: &str, raw: &str) -> Result<bool, ConfigError> {
    match raw {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(ConfigError::BadValue {
            key: format!("{section}.{key}"),
            msg: format!("expected true/false, got `{raw}`"),
        }),
    }
}

impl AppConfig {
    /// Sets one key from its string form — the single dispatcher every
    /// layer goes through. `raw` is the value with quotes already stripped.
    pub fn set(&mut self, section: &str, key: &str, raw: &str) -> Result<(), ConfigError> {
        let raw = raw.trim();
        match (section, key) {
            ("server", "listen") => self.server.listen = raw.to_string(),
            ("server", "shards") => {
                self.server.shards = parse_num(section, key, raw)?;
                if self.server.shards == 0 {
                    return Err(ConfigError::BadValue {
                        key: "server.shards".into(),
                        msg: "must be at least 1".into(),
                    });
                }
            }
            ("server", "affinity_tokens") => {
                self.server.affinity_tokens = parse_num(section, key, raw)?
            }
            ("server", "max_body_bytes") => {
                self.server.max_body_bytes = parse_num(section, key, raw)?
            }
            ("server", "spill") => self.server.spill = parse_bool(section, key, raw)?,
            ("server", "retry_after_s") => {
                self.server.retry_after_s = parse_num(section, key, raw)?
            }
            ("server", "max_shard_restarts") => {
                self.server.max_shard_restarts = parse_num(section, key, raw)?
            }
            ("server", "restart_backoff_ms") => {
                self.server.restart_backoff_ms = parse_num(section, key, raw)?
            }
            ("server", "submit_retries") => {
                self.server.submit_retries = parse_num(section, key, raw)?
            }
            ("server", "submit_retry_backoff_ms") => {
                self.server.submit_retry_backoff_ms = parse_num(section, key, raw)?
            }
            ("server", "checkpoint_dir") => self.server.checkpoint_dir = raw.to_string(),
            ("engine", "model") => self.engine.model = raw.to_string(),
            ("engine", "seed") => self.engine.seed = parse_num(section, key, raw)?,
            ("engine", "bits") => {
                self.engine.bits = parse_num(section, key, raw)?;
                if !matches!(self.engine.bits, 2..=4) {
                    return Err(ConfigError::BadValue {
                        key: "engine.bits".into(),
                        msg: "supported PQ widths are 2, 3, and 4".into(),
                    });
                }
            }
            ("engine", "calibration_tokens") => {
                self.engine.calibration_tokens = parse_num(section, key, raw)?
            }
            ("engine", "residual_len") => self.engine.residual_len = parse_num(section, key, raw)?,
            ("engine", "async_quant") => self.engine.async_quant = parse_bool(section, key, raw)?,
            ("engine", "block_tokens") => self.engine.block_tokens = parse_num(section, key, raw)?,
            ("engine", "store_byte_budget") => {
                self.engine.store_byte_budget = parse_num(section, key, raw)?
            }
            ("engine", "prefix_sharing") => {
                self.engine.prefix_sharing = parse_bool(section, key, raw)?
            }
            ("serving", "max_resident") => {
                self.serving.max_resident = parse_num(section, key, raw)?
            }
            ("serving", "queue_capacity") => {
                self.serving.queue_capacity = parse_num(section, key, raw)?
            }
            ("serving", "kv_byte_budget") => {
                self.serving.kv_byte_budget = parse_num(section, key, raw)?
            }
            ("serving", "admission_aging_rounds") => {
                self.serving.admission_aging_rounds = parse_num(section, key, raw)?
            }
            ("serving", "prefill_chunk_tokens") => {
                self.serving.prefill_chunk_tokens = parse_num(section, key, raw)?
            }
            ("serving", "telemetry") => self.serving.telemetry = parse_bool(section, key, raw)?,
            ("serving", "journal_events") => {
                self.serving.journal_events = parse_num(section, key, raw)?
            }
            ("serving", "checkpoint_every_rounds") => {
                self.serving.checkpoint_every_rounds = parse_num(section, key, raw)?
            }
            ("fault", "plan") => {
                million::FaultPlan::parse(raw, 0).map_err(|msg| ConfigError::BadValue {
                    key: "fault.plan".into(),
                    msg,
                })?;
                self.fault.plan = raw.to_string();
            }
            ("fault", "seed") => self.fault.seed = parse_num(section, key, raw)?,
            _ => return Err(ConfigError::UnknownKey(format!("{section}.{key}"))),
        }
        Ok(())
    }

    /// Applies a TOML-subset document on top of the current values.
    pub fn apply_toml(&mut self, text: &str) -> Result<(), ConfigError> {
        let mut section = String::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or(ConfigError::Parse {
                    line: lineno,
                    msg: "unterminated section header".into(),
                })?;
                section = name.trim().to_string();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(ConfigError::Parse {
                line: lineno,
                msg: format!("expected `key = value`, got `{line}`"),
            })?;
            if section.is_empty() {
                return Err(ConfigError::Parse {
                    line: lineno,
                    msg: "key before any [section] header".into(),
                });
            }
            let value =
                unquote(value.trim()).map_err(|msg| ConfigError::Parse { line: lineno, msg })?;
            self.set(&section, key.trim(), &value)?;
        }
        Ok(())
    }

    /// Applies `SERVERD_<SECTION>_<KEY>` overrides via the supplied lookup
    /// (indirection so tests need not mutate the process environment).
    pub fn apply_env(
        &mut self,
        lookup: impl Fn(&str) -> Option<String>,
    ) -> Result<(), ConfigError> {
        for (section, key) in KEYS {
            let var = format!(
                "SERVERD_{}_{}",
                section.to_ascii_uppercase(),
                key.to_ascii_uppercase()
            );
            if let Some(value) = lookup(&var) {
                self.set(section, key, &value)?;
            }
        }
        Ok(())
    }

    /// Builds the effective config from all four layers: defaults, the
    /// `--config` file (if any), the environment, then the remaining CLI
    /// flags in the order written.
    pub fn layered(
        args: &[String],
        env: impl Fn(&str) -> Option<String>,
    ) -> Result<Self, ConfigError> {
        let mut config = AppConfig::default();

        // The file layer is located by the CLI but applied before env/CLI
        // overrides, preserving defaults < file < env < flags precedence.
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--config" {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| ConfigError::BadArg("--config needs a path".into()))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| ConfigError::Io(format!("{path}: {e}")))?;
                config.apply_toml(&text)?;
            }
            i += 1;
        }

        config.apply_env(env)?;

        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--config" => i += 1, // already consumed above
                "--listen" => {
                    let addr = args
                        .get(i + 1)
                        .ok_or_else(|| ConfigError::BadArg("--listen needs an address".into()))?;
                    config.set("server", "listen", addr)?;
                    i += 1;
                }
                "--shards" => {
                    let n = args
                        .get(i + 1)
                        .ok_or_else(|| ConfigError::BadArg("--shards needs a count".into()))?;
                    config.set("server", "shards", n)?;
                    i += 1;
                }
                "--set" => {
                    let spec = args.get(i + 1).ok_or_else(|| {
                        ConfigError::BadArg("--set needs section.key=value".into())
                    })?;
                    let (path, value) = spec.split_once('=').ok_or_else(|| {
                        ConfigError::BadArg(format!("--set `{spec}` is missing `=`"))
                    })?;
                    let (section, key) = path.split_once('.').ok_or_else(|| {
                        ConfigError::BadArg(format!("--set key `{path}` is missing the section"))
                    })?;
                    config.set(section.trim(), key.trim(), value.trim())?;
                    i += 1;
                }
                other => {
                    return Err(ConfigError::BadArg(format!("unrecognized flag `{other}`")));
                }
            }
            i += 1;
        }
        Ok(config)
    }
}

/// Strips a `#` comment unless the `#` sits inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Removes surrounding double quotes if present; rejects half-quoted
/// values.
fn unquote(value: &str) -> Result<String, String> {
    if let Some(rest) = value.strip_prefix('"') {
        rest.strip_suffix('"')
            .map(|s| s.to_string())
            .ok_or_else(|| format!("unterminated string `{value}`"))
    } else if value.ends_with('"') {
        Err(format!("unterminated string `{value}`"))
    } else {
        Ok(value.to_string())
    }
}

impl EngineSettings {
    /// Resolves the model preset name.
    pub fn model_config(&self) -> Result<ModelConfig, ConfigError> {
        match self.model.as_str() {
            "tiny-test" => Ok(ModelConfig::tiny_for_tests()),
            "gpt2-xl-sim" => Ok(ModelConfig::gpt2_xl_sim()),
            "llama2-7b-sim" => Ok(ModelConfig::llama2_7b_sim()),
            "mpt-7b-sim" => Ok(ModelConfig::mpt_7b_sim()),
            "longchat-7b-sim" => Ok(ModelConfig::longchat_7b_sim()),
            "yarn-llama2-sim" => Ok(ModelConfig::yarn_llama2_sim()),
            other => Err(ConfigError::BadValue {
                key: "engine.model".into(),
                msg: format!("unknown model preset `{other}`"),
            }),
        }
    }

    /// Builds the per-shard quantizer configuration for `head_dim`.
    pub fn million_config(&self, head_dim: usize) -> MillionConfig {
        let mut cfg = match self.bits {
            2 => MillionConfig::two_bit(head_dim),
            3 => MillionConfig::three_bit(head_dim),
            _ => MillionConfig::four_bit(head_dim),
        };
        cfg.seed = self.seed;
        cfg.calibration_tokens = self.calibration_tokens;
        cfg.async_quant = self.async_quant;
        cfg = cfg
            .with_residual_len(self.residual_len)
            .with_block_tokens(self.block_tokens);
        if self.store_byte_budget > 0 {
            cfg = cfg.with_store_byte_budget(self.store_byte_budget);
        }
        if self.prefix_sharing {
            cfg = cfg.with_prefix_sharing();
        }
        cfg
    }
}

impl ServingSettings {
    /// Converts to the engine's [`ServingConfig`].
    pub fn to_serving_config(&self) -> ServingConfig {
        ServingConfig {
            max_resident: self.max_resident,
            queue_capacity: self.queue_capacity,
            kv_byte_budget: (self.kv_byte_budget > 0).then_some(self.kv_byte_budget),
            admission_aging_rounds: self.admission_aging_rounds,
            prefill_chunk_tokens: self.prefill_chunk_tokens,
            telemetry: self.telemetry,
            journal_events: self.journal_events,
            ..ServingConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_then_file_then_env_then_cli_layer_in_order() {
        let toml = r#"
            # deployment profile
            [server]
            shards = 4
            listen = "0.0.0.0:9000" # overridden below by env
            [engine]
            bits = 3
            block_tokens = 16
            [serving]
            queue_capacity = 1_024
        "#;
        let dir = std::env::temp_dir().join("serverd-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("layered.toml");
        std::fs::write(&path, toml).unwrap();

        let args: Vec<String> = [
            "--config",
            path.to_str().unwrap(),
            "--shards",
            "3",
            "--set",
            "engine.seed=7",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let config = AppConfig::layered(&args, |var| {
            (var == "SERVERD_SERVER_LISTEN").then(|| "127.0.0.1:0".to_string())
        })
        .unwrap();

        assert_eq!(config.server.shards, 3, "CLI beats file");
        assert_eq!(config.server.listen, "127.0.0.1:0", "env beats file");
        assert_eq!(config.engine.bits, 3, "file beats default");
        assert_eq!(config.engine.block_tokens, 16);
        assert_eq!(config.serving.queue_capacity, 1024, "underscore grouping");
        assert_eq!(config.engine.seed, 7, "--set applies");
        assert_eq!(
            config.server.spill,
            ServerSettings::default().spill,
            "untouched keys keep defaults"
        );
    }

    #[test]
    fn bad_keys_and_values_are_rejected_with_context() {
        let mut config = AppConfig::default();
        assert!(matches!(
            config.set("server", "typo", "1"),
            Err(ConfigError::UnknownKey(k)) if k == "server.typo"
        ));
        assert!(matches!(
            config.set("engine", "bits", "7"),
            Err(ConfigError::BadValue { .. })
        ));
        assert!(matches!(
            config.set("server", "shards", "0"),
            Err(ConfigError::BadValue { .. })
        ));
        assert!(matches!(
            config.apply_toml("shards = 2"),
            Err(ConfigError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            config.apply_toml("[server]\nlisten = \"unterminated"),
            Err(ConfigError::Parse { line: 2, .. })
        ));
        let err = AppConfig::layered(&["--bogus".to_string()], |_| None).unwrap_err();
        assert!(matches!(err, ConfigError::BadArg(_)));
    }

    #[test]
    fn engine_settings_build_a_consistent_million_config() {
        let mut settings = EngineSettings {
            model: "tiny-test".into(),
            bits: 2,
            residual_len: 8,
            block_tokens: 16,
            store_byte_budget: 4096,
            prefix_sharing: true,
            ..EngineSettings::default()
        };
        let model = settings.model_config().unwrap();
        let cfg = settings.million_config(model.head_dim());
        assert_eq!(cfg.residual_len, 8);
        assert_eq!(cfg.block_tokens, 16);
        assert_eq!(cfg.store_byte_budget, 4096);
        assert!(cfg.prefix_sharing);
        assert_eq!(cfg.seed, settings.seed);
        settings.model = "no-such-model".into();
        assert!(settings.model_config().is_err());
    }

    #[test]
    fn config_serializes_for_the_config_endpoint() {
        let json = serde_json::to_string(&AppConfig::default()).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            value
                .get("server")
                .and_then(|s| s.get("shards"))
                .and_then(|v| v.as_f64()),
            Some(2.0)
        );
        assert_eq!(
            value
                .get("engine")
                .and_then(|e| e.get("model"))
                .and_then(|v| v.as_str()),
            Some("llama2-7b-sim")
        );
    }
}
