//! The `serverd` binary: load the layered config, spawn the shard fleet,
//! and serve until shut down over HTTP (`POST /admin/shutdown`).

use million_serverd::{AppConfig, Server};

const USAGE: &str = "\
serverd — networked serving front-end for the MILLION engine

USAGE:
    serverd [--config <path>] [--listen <addr>] [--shards <n>]
            [--set section.key=value]...

Layering (later wins): built-in defaults, the --config TOML file,
SERVERD_<SECTION>_<KEY> environment variables, then flags in order.
GET /config on the running server echoes the effective configuration.

Example:
    serverd --listen 127.0.0.1:8077 --shards 2 \\
            --set engine.model=tiny-test --set serving.max_resident=8
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }

    // The one sanctioned env read: main.rs hands the raw lookup to the
    // config layering, which owns precedence (flag > env > default).
    #[allow(clippy::disallowed_methods)]
    let config = match AppConfig::layered(&args, |var| std::env::var(var).ok()) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("serverd: {e}");
            eprintln!("run `serverd --help` for usage");
            std::process::exit(2);
        }
    };

    eprintln!(
        "serverd: building {} shard(s) of `{}` ({}-bit PQ, prefix sharing {}) ...",
        config.server.shards,
        config.engine.model,
        config.engine.bits,
        if config.engine.prefix_sharing {
            "on"
        } else {
            "off"
        },
    );
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serverd: {e}");
            std::process::exit(1);
        }
    };
    println!("serverd listening on http://{}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("serverd: accept loop failed: {e}");
        std::process::exit(1);
    }
}
