//! Deterministic engine construction shared by the shard threads, the
//! `serverd` binary, and the end-to-end tests.
//!
//! Determinism is the contract the whole front-end leans on: two shards
//! built from the same [`EngineSettings`] hold bit-identical simulated
//! weights and codebooks, so a greedy request produces the same token
//! stream no matter which shard the router (or a spill) lands it on — and
//! the socket tests can compare an HTTP/SSE stream against a direct
//! in-process [`million::ServingEngine`] run token for token.

use million::{MillionEngine, MillionError};

use crate::config::{ConfigError, EngineSettings};

/// Why a shard's engine could not be constructed.
#[derive(Debug)]
pub enum BuildError {
    /// The settings were internally inconsistent (bad preset name, etc.).
    Config(ConfigError),
    /// Codebook calibration or engine assembly failed.
    Engine(MillionError),
    /// The OS refused to spawn the shard's supervisor thread.
    Spawn(std::io::Error),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Config(e) => write!(f, "engine settings: {e}"),
            BuildError::Engine(e) => write!(f, "engine build: {e}"),
            BuildError::Spawn(e) => write!(f, "shard thread spawn: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ConfigError> for BuildError {
    fn from(e: ConfigError) -> Self {
        BuildError::Config(e)
    }
}

impl From<MillionError> for BuildError {
    fn from(e: MillionError) -> Self {
        BuildError::Engine(e)
    }
}

/// The deterministic calibration stream used to train each shard's
/// codebooks: the same mixed-congruential walk the engine's own test
/// fixtures use, stretched to `len` tokens.
pub fn calibration_stream(len: usize, vocab_size: usize) -> Vec<u32> {
    (0..len)
        .map(|i| ((i * 13 + 5) % vocab_size) as u32)
        .collect()
}

/// Builds one shard's engine from `settings`: resolve the model preset,
/// instantiate seeded simulated weights, train codebooks on the synthetic
/// calibration stream, and wire the PQ store.
pub fn build_engine(settings: &EngineSettings) -> Result<MillionEngine, BuildError> {
    let model_config = settings.model_config()?;
    let model = million_model::Transformer::new(model_config.clone(), settings.seed);
    let calibration = calibration_stream(settings.calibration_tokens, model_config.vocab_size);
    let million_config = settings.million_config(model_config.head_dim());
    Ok(MillionEngine::new(model, million_config, &calibration)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use million::{GenerationOptions, MillionConfig};

    fn tiny_settings() -> EngineSettings {
        EngineSettings {
            model: "tiny-test".into(),
            calibration_tokens: 96,
            async_quant: false,
            ..EngineSettings::default()
        }
    }

    #[test]
    fn equal_settings_build_bit_identical_engines() {
        let a = build_engine(&tiny_settings()).unwrap();
        let b = build_engine(&tiny_settings()).unwrap();
        let prompt = [3u32, 9, 27, 81, 11, 33];
        let mut sa = a.session();
        sa.prefill(&prompt);
        let mut sb = b.session();
        sb.prefill(&prompt);
        let ta = sa.generate(&GenerationOptions::max_tokens(12)).tokens;
        let tb = sb.generate(&GenerationOptions::max_tokens(12)).tokens;
        assert_eq!(ta, tb);
    }

    #[test]
    fn settings_flow_through_to_the_engine_config() {
        let mut settings = tiny_settings();
        settings.block_tokens = 16;
        settings.bits = 3;
        let engine = build_engine(&settings).unwrap();
        assert_eq!(engine.config().block_tokens, 16);
        let model_cfg = settings.model_config().unwrap();
        assert_eq!(
            engine.config().pq.nbits,
            MillionConfig::three_bit(model_cfg.head_dim()).pq.nbits
        );
    }
}
