//! Exercises the head-parallel decode branch through the real model path.
//!
//! The per-head fan-out only engages past `pos · head_dim ≥ 2^18`, far
//! beyond what the tiny unit-test prompts reach, so this test fills the
//! caches directly with 8192 tokens of random KV (no O(n²) prefill) and
//! compares a multi-worker decode against the forced-serial reference
//! (`DecodeScratch::with_workers(1)`). Heads never share accumulators, so
//! the two partitionings must agree **bit for bit**.
//!
//! This file is its own test binary with a single test: the
//! `RAYON_NUM_THREADS` override must be set before anything in the process
//! touches the rayon shim (the value is cached on first use), which a
//! shared test binary could not guarantee.

use million_model::{build_caches, CacheSpec, DecodeScratch, ModelConfig, Transformer};
use million_tensor::init::{normal_matrix, seeded_rng};

#[test]
fn parallel_head_decode_is_bit_identical_to_serial() {
    // Force multi-worker mode even on single-core CI machines; this is the
    // first rayon-shim touch in this process, so the override sticks.
    std::env::set_var("RAYON_NUM_THREADS", "4");

    let config = ModelConfig::tiny_gqa_for_tests();
    let model = Transformer::new(config.clone(), 11);
    let hd = config.head_dim();
    // Past the parallel gate: pos * head_dim >= 2^18.
    let tokens = (1usize << 18).div_ceil(hd);

    let mut caches_par = build_caches(&config, &CacheSpec::Full);
    let mut caches_ser = build_caches(&config, &CacheSpec::Full);
    let mut rng = seeded_rng(12);
    let mut filled = 0usize;
    while filled < tokens {
        let block = 1024.min(tokens - filled);
        let k = normal_matrix(&mut rng, block, config.kv_width(), 0.0, 0.5);
        let v = normal_matrix(&mut rng, block, config.kv_width(), 0.0, 0.5);
        for cache in caches_par.iter_mut().chain(caches_ser.iter_mut()) {
            cache.append(&k, &v);
        }
        filled += block;
    }

    let mut parallel = DecodeScratch::new();
    assert!(
        parallel.workers() >= 4,
        "RAYON_NUM_THREADS override did not take (workers = {}); \
         another rayon call must have run first",
        parallel.workers()
    );
    let mut serial = DecodeScratch::with_workers(1);

    for step in 0..2u32 {
        let with_parallel =
            model.decode_step_with_scratch(step + 7, &mut caches_par, &mut parallel);
        let with_serial = model.decode_step_with_scratch(step + 7, &mut caches_ser, &mut serial);
        assert_eq!(
            with_parallel, with_serial,
            "step {step}: head-partitioned decode diverged from serial"
        );
    }
}
