//! Proof of the scratch lifecycle claims at the model layer:
//!
//! 1. the tiled prefill attention kernel performs **zero** heap allocations
//!    once its [`PrefillScratch`] is warm (serial path — the parallel branch
//!    necessarily allocates thread stacks when it spawns workers);
//! 2. the *full* decode step — embedding, norms, q/k/v projections,
//!    attention, cache append, feed-forward and logits — performs zero
//!    allocations through a warm [`StepScratch`], extending the PR 2
//!    attend-only guarantee upward through the whole step (cache growth is
//!    pre-reserved via [`FullPrecisionCache::reserve_tokens`]).
//!
//! Same counting-allocator technique as `kvcache/tests/zero_alloc.rs`: a
//! per-thread counter (const-initialised TLS, so reading it never allocates)
//! is snapshotted after warmup and must not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use million_kvcache::{CacheLayout, FullPrecisionCache};
use million_model::{
    prefill_attention_tiled, ModelConfig, PrefillScratch, StepScratch, Transformer,
};
use million_tensor::init::{normal_matrix, seeded_rng};
use million_tensor::Matrix;

struct CountingAllocator;

thread_local! {
    /// Allocations made by *this* thread. `const`-initialised `Cell<usize>`
    /// has no destructor and no lazy init, so bumping it from inside the
    /// allocator cannot itself allocate or recurse.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

fn thread_allocations() -> usize {
    ALLOCATIONS.with(|c| c.get())
}

fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn tiled_prefill_attention_is_allocation_free_when_scratch_is_warm() {
    let n = 96; // not a multiple of either tile size
    let hd = 32;
    let n_heads = 2;
    let n_kv_heads = 1;
    let mut rng = seeded_rng(4);
    let q = normal_matrix(&mut rng, n, n_heads * hd, 0.0, 1.0);
    let k = normal_matrix(&mut rng, n, n_kv_heads * hd, 0.0, 1.0);
    let v = normal_matrix(&mut rng, n, n_kv_heads * hd, 0.0, 1.0);
    let scale = 1.0 / (hd as f32).sqrt();
    let slopes = [0.3f32, 0.6];

    // Single-state pool: the serial tile loop, which must be thread- and
    // allocation-free once the buffers have grown.
    let mut scratch = PrefillScratch::with_workers(1);
    let mut attn = Matrix::default();
    let run = |scratch: &mut PrefillScratch, attn: &mut Matrix| {
        prefill_attention_tiled(
            &q,
            &k,
            &v,
            n_heads,
            n_kv_heads,
            scale,
            Some(&slopes),
            scratch,
            attn,
        );
    };

    // Warm-up sizes the staging buffer, per-row accumulators and the output.
    run(&mut scratch, &mut attn);

    let before = thread_allocations();
    for _ in 0..25 {
        run(&mut scratch, &mut attn);
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state tiled prefill attention allocated {} times over 25 calls",
        after - before
    );
}

#[test]
fn full_decode_step_is_allocation_free_when_scratch_is_warm() {
    let config = ModelConfig::tiny_for_tests();
    let model = Transformer::new(config.clone(), 6);
    let layout = CacheLayout::new(config.n_kv_heads, config.head_dim());

    let mut caches: Vec<FullPrecisionCache> = (0..config.n_layers)
        .map(|_| FullPrecisionCache::new(layout))
        .collect();
    let _ = model.prefill(&[5, 17, 42, 3, 99, 7, 64, 21], &mut caches, None);
    // Pre-reserve the decode horizon so appends never reallocate — the
    // remaining step work is what this test pins to zero.
    for cache in &mut caches {
        cache.reserve_tokens(128);
    }

    let mut scratch = StepScratch::with_workers(1);
    // Warm-up sizes every step buffer (x, h, q/k/v, attn, proj, inner,
    // append staging, logits) and the attend scratch.
    let _ = model.decode_step_into(9, &mut caches, &mut scratch);
    let _ = model.decode_step_into(11, &mut caches, &mut scratch);

    let before = thread_allocations();
    for step in 0..64u32 {
        let logits = model.decode_step_into(step % 100, &mut caches, &mut scratch);
        assert_eq!(logits.len(), config.vocab_size);
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state full decode step allocated {} times over 64 steps",
        after - before
    );
}
