//! Pins the tiled prefill kernel against the seed's naive reference path.
//!
//! The online softmax of the tiled kernel reorders floating-point summation,
//! so the two paths agree within tolerance (not bitwise) — but the tiled
//! path itself must be **exactly** deterministic: repeated runs, reused vs
//! fresh scratch, and any worker count must produce bit-identical logits,
//! because each (head, query-tile) work unit's arithmetic depends only on
//! its own index, never on how units are partitioned across threads.

use million_model::{
    build_caches, prefill_attention_tiled, CacheSpec, ModelConfig, NormKind, Positional,
    PrefillScratch, Transformer, PREFILL_K_TILE, PREFILL_Q_TILE,
};
use million_tensor::init::{normal_matrix, seeded_rng};
use million_tensor::Matrix;
use proptest::prelude::*;

/// Every preset the equivalence must hold on: RoPE + MHA, RoPE + GQA
/// (group size 2), and ALiBi + LayerNorm (exercising the fused bias).
fn configs() -> Vec<ModelConfig> {
    let mut alibi = ModelConfig::tiny_for_tests();
    alibi.name = "tiny-alibi-test".into();
    alibi.positional = Positional::Alibi;
    alibi.norm = NormKind::LayerNorm;
    vec![
        ModelConfig::tiny_for_tests(),
        ModelConfig::tiny_gqa_for_tests(),
        alibi,
    ]
}

fn prompt_of(len: usize, vocab: usize, seed: u64) -> Vec<u32> {
    (0..len)
        .map(|i| ((i as u64 * 31 + seed * 17 + 3) % vocab as u64) as u32)
        .collect()
}

fn assert_close(tiled: &Matrix, reference: &Matrix, label: &str) {
    assert_eq!(tiled.shape(), reference.shape(), "{label}: shape");
    for (a, b) in tiled.as_slice().iter().zip(reference.as_slice()) {
        let denom = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() / denom < 1e-3,
            "{label}: tiled {a} vs reference {b}"
        );
    }
}

fn check_equivalence(config: &ModelConfig, len: usize, seed: u64) {
    let model = Transformer::new(config.clone(), seed);
    let prompt = prompt_of(len, config.vocab_size, seed);

    let mut caches_tiled = build_caches(config, &CacheSpec::Full);
    let tiled = model.prefill(&prompt, &mut caches_tiled, None);
    let mut caches_ref = build_caches(config, &CacheSpec::Full);
    let reference = model.prefill_reference(&prompt, &mut caches_ref, None);

    assert_close(&tiled, &reference, &format!("{} len={len}", config.name));
    // Both paths hand identical layer-0 KV to the caches; later layers may
    // drift within tolerance but token counts always agree.
    assert_eq!(caches_tiled[0].len(), caches_ref[0].len());
}

#[test]
fn single_token_prompt_matches_reference() {
    for config in configs() {
        check_equivalence(&config, 1, 5);
    }
}

#[test]
fn tile_boundary_lengths_match_reference() {
    // Exactly one tile, one-off-a-tile on both sides, and a length that is
    // neither a multiple of the query tile nor of the key tile.
    for config in configs() {
        for len in [
            PREFILL_Q_TILE - 1,
            PREFILL_Q_TILE,
            PREFILL_Q_TILE + 1,
            PREFILL_K_TILE + 7,
        ] {
            check_equivalence(&config, len, 6);
        }
    }
}

#[test]
fn tiled_prefill_is_deterministic_across_runs_and_scratch_reuse() {
    for config in configs() {
        let model = Transformer::new(config.clone(), 21);
        let prompt = prompt_of(77, config.vocab_size, 21);

        let mut shared_scratch = PrefillScratch::new();
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut caches = build_caches(&config, &CacheSpec::Full);
            runs.push(model.prefill_with_scratch(&prompt, &mut caches, None, &mut shared_scratch));
        }
        let mut caches = build_caches(&config, &CacheSpec::Full);
        runs.push(model.prefill(&prompt, &mut caches, None));

        assert_eq!(
            runs[0].as_slice(),
            runs[1].as_slice(),
            "{}: reused scratch must be bit-identical across runs",
            config.name
        );
        assert_eq!(
            runs[0].as_slice(),
            runs[2].as_slice(),
            "{}: fresh scratch must be bit-identical to reused scratch",
            config.name
        );
    }
}

#[test]
fn tiled_kernel_is_bit_identical_across_worker_counts() {
    // Direct kernel call above the parallel work threshold: 512 tokens x
    // head_dim 32 puts every (head, query-tile) unit past the gate, so a
    // multi-state pool actually fans out while the single-state pool runs
    // the serial path — and both must produce the exact same bits. GQA
    // (2 query heads on 1 KV head) plus ALiBi covers the fused-bias path.
    let n = 512;
    let hd = 32;
    let n_heads = 2;
    let n_kv_heads = 1;
    let mut rng = seeded_rng(33);
    let q = normal_matrix(&mut rng, n, n_heads * hd, 0.0, 1.0);
    let k = normal_matrix(&mut rng, n, n_kv_heads * hd, 0.0, 1.0);
    let v = normal_matrix(&mut rng, n, n_kv_heads * hd, 0.0, 1.0);
    let scale = 1.0 / (hd as f32).sqrt();
    let slopes = [0.25f32, 0.5];

    let mut outputs = Vec::new();
    for workers in [1usize, 3, 8] {
        let mut scratch = PrefillScratch::with_workers(workers);
        let mut attn = Matrix::default();
        prefill_attention_tiled(
            &q,
            &k,
            &v,
            n_heads,
            n_kv_heads,
            scale,
            Some(&slopes),
            &mut scratch,
            &mut attn,
        );
        assert!(attn.as_slice().iter().all(|x| x.is_finite()));
        outputs.push(attn);
    }
    assert_eq!(
        outputs[0].as_slice(),
        outputs[1].as_slice(),
        "1 vs 3 workers"
    );
    assert_eq!(
        outputs[0].as_slice(),
        outputs[2].as_slice(),
        "1 vs 8 workers"
    );
}

#[test]
fn heads_wider_than_the_kernel_limit_fall_back_to_the_reference_path() {
    // head_dim 288 exceeds PREFILL_MAX_HEAD_DIM (256): `prefill` must route
    // to the naive path and produce its bit-exact output.
    let mut config = ModelConfig::tiny_for_tests();
    config.d_model = 288;
    config.n_heads = 1;
    config.n_kv_heads = 1;
    config.d_ff = 64;
    config.positional = Positional::Absolute;
    let model = Transformer::new(config.clone(), 41);
    let prompt = prompt_of(9, config.vocab_size, 41);
    let mut caches_a = build_caches(&config, &CacheSpec::Full);
    let tiled_api = model.prefill(&prompt, &mut caches_a, None);
    let mut caches_b = build_caches(&config, &CacheSpec::Full);
    let reference = model.prefill_reference(&prompt, &mut caches_b, None);
    assert_eq!(tiled_api.as_slice(), reference.as_slice());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_matches_reference_for_arbitrary_prompt_lengths(
        len in 1usize..80,
        config_idx in 0usize..3,
        seed in 0u64..50,
    ) {
        let config = configs().swap_remove(config_idx);
        let model = Transformer::new(config.clone(), seed);
        let prompt = prompt_of(len, config.vocab_size, seed);

        let mut caches_tiled = build_caches(&config, &CacheSpec::Full);
        let tiled = model.prefill(&prompt, &mut caches_tiled, None);
        let mut caches_ref = build_caches(&config, &CacheSpec::Full);
        let reference = model.prefill_reference(&prompt, &mut caches_ref, None);

        prop_assert_eq!(tiled.shape(), reference.shape());
        for (a, b) in tiled.as_slice().iter().zip(reference.as_slice()) {
            let denom = a.abs().max(b.abs()).max(1.0);
            prop_assert!((a - b).abs() / denom < 1e-3, "len {} tiled {} vs reference {}", len, a, b);
        }
    }
}
